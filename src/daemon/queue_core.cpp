#include "daemon/queue_core.hpp"

#include <algorithm>
#include <cassert>

namespace qcenv::daemon {

const char* to_string(JobClass cls) noexcept {
  switch (cls) {
    case JobClass::kProduction: return "production";
    case JobClass::kTest: return "test";
    case JobClass::kDevelopment: return "development";
  }
  return "?";
}

common::Result<JobClass> job_class_from_string(const std::string& text) {
  if (text == "production") return JobClass::kProduction;
  if (text == "test") return JobClass::kTest;
  if (text == "development" || text == "dev") return JobClass::kDevelopment;
  return common::err::invalid_argument("unknown job class: " + text);
}

void PriorityQueueCore::enqueue(std::uint64_t job_id, JobClass cls,
                                std::uint64_t total_shots,
                                common::TimeNs now) {
  enqueue(job_id, cls, total_shots, now, next_seq_);
}

void PriorityQueueCore::enqueue(std::uint64_t job_id, JobClass cls,
                                std::uint64_t total_shots, common::TimeNs now,
                                std::uint64_t seq) {
  assert(entries_.count(job_id) == 0 && in_flight_.count(job_id) == 0 &&
         "job already queued");
  Entry entry;
  entry.job_id = job_id;
  entry.cls = cls;
  entry.remaining_shots = total_shots;
  entry.total_shots = total_shots;
  entry.enqueue_time = now;
  entry.seq = seq;
  if (next_seq_ <= seq) next_seq_ = seq + 1;
  entries_.emplace(job_id, entry);
}

int PriorityQueueCore::effective_rank(const Entry& entry,
                                      common::TimeNs now) const {
  if (!policy_.class_priority) return 0;  // FIFO baseline: one class
  int rank = class_rank(entry.cls);
  if (policy_.age_to_boost > 0) {
    const auto boosts = static_cast<int>((now - entry.enqueue_time) /
                                         policy_.age_to_boost);
    rank = std::max(0, rank - boosts);
  }
  return rank;
}

std::vector<const PriorityQueueCore::Entry*> PriorityQueueCore::ordered(
    common::TimeNs now) const {
  std::vector<const Entry*> order;
  order.reserve(entries_.size());
  for (const auto& [_, entry] : entries_) order.push_back(&entry);
  // Evaluate the hook once per entry, not once per comparison: the hook
  // may consult the accounting subsystem, and the sort must see one
  // consistent priority per job for the whole pass.
  std::map<std::uint64_t, double> hook_priority;
  if (priority_hook_) {
    for (const Entry* entry : order) {
      hook_priority[entry->job_id] = priority_hook_(entry->job_id, now);
    }
  }
  std::sort(order.begin(), order.end(),
            [&](const Entry* a, const Entry* b) {
              const int ra = effective_rank(*a, now);
              const int rb = effective_rank(*b, now);
              if (ra != rb) return ra < rb;
              if (priority_hook_) {
                const double pa = hook_priority.at(a->job_id);
                const double pb = hook_priority.at(b->job_id);
                if (pa != pb) return pa > pb;  // under-served first
              }
              if (policy_.shortest_first_within_class &&
                  a->remaining_shots != b->remaining_shots) {
                return a->remaining_shots < b->remaining_shots;
              }
              return a->seq < b->seq;
            });
  return order;
}

std::optional<Batch> PriorityQueueCore::next_batch(common::TimeNs now) {
  return next_batch(now, [](std::uint64_t) { return true; });
}

std::optional<Batch> PriorityQueueCore::next_batch(
    common::TimeNs now, const EligibleFn& eligible) {
  if (entries_.empty()) return std::nullopt;
  const Entry* head = nullptr;
  for (const Entry* entry : ordered(now)) {
    if (eligible(entry->job_id)) {
      head = entry;
      break;
    }
  }
  if (head == nullptr) return std::nullopt;
  return take(head->job_id);
}

std::optional<PriorityQueueCore::Head> PriorityQueueCore::peek_head(
    common::TimeNs now, const EligibleFn& eligible) const {
  for (const Entry* entry : ordered(now)) {
    if (!eligible(entry->job_id)) continue;
    Head head;
    head.job_id = entry->job_id;
    head.cls = entry->cls;
    head.rank = effective_rank(*entry, now);
    if (priority_hook_) {
      head.has_hook = true;
      head.hook = priority_hook_(entry->job_id, now);
    }
    head.remaining_shots = entry->remaining_shots;
    head.seq = entry->seq;
    return head;
  }
  return std::nullopt;
}

std::vector<PriorityQueueCore::Head> PriorityQueueCore::snapshot_heads(
    common::TimeNs now) const {
  std::vector<Head> heads;
  heads.reserve(entries_.size());
  for (const Entry* entry : ordered(now)) {
    Head head;
    head.job_id = entry->job_id;
    head.cls = entry->cls;
    head.rank = effective_rank(*entry, now);
    if (priority_hook_) {
      head.has_hook = true;
      head.hook = priority_hook_(entry->job_id, now);
    }
    head.remaining_shots = entry->remaining_shots;
    head.seq = entry->seq;
    heads.push_back(head);
  }
  return heads;
}

bool PriorityQueueCore::head_before(const Head& a, const Head& b,
                                    bool shortest_first) noexcept {
  if (a.rank != b.rank) return a.rank < b.rank;
  if (a.has_hook && b.has_hook && a.hook != b.hook) {
    return a.hook > b.hook;  // under-served first
  }
  if (shortest_first && a.remaining_shots != b.remaining_shots) {
    return a.remaining_shots < b.remaining_shots;
  }
  return a.seq < b.seq;
}

std::optional<Batch> PriorityQueueCore::take(std::uint64_t job_id) {
  const auto it = entries_.find(job_id);
  if (it == entries_.end()) return std::nullopt;
  const Entry& head = it->second;
  Batch batch;
  batch.job_id = head.job_id;
  batch.cls = head.cls;
  const bool small_batches = policy_.non_production_batch_shots > 0 &&
                             head.cls != JobClass::kProduction;
  batch.shots = small_batches
                    ? std::min(head.remaining_shots,
                               policy_.non_production_batch_shots)
                    : head.remaining_shots;
  batch.final_batch = batch.shots >= head.remaining_shots;

  // Move the entry to the in-flight set.
  in_flight_.emplace(it->first, it->second);
  entries_.erase(it);
  return batch;
}

void PriorityQueueCore::batch_done(const Batch& batch) {
  const auto it = in_flight_.find(batch.job_id);
  assert(it != in_flight_.end() && "batch_done for unknown dispatch");
  Entry entry = it->second;
  in_flight_.erase(it);
  assert(batch.shots <= entry.remaining_shots);
  entry.remaining_shots -= batch.shots;
  if (entry.remaining_shots > 0) {
    // Keep the original seq: the job resumes its place within its class.
    entries_.emplace(entry.job_id, entry);
  }
}

bool PriorityQueueCore::any_pending(const EligibleFn& eligible) const {
  for (const auto& [job_id, _] : entries_) {
    if (eligible(job_id)) return true;
  }
  return false;
}

void PriorityQueueCore::batch_failed(const Batch& batch) {
  const auto it = in_flight_.find(batch.job_id);
  assert(it != in_flight_.end() && "batch_failed for unknown dispatch");
  Entry entry = it->second;
  in_flight_.erase(it);
  // The shots were never executed: the entry returns untouched, keeping its
  // seq so the job resumes its place once a healthy resource claims it.
  entries_.emplace(entry.job_id, entry);
}

bool PriorityQueueCore::remove(std::uint64_t job_id) {
  return entries_.erase(job_id) > 0;
}

bool PriorityQueueCore::pending(std::uint64_t job_id) const {
  return entries_.count(job_id) > 0;
}

std::size_t PriorityQueueCore::depth_of(JobClass cls) const {
  std::size_t count = 0;
  for (const auto& [_, entry] : entries_) {
    if (entry.cls == cls) ++count;
  }
  return count;
}

std::vector<std::uint64_t> PriorityQueueCore::snapshot(
    common::TimeNs now) const {
  std::vector<std::uint64_t> out;
  for (const Entry* entry : ordered(now)) out.push_back(entry->job_id);
  return out;
}

}  // namespace qcenv::daemon
