// ObservabilityPipeline: the daemon's live metrics pipeline. Owns the
// in-process TSDB, the grid-deadline scrape loop, the SLO/drift alert
// manager and the crash-forensics flight recorder, and wires them to the
// dispatcher, broker and store.
//
// Tick model: every scrape deadline runs
//   scrape (registry + domain samplers, stamped at the grid deadline)
//   -> alert evaluation at that deadline (burn windows end on the grid)
//   -> crash-snapshot refresh.
// Production drives ticks from a clock-driven thread (run_pending); the
// simulation harness calls tick_at() with its own deterministic deadline
// sequence, so a replay reproduces the exact alert timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/events.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tsdb.hpp"

namespace qcenv::broker {
class ResourceBroker;
}

namespace qcenv::daemon {

class Dispatcher;

struct ObservabilityOptions {
  /// Master switch: off restores the pre-pipeline daemon (no TSDB, no
  /// alerts, no flight recorder).
  bool enabled = true;
  /// Spawn the clock-driven scrape thread. Off for simulation, which calls
  /// tick_at() on its own deterministic grid.
  bool scrape_thread = true;
  common::DurationNs scrape_interval = common::kSecond;
  /// Collector catch-up policy (see CollectorOptions::scrape_all_overdue).
  bool scrape_all_overdue = false;
  /// TSDB retention cap (points per series, oldest evicted).
  std::size_t tsdb_retention = 100000;

  // ---- per-tenant SLOs ---------------------------------------------------
  /// Queued jobs older than this breach the queue-wait SLO sample.
  common::DurationNs queue_wait_slo = 30 * common::kSecond;
  /// Completions slower than this breach the completion-latency SLO.
  common::DurationNs latency_slo = 120 * common::kSecond;
  /// Target good fraction shared by all three SLOs (0.99 = 99%).
  double slo_objective = 0.99;
  /// Burn-rate alert threshold (multiples of the objective's error budget).
  double burn_threshold = 2.0;
  /// Burn windows; 0 derives them from the scrape interval (5x / 20x).
  common::DurationNs slo_short_window = 0;
  common::DurationNs slo_long_window = 0;

  // ---- calibration drift -------------------------------------------------
  /// Register EWMA + CUSUM drift rules on every resource's
  /// calibration_score series.
  bool drift_rules = true;
  double drift_ewma_alpha = 0.2;
  double drift_ewma_k = 4.0;
  double drift_cusum_slack = 0.5;
  double drift_cusum_threshold = 5.0;
  std::size_t drift_warmup = 20;

  // ---- flight recorder ---------------------------------------------------
  /// Forensics dump target; empty derives <data_dir>/flight.json (or
  /// disables dumps when the daemon has no data dir).
  std::string dump_path;
  std::size_t flight_event_tail = 50;
  /// Install fatal-signal handlers that write the last pre-rendered crash
  /// snapshot. Opt-in: only one recorder per process may be armed.
  bool arm_signal_handler = false;
};

class ObservabilityPipeline {
 public:
  ObservabilityPipeline(ObservabilityOptions options,
                        telemetry::MetricsRegistry* registry,
                        telemetry::EventLog* events, common::Clock* clock);
  ~ObservabilityPipeline();

  ObservabilityPipeline(const ObservabilityPipeline&) = delete;
  ObservabilityPipeline& operator=(const ObservabilityPipeline&) = delete;

  /// Installs the domain samplers (SLO deltas, broker scores) and the
  /// drift/burn alert rules. Either pointer may be null (that sampler is
  /// skipped). Call once, before start()/the first tick.
  void attach(Dispatcher* dispatcher, broker::ResourceBroker* broker);

  void start();
  void stop();

  /// One full tick at a grid deadline: scrape, evaluate alerts with burn
  /// windows ending at `deadline`, refresh the crash snapshot. The simtest
  /// harness's deterministic entry point.
  void tick_at(common::TimeNs deadline);
  /// Production path: scrape every due deadline per the catch-up policy,
  /// then evaluate at the newest scraped deadline.
  void run_pending(common::TimeNs now);

  /// Submit-rejection accounting for the rejection-ratio SLO (cold path:
  /// called only when a submission is turned away).
  void note_rejected(const std::string& user);

  /// Fired/resolved/burn-status surface for the admin endpoints.
  telemetry::TimeSeriesDb& tsdb() noexcept { return tsdb_; }
  const telemetry::TimeSeriesDb& tsdb() const noexcept { return tsdb_; }
  telemetry::MetricsCollector& collector() noexcept { return *collector_; }
  telemetry::AlertManager& alerts() noexcept { return alerts_; }
  telemetry::FlightRecorder& recorder() noexcept { return *recorder_; }
  const ObservabilityOptions& options() const noexcept { return options_; }

  common::DurationNs short_window() const noexcept;
  common::DurationNs long_window() const noexcept;

  /// {"scrapes": N, "missed": N, "active_alerts": N, ...} for /admin/status
  /// and the flight dump's "info" section.
  common::Json status_json() const;

 private:
  void install_samplers();
  void install_rules();
  void on_alert(const telemetry::AlertRecord& record);
  void evaluate_at(common::TimeNs deadline);

  ObservabilityOptions options_;
  telemetry::MetricsRegistry* registry_;
  telemetry::EventLog* events_;
  common::Clock* clock_;
  Dispatcher* dispatcher_ = nullptr;
  broker::ResourceBroker* broker_ = nullptr;

  telemetry::TimeSeriesDb tsdb_;
  std::unique_ptr<telemetry::MetricsCollector> collector_;
  telemetry::AlertManager alerts_;
  std::unique_ptr<telemetry::FlightRecorder> recorder_;

  /// Delta baselines turning the dispatcher's cumulative SLO counters into
  /// per-tick event counts, plus the pipeline's own rejection counters.
  /// Guarded by slo_mutex_; touched by the sampler (scrape lock held) and
  /// note_rejected (submit cold path).
  struct SloBaseline {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t latency_over = 0;
    std::uint64_t rejected = 0;
  };
  mutable std::mutex slo_mutex_;
  std::map<std::string, SloBaseline> slo_baseline_;
  std::map<std::string, std::uint64_t> rejected_;

  /// Newest deadline already alert-evaluated (run_pending() is called far
  /// more often than deadlines elapse).
  common::TimeNs last_evaluated_ = -1;

  std::jthread scraper_;
};

}  // namespace qcenv::daemon
