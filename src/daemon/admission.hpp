// Admission control: "quantum job validation" (Figure 2). Programs are
// rejected at the daemon boundary — against the *current* device spec and
// per-class shot quotas — instead of failing after queueing.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/result.hpp"
#include "daemon/queue_core.hpp"
#include "quantum/device.hpp"
#include "quantum/payload.hpp"

namespace qcenv::daemon {

struct AdmissionPolicy {
  /// Per-class shot ceilings; development jobs are kept small by policy
  /// ("non-production jobs configured with a low number of shots", §3.3).
  std::map<JobClass, std::uint64_t> max_shots = {
      {JobClass::kProduction, 1'000'000},
      {JobClass::kTest, 20'000},
      {JobClass::kDevelopment, 2'000},
  };
  /// Global backpressure across all tenants.
  std::size_t max_queue_depth = 10'000;
  /// Ceiling on any one user's queued jobs (0 = unlimited); bounds the
  /// slice of the global queue a single tenant can occupy. Overridable per
  /// user via POST /admin/quotas/:user.
  std::size_t max_pending_per_user = 0;
};

/// Queue occupancy at the admission boundary. Rejections name which limit
/// fired (global vs. per-user) so a 429'd user knows whether to wait for
/// the site or for their own backlog.
struct AdmissionContext {
  std::string user;
  std::size_t queue_depth = 0;
  /// This user's currently queued jobs.
  std::size_t user_pending = 0;
  /// Per-user override of max_pending_per_user (nullopt = policy default).
  std::optional<std::size_t> user_pending_limit;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionPolicy policy = {})
      : policy_(std::move(policy)) {}

  const AdmissionPolicy& policy() const noexcept { return policy_; }

  /// Validates a payload for the given class against the device spec and
  /// the global + per-user queue occupancy in `context`.
  common::Status validate(const quantum::Payload& payload, JobClass cls,
                          const quantum::DeviceSpec& spec,
                          const AdmissionContext& context) const;

 private:
  AdmissionPolicy policy_;
};

}  // namespace qcenv::daemon
