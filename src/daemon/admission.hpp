// Admission control: "quantum job validation" (Figure 2). Programs are
// rejected at the daemon boundary — against the *current* device spec and
// per-class shot quotas — instead of failing after queueing.
#pragma once

#include <cstdint>
#include <map>

#include "common/result.hpp"
#include "daemon/queue_core.hpp"
#include "quantum/device.hpp"
#include "quantum/payload.hpp"

namespace qcenv::daemon {

struct AdmissionPolicy {
  /// Per-class shot ceilings; development jobs are kept small by policy
  /// ("non-production jobs configured with a low number of shots", §3.3).
  std::map<JobClass, std::uint64_t> max_shots = {
      {JobClass::kProduction, 1'000'000},
      {JobClass::kTest, 20'000},
      {JobClass::kDevelopment, 2'000},
  };
  std::size_t max_queue_depth = 10'000;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionPolicy policy = {})
      : policy_(std::move(policy)) {}

  const AdmissionPolicy& policy() const noexcept { return policy_; }

  /// Validates a payload for the given class against the device spec and
  /// current queue depth.
  common::Status validate(const quantum::Payload& payload, JobClass cls,
                          const quantum::DeviceSpec& spec,
                          std::size_t current_depth) const;

 private:
  AdmissionPolicy policy_;
};

}  // namespace qcenv::daemon
