#include "daemon/daemon.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>

#include "common/strings.hpp"

#define QCENV_LOG_COMPONENT "daemon"
#include "common/logging.hpp"

namespace qcenv::daemon {

using common::Json;
using common::Result;
using net::HttpRequest;
using net::HttpResponse;
using net::PathParams;

namespace {

int http_status_for(common::ErrorCode code) {
  switch (code) {
    case common::ErrorCode::kNotFound: return 404;
    case common::ErrorCode::kInvalidArgument: return 400;
    case common::ErrorCode::kProtocol: return 400;
    case common::ErrorCode::kPermissionDenied: return 401;
    case common::ErrorCode::kFailedPrecondition: return 409;
    case common::ErrorCode::kResourceExhausted: return 429;
    case common::ErrorCode::kCancelled: return 410;
    case common::ErrorCode::kUnavailable: return 503;
    default: return 500;
  }
}

HttpResponse error_response(const common::Error& error) {
  Json body = Json::object();
  body["error"] = error.message();
  body["code"] = common::to_string(error.code());
  return HttpResponse::json(http_status_for(error.code()), body.dump());
}

/// Error response that names the trace which recorded the rejection, so a
/// 429/500/503 can be correlated with `/metrics` and the event log.
HttpResponse error_response(const common::Error& error,
                            telemetry::TraceId trace_id) {
  if (trace_id == 0) return error_response(error);
  Json body = Json::object();
  body["error"] = error.message();
  body["code"] = common::to_string(error.code());
  body["trace_id"] = static_cast<long long>(trace_id);
  return HttpResponse::json(http_status_for(error.code()), body.dump());
}

Json job_to_json(const DaemonJob& job) {
  Json out = Json::object();
  out["id"] = static_cast<long long>(job.id);
  out["user"] = job.user;
  out["class"] = to_string(job.job_class);
  out["state"] = to_string(job.state);
  out["total_shots"] = static_cast<long long>(job.total_shots);
  out["shots_done"] = static_cast<long long>(job.shots_done);
  out["submit_time_ns"] = job.submit_time;
  out["first_dispatch_time_ns"] = job.first_dispatch_time;
  out["finish_time_ns"] = job.finish_time;
  out["resource"] = job.resource;
  if (!job.error.empty()) out["error"] = job.error;
  return out;
}

/// Strict non-negative decimal parse of a numeric query parameter. The
/// whole value must be digits: `since=abc` must 400 naming the parameter
/// rather than silently become 0, and `since=-1` must 400 rather than
/// wrap to 2^64-1.
Result<std::uint64_t> parse_numeric_param(const std::string& raw,
                                          const char* name) {
  if (raw.empty() ||
      raw.find_first_not_of("0123456789") != std::string::npos) {
    return common::err::invalid_argument(
        std::string(name) + " must be a non-negative integer, got '" + raw +
        "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw.c_str(), &end, 10);
  if (errno == ERANGE || end != raw.c_str() + raw.size()) {
    return common::err::invalid_argument(std::string(name) +
                                         " is out of range");
  }
  return static_cast<std::uint64_t>(value);
}

/// Same, for parameters consumed as signed nanosecond timestamps/windows
/// (start=/end=/window=): non-negative and within int64 range.
Result<common::TimeNs> parse_time_param(const std::string& raw,
                                        const char* name) {
  auto value = parse_numeric_param(raw, name);
  if (!value.ok()) return value.error();
  if (value.value() >
      static_cast<std::uint64_t>(
          std::numeric_limits<common::TimeNs>::max())) {
    return common::err::invalid_argument(std::string(name) +
                                         " is out of range");
  }
  return static_cast<common::TimeNs>(value.value());
}

qrmi::ResourceRegistry single_resource_fleet(const qrmi::QrmiPtr& resource) {
  qrmi::ResourceRegistry fleet;
  fleet.add(resource->resource_id(), resource);
  return fleet;
}

store::SessionRecord to_session_record(const Session& session) {
  store::SessionRecord record;
  record.id = session.id.value;
  record.user = session.user;
  record.token = session.token;
  record.job_class = session.job_class;
  record.created = session.created;
  record.last_active = session.last_active;
  return record;
}

Session from_session_record(const store::SessionRecord& record) {
  Session session;
  session.id = common::SessionId{record.id};
  session.user = record.user;
  session.token = record.token;
  session.job_class = record.job_class;
  session.created = record.created;
  session.last_active = record.last_active;
  return session;
}

}  // namespace

MiddlewareDaemon::MiddlewareDaemon(DaemonOptions options,
                                   const qrmi::ResourceRegistry& fleet,
                                   qpu::QpuDevice* device,
                                   common::Clock* clock)
    : options_(std::move(options)),
      device_(device),
      clock_(clock),
      traces_(options_.telemetry.tracing
                  ? std::make_unique<telemetry::TraceStore>(
                        options_.telemetry.trace_capacity,
                        options_.telemetry.trace_shards)
                  : nullptr),
      events_(options_.telemetry.event_capacity),
      profiler_(options_.telemetry.profile_capacity),
      sessions_(options_.sessions, clock),
      admission_(options_.admission),
      accounting_(options_.accounting, clock, &metrics_),
      broker_(std::make_shared<broker::ResourceBroker>(options_.broker,
                                                       clock, &metrics_)),
      server_(net::HttpServerOptions{options_.port, 4,
                                     10 * common::kSecond}) {
  // Availability transitions must be logged before the first resource can
  // transition — the ETA engine replays them for drain/outage overlap.
  broker_->set_event_log(&events_);
  auto seeded = broker_->add_all(fleet);
  if (!seeded.ok()) {
    QCENV_LOG(Error) << "fleet seeding failed: " << seeded.to_string();
  }
  const auto names = broker_->names();
  if (!names.empty()) {
    primary_ = broker_->resource(names.front()).value();
  }
  // Recover durable state BEFORE the dispatcher exists, so restored jobs
  // are queued before any lane or client can race them.
  std::uint64_t next_job_id = 1;
  std::vector<store::JobRecord> recovered_jobs;
  if (options_.store.enabled()) {
    recovered_jobs = open_store(next_job_id);
  }
  dispatcher_ = std::make_unique<Dispatcher>(broker_, options_.queue_policy,
                                             clock, &metrics_, store_.get(),
                                             &accounting_, traces_.get(),
                                             &events_);
  dispatcher_->set_terminal_retention(options_.store.terminal_job_retention,
                                      options_.store.terminal_job_cap);
  dispatcher_->set_slow_job_threshold(options_.telemetry.slow_job_threshold);
  if (store_ != nullptr) {
    dispatcher_->restore(recovered_jobs, next_job_id);
    store_->set_snapshot_provider([this] { return build_snapshot(); });
  }
  if (options_.telemetry.observability.enabled) {
    ObservabilityOptions obs = options_.telemetry.observability;
    if (obs.dump_path.empty() && options_.store.enabled()) {
      obs.dump_path = options_.store.data_dir + "/flight.json";
    }
    observability_ = std::make_unique<ObservabilityPipeline>(
        obs, &metrics_, &events_, clock_);
    observability_->attach(dispatcher_.get(), broker_.get());
    dispatcher_->set_latency_slo(obs.latency_slo);
    dispatcher_->set_lane_heartbeat([this](const std::string& lane) {
      observability_->recorder().heartbeat(lane);
    });
    if (store_ != nullptr) {
      store_->set_writer_heartbeat([this] {
        observability_->recorder().heartbeat("journal_writer");
      });
      // Journal disk death: capture the black box while the failure is
      // fresh. The hook runs once, after the journal_fail_stop event is
      // logged, so the dump's event tail names the failure itself.
      store_->set_fail_stop_hook([this](const std::string& error) {
        auto dumped =
            observability_->recorder().dump("journal_fail_stop: " + error);
        if (dumped.ok()) {
          QCENV_LOG(Warn) << "flight recorder dumped to "
                          << dumped.value();
        } else {
          QCENV_LOG(Error) << "flight dump failed: "
                           << dumped.error().to_string();
        }
      });
    }
    observability_->start();
  }
  // Before any job can finish: lanes fold terminal traces into the
  // critical-path profiler from finish_locked.
  dispatcher_->set_profiler(&profiler_);
  EtaEngine::Deps eta_deps;
  eta_deps.dispatcher = dispatcher_.get();
  eta_deps.broker = broker_.get();
  eta_deps.accounting = &accounting_;
  eta_deps.tsdb =
      observability_ != nullptr ? &observability_->tsdb() : nullptr;
  eta_deps.events = &events_;
  eta_deps.clock = clock_;
  eta_deps.policy = options_.queue_policy;
  eta_ = std::make_unique<EtaEngine>(eta_deps, options_.telemetry.eta);
  if (options_.federation.enabled) {
    federation_ = std::make_unique<federation::FederationRouter>(
        options_.federation,
        [this] {
          federation::FederationRouter::LocalStatus status;
          status.queue_depth = dispatcher_->queued_total();
          const auto fleet = broker_->summarize();
          status.healthy_resources = fleet.healthy;
          status.mean_score = fleet.mean_score;
          return status;
        },
        clock_, &metrics_, &events_);
    if (options_.store.enabled()) {
      // The durable fencing epoch lives next to the journal: a daemon
      // restarted after being promoted resumes AT its promoted epoch,
      // not at 0 (where the old leader's WAL could out-fence it again).
      federation_->set_data_dir(options_.store.data_dir);
      auto epoch = federation::read_epoch(options_.store.data_dir);
      if (epoch.ok()) {
        federation_->set_epoch(epoch.value());
      } else {
        QCENV_LOG(Error) << "unreadable federation epoch file: "
                         << epoch.error().to_string();
      }
    }
  }
  install_routes();
}

std::vector<store::JobRecord> MiddlewareDaemon::open_store(
    std::uint64_t& next_job_id) {
  store_ = std::make_unique<store::StateStore>(options_.store, clock_,
                                               &metrics_);
  // Before open(): the group-commit writer thread starts there, and its
  // fail-stop / fsync-stall events must have somewhere to go from the
  // first batch.
  store_->set_event_log(&events_);
  auto recovered = store_->open();
  if (!recovered.ok()) {
    // Refusing to start would take the whole access node down with the
    // store; running in-memory keeps users working and screams in the log.
    // Quarantine the data-dir so a LATER restart cannot replay state that
    // went stale during the in-memory period (resurrecting closed
    // sessions' tokens and re-running old jobs).
    QCENV_LOG(Error) << "store unusable, continuing WITHOUT durability: "
                     << recovered.error().to_string();
    store_.reset();
    const std::string quarantine = options_.store.data_dir + ".unusable-" +
                                   std::to_string(clock_->now());
    std::error_code ec;
    std::filesystem::rename(options_.store.data_dir, quarantine, ec);
    if (ec) {
      QCENV_LOG(Error) << "could not quarantine '"
                       << options_.store.data_dir << "': " << ec.message();
    } else {
      QCENV_LOG(Warn) << "quarantined unusable store data-dir to '"
                      << quarantine << "'";
    }
    return {};
  }
  for (const auto& session : recovered.value().sessions) {
    sessions_.restore(from_session_record(session));
  }
  // Rebuild the usage ledger: snapshot records first, then the journal's
  // newer batch/completion charges on top — decayed usage survives the
  // restart exactly, so post-recovery fair-share ordering matches a run
  // that never crashed.
  accounting_.restore(recovered.value().usage,
                      recovered.value().usage_deltas);
  next_job_id = recovered.value().next_job_id;
  return std::move(recovered).value().jobs;
}

store::StoreSnapshot MiddlewareDaemon::build_snapshot() {
  // Job state carries its own exact watermark (read under the dispatcher
  // lock). For sessions, read the watermark BEFORE listing: any session
  // event at or below it committed its mutation first, so the list below
  // reflects it; later events replay idempotently on top.
  store::StoreSnapshot snapshot = dispatcher_->durable_snapshot();
  snapshot.sessions_seq = store_->journal().last_seq();
  for (const auto& session : sessions_.list()) {
    snapshot.sessions.push_back(to_session_record(session));
  }
  return snapshot;
}

std::size_t MiddlewareDaemon::session_removed(const Session& session) {
  const std::size_t cancelled =
      dispatcher_->cancel_for_session(session.id);
  if (store_ != nullptr) store_->session_closed(session.token);
  if (cancelled > 0) {
    QCENV_LOG(Info) << "session " << session.id.to_string() << " of '"
                    << session.user << "' closed; cancelled " << cancelled
                    << " orphaned job(s)";
  }
  return cancelled;
}

MiddlewareDaemon::MiddlewareDaemon(DaemonOptions options,
                                   qrmi::QrmiPtr resource,
                                   qpu::QpuDevice* device,
                                   common::Clock* clock)
    : MiddlewareDaemon(std::move(options), single_resource_fleet(resource),
                       device, clock) {}

MiddlewareDaemon::~MiddlewareDaemon() { stop(); }

Result<std::uint16_t> MiddlewareDaemon::start() {
  auto port = server_.start();
  if (port.ok()) {
    QCENV_LOG(Info) << "middleware daemon on 127.0.0.1:" << port.value();
    if (federation_ != nullptr) federation_->start();
  }
  return port;
}

void MiddlewareDaemon::stop() {
  // Peer polling first: a poll landing mid-teardown would read members
  // this function is about to destroy state under.
  if (federation_ != nullptr) federation_->stop();
  server_.stop();
  // No scrapes may run once subsystems start tearing down: the samplers
  // read the dispatcher and broker.
  if (observability_ != nullptr) observability_->stop();
  // Stop the compaction thread while the dispatcher (whose state the
  // snapshot provider reads) is still alive, and make the journal durable.
  if (store_ != nullptr) store_->shutdown();
}

JobClass MiddlewareDaemon::resolve_class(const std::string& partition,
                                         JobClass session_default) const {
  if (partition.empty()) return session_default;
  const auto it = options_.partition_class.find(partition);
  return it != options_.partition_class.end() ? it->second : session_default;
}

Result<Session> MiddlewareDaemon::open_session(const std::string& user,
                                               JobClass cls) {
  auto session = sessions_.create(user, cls);
  if (!session.ok()) return session.error();
  if (store_ != nullptr) {
    store_->session_created(to_session_record(session.value()));
  }
  return session;
}

Result<std::size_t> MiddlewareDaemon::close_session(
    const std::string& token) {
  auto session = sessions_.authenticate(token);
  if (!session.ok()) return session.error();
  QCENV_RETURN_IF_ERROR(sessions_.close(token));
  // A closed session must not leave orphans in the queue.
  return session_removed(session.value());
}

Result<std::string> MiddlewareDaemon::ingress_session(
    const std::string& user) {
  {
    std::scoped_lock lock(ingress_mutex_);
    const auto it = ingress_tokens_.find(user);
    // Re-authenticate the cached token: idle expiry may have reaped the
    // session between forwards.
    if (it != ingress_tokens_.end() &&
        sessions_.authenticate(it->second).ok()) {
      return it->second;
    }
  }
  // The session default class is a placeholder — forwarded submissions
  // carry their partition, and resolve_class overrides per job.
  auto session = open_session(user, JobClass::kDevelopment);
  if (!session.ok()) return session.error();
  std::scoped_lock lock(ingress_mutex_);
  ingress_tokens_[user] = session.value().token;
  return session.value().token;
}

Result<MiddlewareDaemon::Submitted> MiddlewareDaemon::submit_job(
    const std::string& token, quantum::Payload payload,
    const SubmitHints& hints, telemetry::TraceId* trace_out) {
  auto session = sessions_.authenticate(token);
  if (!session.ok()) return session.error();
  const std::string user = session.value().user;
  // Federation: when this daemon cannot take the job (demoted to
  // standby, fleet down, queue saturated — choose_peer decides), route
  // it to the best-scored peer BEFORE touching local admission state.
  // A failed forward falls through to the normal local path below: a
  // submission always lands in exactly one daemon's queue, never
  // nowhere. Resource-pinned jobs and peer-forwarded arrivals stay put.
  if (federation_ != nullptr && !hints.no_forward &&
      hints.resource.empty()) {
    if (const auto peer = federation_->choose_peer("")) {
      auto forwarded = federation_->forward(*peer, user, hints.partition,
                                            payload.to_json());
      if (forwarded.ok()) {
        events_.log(clock_->now(), telemetry::Severity::kInfo,
                    "job_forwarded",
                    "submission routed to peer '" + *peer + "' as job " +
                        std::to_string(forwarded.value().remote_id),
                    user, forwarded.value().remote_id);
        Submitted submitted;
        submitted.id = forwarded.value().remote_id;
        submitted.job_class =
            resolve_class(hints.partition, session.value().job_class);
        submitted.resource = forwarded.value().resource;
        submitted.forwarded_to = *peer;
        return submitted;
      }
      events_.log(clock_->now(), telemetry::Severity::kWarn,
                  "forward_failed",
                  "peer '" + *peer + "' refused a forwarded submission (" +
                      forwarded.error().message() +
                      "); falling back to the local queue",
                  user);
    }
  }
  // Every traced submission's timeline starts here: the `admission` stage
  // covers validation and accounting, and it opens BEFORE any check can
  // reject — so 429/500/503 responses carry a trace id too.
  telemetry::TraceId trace = 0;
  const common::TimeNs trace_start = clock_->now();
  if (traces_ != nullptr) {
    // One relaxed fetch_add; the trace's spans materialize off the hot
    // path (at first claim/finish/read, or in `rejected` below).
    trace = traces_->allocate();
    if (trace_out != nullptr) *trace_out = trace;
  }
  const auto rejected = [&](const common::Error& error) -> common::Error {
    if (trace != 0) {
      traces_->record_rejected(trace, user, trace_start, clock_->now());
    }
    events_.log(clock_->now(), telemetry::Severity::kWarn,
                "submit_rejected", error.message(), user, 0, trace);
    // Rejection-ratio SLO input (cold path by definition).
    if (observability_ != nullptr) observability_->note_rejected(user);
    return error;
  };
  const JobClass cls =
      resolve_class(hints.partition, session.value().job_class);
  Dispatcher::SubmitOptions placement;
  placement.resource = hints.resource;
  placement.policy = hints.policy;
  placement.trace_id = trace;
  placement.trace_start = trace_start;
  // Validate against the spec of the resource the job is pinned to (or
  // the primary when the broker places it freely).
  qrmi::QrmiPtr spec_source = primary_;
  if (!placement.resource.empty()) {
    auto pinned = broker_->resource(placement.resource);
    if (!pinned.ok()) return rejected(pinned.error());
    spec_source = std::move(pinned).value();
  }
  if (spec_source == nullptr) {
    return rejected(common::err::failed_precondition(
        "no resources registered with this daemon"));
  }
  auto spec = spec_source->target();
  if (!spec.ok()) return rejected(spec.error());
  AdmissionContext context;
  context.user = user;
  // One relaxed atomic load — the submit hot path must not walk (and
  // lock) every queue shard just to read the global depth.
  context.queue_depth = dispatcher_->queued_total();
  context.user_pending = dispatcher_->pending_for_user(context.user);
  const auto pending_override = accounting_.pending_limit(context.user);
  if (pending_override.has_value()) {
    context.user_pending_limit = static_cast<std::size_t>(*pending_override);
  }
  auto admitted = admission_.validate(payload, cls, spec.value(), context);
  if (!admitted.ok()) return rejected(admitted.error());
  // Per-user rate limits and in-flight shot caps (HTTP 429). Consumes a
  // token and reserves the shots; released as batches execute or if the
  // submission fails below.
  const std::uint64_t shots = payload.shots();
  auto reserved = accounting_.admit_submission(context.user, shots);
  if (!reserved.ok()) return rejected(reserved.error());
  // The dispatcher re-checks the pending cap under its own lock — the
  // only race-free enforcement point for concurrent submits.
  placement.user_pending_limit = context.user_pending_limit.value_or(
      options_.admission.max_pending_per_user);
  auto id = dispatcher_->submit(session.value().id, user, cls,
                                std::move(payload), placement);
  if (!id.ok()) {
    accounting_.release_submission(context.user, shots);
    return rejected(id.error());
  }
  // Close the submit/close race: if the session died between the
  // authenticate above and this submit, its cancel sweep may have run
  // before the job existed — sweep it ourselves. The dispatcher owns the
  // trace from here (the cancel finishes it), so only log the event.
  if (!sessions_.authenticate(token).ok()) {
    (void)dispatcher_->cancel_for_session(session.value().id);
    events_.log(clock_->now(), telemetry::Severity::kWarn,
                "submit_rejected", "session closed during submission",
                user, id.value(), trace);
    return common::err::permission_denied("session closed during submission");
  }
  Submitted submitted;
  submitted.id = id.value();
  submitted.job_class = cls;
  auto job = dispatcher_->query(id.value());
  if (job.ok()) submitted.resource = job.value().resource;
  return submitted;
}

void MiddlewareDaemon::install_routes() {
  // Instrumentation middleware: count requests per path prefix.
  server_.set_middleware(
      [this](const HttpRequest& request) -> std::optional<HttpResponse> {
        metrics_
            .counter("daemon_http_requests_total",
                     {{"method", request.method}}, "REST requests")
            .increment();
        return std::nullopt;
      });

  auto& router = server_.router();

  const auto authenticate =
      [this](const HttpRequest& request) -> Result<Session> {
    const auto it = request.headers.find("X-Session-Token");
    if (it == request.headers.end()) {
      return common::err::permission_denied("missing X-Session-Token header");
    }
    return sessions_.authenticate(it->second);
  };
  const auto require_admin =
      [this](const HttpRequest& request) -> common::Status {
    const auto it = request.headers.find("X-Admin-Key");
    if (it == request.headers.end() || it->second != options_.admin_key) {
      return common::err::permission_denied("admin key required");
    }
    return common::Status::ok_status();
  };

  router.add("POST", "/v1/sessions",
             [this](const HttpRequest& request, const PathParams&) {
               auto body = Json::parse(request.body);
               if (!body.ok()) return error_response(body.error());
               auto user = body.value().get_string("user");
               if (!user.ok()) return error_response(user.error());
               JobClass cls = JobClass::kDevelopment;
               if (body.value().contains("class")) {
                 auto parsed = job_class_from_string(
                     body.value().at_or_null("class").as_string());
                 if (!parsed.ok()) return error_response(parsed.error());
                 cls = parsed.value();
               }
               auto session = open_session(user.value(), cls);
               if (!session.ok()) return error_response(session.error());
               Json out = Json::object();
               out["session_id"] = session.value().id.to_string();
               out["token"] = session.value().token;
               out["class"] = to_string(session.value().job_class);
               return HttpResponse::json(201, out.dump());
             });

  // Extracts the session token header; the programmatic helpers
  // authenticate it themselves (one lookup, not two).
  const auto session_token =
      [](const HttpRequest& request) -> Result<std::string> {
    const auto it = request.headers.find("X-Session-Token");
    if (it == request.headers.end()) {
      return common::err::permission_denied("missing X-Session-Token header");
    }
    return it->second;
  };

  router.add("DELETE", "/v1/sessions",
             [this, session_token](const HttpRequest& request,
                                   const PathParams&) {
               auto token = session_token(request);
               if (!token.ok()) return error_response(token.error());
               auto cancelled = close_session(token.value());
               if (!cancelled.ok()) return error_response(cancelled.error());
               Json out = Json::object();
               out["closed"] = true;
               out["cancelled_jobs"] =
                   static_cast<long long>(cancelled.value());
               return HttpResponse::json(200, out.dump());
             });

  router.add("GET", "/v1/device",
             [this](const HttpRequest&, const PathParams&) {
               if (primary_ == nullptr) {
                 return error_response(common::err::failed_precondition(
                     "no resources registered with this daemon"));
               }
               auto spec = primary_->target();
               if (!spec.ok()) return error_response(spec.error());
               return HttpResponse::json(200, spec.value().to_json().dump());
             });

  router.add("GET", "/v1/resources",
             [this](const HttpRequest&, const PathParams&) {
               Json out = Json::array();
               for (const auto& status : broker_->snapshot()) {
                 out.push_back(status.to_json());
               }
               return HttpResponse::json(200, out.dump());
             });

  router.add(
      "POST", "/v1/jobs",
      [this, session_token](const HttpRequest& request, const PathParams&) {
        auto token = session_token(request);
        if (!token.ok()) return error_response(token.error());
        auto body = Json::parse(request.body);
        if (!body.ok()) return error_response(body.error());
        auto payload =
            quantum::Payload::from_json(body.value().at_or_null("payload"));
        if (!payload.ok()) return error_response(payload.error());
        SubmitHints hints;
        if (body.value().contains("partition")) {
          auto parsed = body.value().get_string("partition");
          if (!parsed.ok()) return error_response(parsed.error());
          hints.partition = std::move(parsed).value();
        }
        if (body.value().contains("resource")) {
          auto parsed = body.value().get_string("resource");
          if (!parsed.ok()) return error_response(parsed.error());
          hints.resource = std::move(parsed).value();
        }
        if (body.value().contains("policy")) {
          auto name = body.value().get_string("policy");
          if (!name.ok()) return error_response(name.error());
          auto parsed = broker::policy_from_string(name.value());
          if (!parsed.ok()) return error_response(parsed.error());
          hints.policy = parsed.value();
        }
        telemetry::TraceId trace = 0;
        auto submitted = submit_job(token.value(),
                                    std::move(payload).value(), hints,
                                    &trace);
        if (!submitted.ok()) {
          HttpResponse response = error_response(submitted.error(), trace);
          // Rate-limited submissions learn when to come back: the token
          // bucket's refill time, rounded up to whole seconds (HTTP
          // Retry-After), the same number the ETA endpoint reports as the
          // rate_limited wait cause. Caps without a refill (in-flight
          // shots, pending jobs) send no header.
          if (response.status == 429) {
            if (auto limited = sessions_.authenticate(token.value());
                limited.ok()) {
              const common::DurationNs retry =
                  accounting_.rate_limiter().retry_after(
                      limited.value().user, clock_->now());
              if (retry > 0) {
                response.headers["Retry-After"] = std::to_string(
                    (retry + common::kSecond - 1) / common::kSecond);
              }
            }
          }
          return response;
        }
        Json out = Json::object();
        out["job_id"] = static_cast<long long>(submitted.value().id);
        out["class"] = to_string(submitted.value().job_class);
        out["resource"] = submitted.value().resource;
        if (!submitted.value().forwarded_to.empty()) {
          out["forwarded_to"] = submitted.value().forwarded_to;
        }
        if (trace != 0) out["trace_id"] = static_cast<long long>(trace);
        // The predicted start/finish window rides the 201: REST clients
        // get their ETA without a second round-trip. Off the programmatic
        // hot path on purpose — bench_submit_path drives submit_job
        // directly and never pays for the queue snapshot below. A
        // forwarded job's id belongs to the peer; its ETA does too.
        if (submitted.value().forwarded_to.empty()) {
          if (auto eta = eta_->estimate(submitted.value().id); eta.ok()) {
            out["eta"] = eta.value().to_json();
          }
        }
        return HttpResponse::json(201, out.dump());
      });

  router.add("GET", "/v1/jobs/:id/eta",
             [this, authenticate](const HttpRequest& request,
                                  const PathParams& params) {
               auto session = authenticate(request);
               if (!session.ok()) return error_response(session.error());
               const std::uint64_t id = std::strtoull(
                   params.at("id").c_str(), nullptr, 10);
               auto job = dispatcher_->query(id);
               if (!job.ok()) return error_response(job.error());
               if (job.value().user != session.value().user) {
                 return error_response(common::err::permission_denied(
                     "job belongs to another user"));
               }
               auto eta = eta_->estimate(id);
               if (!eta.ok()) return error_response(eta.error());
               return HttpResponse::json(200, eta.value().to_json().dump());
             });

  router.add("GET", "/v1/jobs/:id/explain",
             [this, authenticate](const HttpRequest& request,
                                  const PathParams& params) {
               auto session = authenticate(request);
               if (!session.ok()) return error_response(session.error());
               const std::uint64_t id = std::strtoull(
                   params.at("id").c_str(), nullptr, 10);
               auto job = dispatcher_->query(id);
               if (!job.ok()) return error_response(job.error());
               if (job.value().user != session.value().user) {
                 return error_response(common::err::permission_denied(
                     "job belongs to another user"));
               }
               auto report = eta_->explain(id);
               if (!report.ok()) return error_response(report.error());
               return HttpResponse::json(200,
                                         report.value().to_json().dump());
             });

  router.add("GET", "/v1/jobs/:id",
             [this, authenticate](const HttpRequest& request,
                                  const PathParams& params) {
               auto session = authenticate(request);
               if (!session.ok()) return error_response(session.error());
               const std::uint64_t id = std::strtoull(
                   params.at("id").c_str(), nullptr, 10);
               auto job = dispatcher_->query(id);
               if (!job.ok()) return error_response(job.error());
               if (job.value().user != session.value().user) {
                 return error_response(common::err::permission_denied(
                     "job belongs to another user"));
               }
               return HttpResponse::json(200, job_to_json(job.value()).dump());
             });

  router.add("GET", "/v1/jobs/:id/trace",
             [this, authenticate](const HttpRequest& request,
                                  const PathParams& params) {
               auto session = authenticate(request);
               if (!session.ok()) return error_response(session.error());
               const std::uint64_t id = std::strtoull(
                   params.at("id").c_str(), nullptr, 10);
               auto job = dispatcher_->query(id);
               if (!job.ok()) return error_response(job.error());
               if (job.value().user != session.value().user) {
                 return error_response(common::err::permission_denied(
                     "job belongs to another user"));
               }
               if (traces_ == nullptr) {
                 return error_response(common::err::not_found(
                     "tracing is disabled on this daemon"));
               }
               // Materializes deferred submit spans on demand, so queued
               // jobs are traceable before their first dispatch.
               auto trace = dispatcher_->trace(id);
               if (!trace.ok()) {
                 if (trace.error().message() == "trace evicted") {
                   return error_response(common::err::not_found(
                       "trace evicted (raise telemetry.trace_capacity)"));
                 }
                 return error_response(trace.error());
               }
               return HttpResponse::json(
                   200,
                   telemetry::TraceStore::to_json(trace.value()).dump());
             });

  router.add("GET", "/v1/jobs/:id/result",
             [this, authenticate](const HttpRequest& request,
                                  const PathParams& params) {
               auto session = authenticate(request);
               if (!session.ok()) return error_response(session.error());
               const std::uint64_t id = std::strtoull(
                   params.at("id").c_str(), nullptr, 10);
               auto owner = dispatcher_->query(id);
               if (!owner.ok()) return error_response(owner.error());
               if (owner.value().user != session.value().user) {
                 return error_response(common::err::permission_denied(
                     "job belongs to another user"));
               }
               auto samples = dispatcher_->result(id);
               if (!samples.ok()) return error_response(samples.error());
               return HttpResponse::json(200,
                                         samples.value().to_json().dump());
             });

  router.add("DELETE", "/v1/jobs/:id",
             [this, authenticate](const HttpRequest& request,
                                  const PathParams& params) {
               auto session = authenticate(request);
               if (!session.ok()) return error_response(session.error());
               const std::uint64_t id = std::strtoull(
                   params.at("id").c_str(), nullptr, 10);
               auto owner = dispatcher_->query(id);
               if (!owner.ok()) return error_response(owner.error());
               if (owner.value().user != session.value().user) {
                 return error_response(common::err::permission_denied(
                     "job belongs to another user"));
               }
               auto status = dispatcher_->cancel(id);
               if (!status.ok()) return error_response(status.error());
               return HttpResponse::json(200, R"({"cancelled":true})");
             });

  router.add("GET", "/v1/jobs",
             [this, authenticate](const HttpRequest& request,
                                  const PathParams&) {
               auto session = authenticate(request);
               if (!session.ok()) return error_response(session.error());
               Json out = Json::array();
               for (const auto& job : dispatcher_->jobs_snapshot()) {
                 if (job.user == session.value().user) {
                   out.push_back(job_to_json(job));
                 }
               }
               return HttpResponse::json(200, out.dump());
             });

  router.add("GET", "/v1/queue",
             [this](const HttpRequest&, const PathParams&) {
               Json out = Json::object();
               Json depths = Json::object();
               for (const auto& [cls, depth] : dispatcher_->queue_depths()) {
                 depths[to_string(cls)] = static_cast<long long>(depth);
               }
               out["depths"] = std::move(depths);
               Json order = Json::array();
               for (const std::uint64_t id : dispatcher_->queue_order()) {
                 order.push_back(static_cast<long long>(id));
               }
               out["order"] = std::move(order);
               // Per-resource lane view: queued/running jobs per lane plus
               // the broker's live in-flight batch count.
               std::map<std::string, std::size_t> inflight;
               for (const auto& status : broker_->snapshot()) {
                 inflight[status.name] = status.inflight_batches;
               }
               Json lanes = Json::object();
               for (const auto& [name, depth] : dispatcher_->lane_depths()) {
                 Json lane = Json::object();
                 lane["queued"] = static_cast<long long>(depth.queued);
                 lane["running"] = static_cast<long long>(depth.running);
                 const auto it = inflight.find(name);
                 lane["inflight_batches"] = static_cast<long long>(
                     it != inflight.end() ? it->second : 0);
                 lanes[name] = std::move(lane);
               }
               out["lanes"] = std::move(lanes);
               // Per-tenant view: queued jobs per user, so a 429'd client
               // can see whose backlog is occupying the queue.
               Json users = Json::object();
               for (const auto& [user, count] :
                    dispatcher_->user_pending_counts()) {
                 users[user] = static_cast<long long>(count);
               }
               out["users"] = std::move(users);
               out["draining"] = dispatcher_->draining();
               return HttpResponse::json(200, out.dump());
             });

  router.add("GET", "/v1/usage",
             [this, authenticate](const HttpRequest& request,
                                  const PathParams&) {
               auto session = authenticate(request);
               if (!session.ok()) return error_response(session.error());
               const std::string& user = session.value().user;
               return HttpResponse::json(
                   200,
                   accounting_
                       .usage_json(user, dispatcher_->pending_for_user(user))
                       .dump());
             });

  router.add("GET", "/metrics",
             [this](const HttpRequest&, const PathParams&) {
               HttpResponse response =
                   HttpResponse::text(200, metrics_.expose());
               // The version suffix is the Prometheus exposition-format
               // contract; only this endpoint speaks it.
               response.headers["Content-Type"] =
                   "text/plain; version=0.0.4";
               return response;
             });

  // ---- Admin surface ------------------------------------------------------

  router.add("GET", "/admin/status",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               Json out = Json::object();
               out["sessions"] = static_cast<long long>(sessions_.count());
               out["draining"] = dispatcher_->draining();
               Json depths = Json::object();
               for (const auto& [cls, depth] : dispatcher_->queue_depths()) {
                 depths[to_string(cls)] = static_cast<long long>(depth);
               }
               out["queue"] = std::move(depths);
               if (device_ != nullptr) {
                 const auto counters = device_->counters();
                 out["qpu_jobs_executed"] =
                     static_cast<long long>(counters.jobs_executed);
                 out["qpu_busy_seconds"] = common::to_seconds(counters.busy_ns);
                 out["qpu_fidelity"] =
                     device_->spec().calibration.fidelity_estimate();
               }
               return HttpResponse::json(200, out.dump());
             });

  // Structured-event tail: `?since=<seq>` returns events AFTER that
  // sequence number (0 = from the oldest retained), so operators can poll
  // incrementally; `last_seq` is the cursor for the next call.
  router.add("GET", "/admin/events",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               std::uint64_t since = 0;
               if (const auto raw = request.query_param("since")) {
                 auto parsed = parse_numeric_param(*raw, "since");
                 if (!parsed.ok()) return error_response(parsed.error());
                 since = parsed.value();
               }
               std::size_t max = 256;
               if (const auto raw = request.query_param("max")) {
                 auto parsed = parse_numeric_param(*raw, "max");
                 if (!parsed.ok()) return error_response(parsed.error());
                 max = static_cast<std::size_t>(parsed.value());
               }
               telemetry::EventLog::Filter filter;
               if (const auto raw = request.query_param("severity")) {
                 if (*raw == "info") {
                   filter.severity = telemetry::Severity::kInfo;
                 } else if (*raw == "warn") {
                   filter.severity = telemetry::Severity::kWarn;
                 } else if (*raw == "error") {
                   filter.severity = telemetry::Severity::kError;
                 } else {
                   return error_response(common::err::invalid_argument(
                       "severity must be info|warn|error"));
                 }
               }
               if (const auto raw = request.query_param("kind")) {
                 filter.kind = *raw;
               }
               Json out = Json::object();
               Json list = Json::array();
               for (const auto& event : events_.since(since, max, filter)) {
                 list.push_back(telemetry::EventLog::to_json(event));
               }
               out["events"] = std::move(list);
               out["last_seq"] =
                   static_cast<long long>(events_.last_seq());
               return HttpResponse::json(200, out.dump());
             });

  // ---- observability: TSDB / alerts / SLO / flight recorder --------------
  const auto require_observability =
      [this]() -> common::Result<ObservabilityPipeline*> {
    if (observability_ == nullptr) {
      return common::err::failed_precondition("observability is disabled");
    }
    return observability_.get();
  };

  router.add(
      "GET", "/admin/tsdb/query",
      [this, require_admin, require_observability](
          const HttpRequest& request, const PathParams&) {
        auto admin = require_admin(request);
        if (!admin.ok()) return error_response(admin.error());
        auto obs = require_observability();
        if (!obs.ok()) return error_response(obs.error());
        const auto series_param = request.query_param("series");
        if (!series_param) {
          return error_response(
              common::err::invalid_argument("series= is required"));
        }
        auto key = telemetry::SeriesKey::parse(*series_param);
        if (!key.ok()) return error_response(key.error());
        common::TimeNs start = 0;
        common::TimeNs end = std::numeric_limits<common::TimeNs>::max();
        if (const auto raw = request.query_param("start")) {
          auto parsed = parse_time_param(*raw, "start");
          if (!parsed.ok()) return error_response(parsed.error());
          start = parsed.value();
        }
        if (const auto raw = request.query_param("end")) {
          auto parsed = parse_time_param(*raw, "end");
          if (!parsed.ok()) return error_response(parsed.error());
          end = parsed.value();
        }
        const telemetry::TimeSeriesDb& tsdb = obs.value()->tsdb();
        Json out = Json::object();
        out["series"] = key.value().to_string();
        common::DurationNs window = 0;
        if (const auto raw = request.query_param("window")) {
          auto parsed = parse_time_param(*raw, "window");
          if (!parsed.ok()) return error_response(parsed.error());
          window = parsed.value();
        }
        if (window > 0) {
          telemetry::Aggregation agg = telemetry::Aggregation::kMean;
          if (const auto raw = request.query_param("agg")) {
            if (*raw == "mean") {
              agg = telemetry::Aggregation::kMean;
            } else if (*raw == "min") {
              agg = telemetry::Aggregation::kMin;
            } else if (*raw == "max") {
              agg = telemetry::Aggregation::kMax;
            } else if (*raw == "last") {
              agg = telemetry::Aggregation::kLast;
            } else if (*raw == "sum") {
              agg = telemetry::Aggregation::kSum;
            } else if (*raw == "count") {
              agg = telemetry::Aggregation::kCount;
            } else if (*raw == "rate") {
              agg = telemetry::Aggregation::kRate;
            } else {
              return error_response(common::err::invalid_argument(
                  "agg must be mean|min|max|last|sum|count|rate"));
            }
          }
          // aggregate() windows cover [start, end); a max end would
          // overflow the window arithmetic, so clamp to the data.
          if (end == std::numeric_limits<common::TimeNs>::max()) {
            const auto last = tsdb.last(key.value());
            end = last ? last->time + 1 : start;
          }
          Json windows = Json::array();
          for (const auto& point :
               tsdb.aggregate(key.value(), start, end, window, agg)) {
            Json entry = Json::object();
            entry["window_start"] = point.window_start;
            entry["value"] = point.value;
            entry["samples"] = point.samples;
            windows.push_back(std::move(entry));
          }
          out["windows"] = std::move(windows);
        } else {
          common::JsonArray points;
          for (const auto& point :
               tsdb.query_range(key.value(), start, end)) {
            common::JsonArray pair;
            pair.reserve(2);
            pair.emplace_back(point.time);
            pair.emplace_back(point.value);
            points.emplace_back(std::move(pair));
          }
          out["points"] = Json(std::move(points));
        }
        return HttpResponse::json(200, out.dump());
      });

  router.add(
      "GET", "/admin/tsdb/export",
      [this, require_admin, require_observability](
          const HttpRequest& request, const PathParams&) {
        auto admin = require_admin(request);
        if (!admin.ok()) return error_response(admin.error());
        auto obs = require_observability();
        if (!obs.ok()) return error_response(obs.error());
        const telemetry::TimeSeriesDb& tsdb = obs.value()->tsdb();
        std::vector<telemetry::SeriesKey> keys;
        if (const auto raw = request.query_param("series")) {
          auto key = telemetry::SeriesKey::parse(*raw);
          if (!key.ok()) return error_response(key.error());
          keys.push_back(std::move(key).value());
        } else {
          keys = tsdb.series();
        }
        std::string body;
        for (const auto& key : keys) {
          auto lines = tsdb.dump_series(key);
          if (!lines.ok()) return error_response(lines.error());
          body += lines.value();
        }
        return HttpResponse::text(200, body);
      });

  router.add("GET", "/admin/alerts",
             [this, require_admin, require_observability](
                 const HttpRequest& request, const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               auto obs = require_observability();
               if (!obs.ok()) return error_response(obs.error());
               return HttpResponse::json(
                   200, obs.value()->alerts().to_json().dump());
             });

  router.add("GET", "/admin/slo",
             [this, require_admin, require_observability](
                 const HttpRequest& request, const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               auto obs = require_observability();
               if (!obs.ok()) return error_response(obs.error());
               ObservabilityPipeline* pipeline = obs.value();
               const common::TimeNs now =
                   pipeline->collector().last_scrape() >= 0
                       ? pipeline->collector().last_scrape()
                       : clock_->now();
               Json out = Json::object();
               Json burns = Json::array();
               for (const auto& status :
                    pipeline->alerts().burn_status(pipeline->tsdb(), now)) {
                 burns.push_back(status.to_json());
               }
               out["burn_rates"] = std::move(burns);
               out["objective"] = pipeline->options().slo_objective;
               out["burn_threshold"] = pipeline->options().burn_threshold;
               out["short_window_ns"] = pipeline->short_window();
               out["long_window_ns"] = pipeline->long_window();
               out["evaluated_at"] = now;
               return HttpResponse::json(200, out.dump());
             });

  // Critical-path profile: collapsed stacks of terminal jobs finishing in
  // the trailing `window` ns (0/absent = everything retained), merged
  // fleet-wide and split per resource / per tenant, plus regressions
  // against the recorded baseline (stacks whose share of total self time
  // grew more than `threshold` share points).
  const auto profile_window =
      [this](const HttpRequest& request)
      -> Result<std::pair<common::TimeNs, common::TimeNs>> {
    const common::TimeNs now = clock_->now();
    common::DurationNs window = 0;
    if (const auto raw = request.query_param("window")) {
      auto parsed = parse_time_param(*raw, "window");
      if (!parsed.ok()) return parsed.error();
      window = parsed.value();
    }
    const common::TimeNs since =
        window > 0 ? (now > window ? now - window : 0) : 0;
    return std::pair<common::TimeNs, common::TimeNs>{since, now};
  };

  router.add("GET", "/admin/profile",
             [this, require_admin, profile_window](
                 const HttpRequest& request, const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               auto range = profile_window(request);
               if (!range.ok()) return error_response(range.error());
               const auto [since, until] = range.value();
               double threshold = 0.05;
               if (const auto raw = request.query_param("threshold")) {
                 threshold = std::strtod(raw->c_str(), nullptr);
               }
               Json out = profiler_.view(since, until).to_json();
               out["baseline"] = profiler_.has_baseline();
               Json regs = Json::array();
               for (const auto& regression :
                    profiler_.regressions(since, until, threshold)) {
                 regs.push_back(regression.to_json());
               }
               out["regressions"] = std::move(regs);
               return HttpResponse::json(200, out.dump());
             });

  router.add("POST", "/admin/profile/baseline",
             [this, require_admin, profile_window](
                 const HttpRequest& request, const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               auto range = profile_window(request);
               if (!range.ok()) return error_response(range.error());
               const auto [since, until] = range.value();
               profiler_.record_baseline(since, until);
               Json out = Json::object();
               out["recorded"] = true;
               out["since_ns"] = since;
               out["until_ns"] = until;
               out["jobs"] = static_cast<long long>(
                   profiler_.view(since, until).jobs);
               return HttpResponse::json(200, out.dump());
             });

  router.add("POST", "/admin/debug/dump",
             [this, require_admin, require_observability](
                 const HttpRequest& request, const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               auto obs = require_observability();
               if (!obs.ok()) return error_response(obs.error());
               auto dumped = obs.value()->recorder().dump("admin_request");
               if (!dumped.ok()) return error_response(dumped.error());
               events_.log(clock_->now(), telemetry::Severity::kInfo,
                           "flight_dump",
                           "operator-requested forensics dump to " +
                               dumped.value());
               Json out = Json::object();
               out["path"] = dumped.value();
               out["dumps"] = obs.value()->recorder().dump_count();
               return HttpResponse::json(200, out.dump());
             });

  router.add("GET", "/admin/sessions",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               Json out = Json::array();
               for (const auto& session : sessions_.list()) {
                 Json s = Json::object();
                 s["id"] = session.id.to_string();
                 s["user"] = session.user;
                 s["class"] = to_string(session.job_class);
                 s["created_ns"] = session.created;
                 out.push_back(std::move(s));
               }
               return HttpResponse::json(200, out.dump());
             });

  router.add("POST", "/admin/expire_sessions",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               const auto expired = sessions_.expire_idle();
               std::size_t cancelled = 0;
               for (const auto& session : expired) {
                 cancelled += session_removed(session);
               }
               Json out = Json::object();
               out["expired"] = static_cast<long long>(expired.size());
               out["cancelled_jobs"] = static_cast<long long>(cancelled);
               return HttpResponse::json(200, out.dump());
             });

  router.add("GET", "/admin/fairshare",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               return HttpResponse::json(200,
                                         accounting_.fairshare_json().dump());
             });

  router.add(
      "POST", "/admin/quotas/:user",
      [this, require_admin](const HttpRequest& request,
                            const PathParams& params) {
        auto admin = require_admin(request);
        if (!admin.ok()) return error_response(admin.error());
        const std::string& user = params.at("user");
        auto body = Json::parse(request.body);
        if (!body.ok()) return error_response(body.error());
        const Json& quota = body.value();
        // Shares: account membership and weight (either field optional;
        // the other keeps its current value).
        if (quota.contains("shares") || quota.contains("account")) {
          const auto current = accounting_.fair_share().share_of(user);
          const Json& shares = quota.at_or_null("shares");
          const Json& account = quota.at_or_null("account");
          if (quota.contains("shares") && !shares.is_number()) {
            return error_response(common::err::invalid_argument(
                "'shares' must be a number"));
          }
          if (quota.contains("account") && !account.is_string()) {
            return error_response(common::err::invalid_argument(
                "'account' must be a string"));
          }
          accounting_.set_shares(
              user, account.is_string() ? account.as_string()
                                        : current.account,
              shares.is_number() ? shares.as_double() : current.shares);
        }
        // Rate limits: any field present replaces that knob, the rest keep
        // the user's current effective values. Negative limits are typos,
        // not requests — reject instead of wrapping to huge uint64s.
        const auto non_negative =
            [&quota](const char* key) -> common::Status {
          const Json& value = quota.at_or_null(key);
          if (value.is_number() && value.as_double() < 0) {
            return common::err::invalid_argument(
                std::string("'") + key + "' must be >= 0");
          }
          return common::Status::ok_status();
        };
        for (const char* key : {"submit_per_sec", "submit_burst",
                                "max_inflight_shots", "max_pending_jobs"}) {
          auto checked = non_negative(key);
          if (!checked.ok()) return error_response(checked.error());
        }
        if (quota.contains("submit_per_sec") ||
            quota.contains("submit_burst") ||
            quota.contains("max_inflight_shots")) {
          accounting::RateLimitOptions limits =
              accounting_.rate_limiter().effective(user);
          const Json& per_sec = quota.at_or_null("submit_per_sec");
          if (per_sec.is_number()) limits.submit_per_sec = per_sec.as_double();
          const Json& burst = quota.at_or_null("submit_burst");
          if (burst.is_number()) limits.submit_burst = burst.as_double();
          const Json& inflight = quota.at_or_null("max_inflight_shots");
          if (inflight.is_number()) {
            limits.max_inflight_shots =
                static_cast<std::uint64_t>(inflight.as_int());
          }
          accounting_.set_rate_limit(user, limits);
        }
        // max_pending_jobs: a number sets the override (0 = unlimited for
        // this user, beating the global policy); null clears it back to
        // the policy default.
        if (quota.contains("max_pending_jobs")) {
          const Json& pending = quota.at_or_null("max_pending_jobs");
          if (pending.is_number()) {
            accounting_.set_pending_limit(
                user, static_cast<std::uint64_t>(pending.as_int()));
          } else if (pending.is_null()) {
            accounting_.clear_pending_limit(user);
          } else {
            return error_response(common::err::invalid_argument(
                "'max_pending_jobs' must be a number or null"));
          }
        }
        return HttpResponse::json(200, accounting_.quota_json(user).dump());
      });

  router.add("POST", "/admin/drain",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               dispatcher_->drain();
               return HttpResponse::json(200, R"({"draining":true})");
             });

  router.add("POST", "/admin/resume",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               dispatcher_->resume();
               return HttpResponse::json(200, R"({"draining":false})");
             });

  router.add("POST", "/admin/resources/:name/drain",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams& params) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               auto status = dispatcher_->drain_resource(params.at("name"));
               if (!status.ok()) return error_response(status.error());
               Json out = Json::object();
               out["resource"] = params.at("name");
               out["draining"] = true;
               return HttpResponse::json(200, out.dump());
             });

  router.add("POST", "/admin/resources/:name/resume",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams& params) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               auto status = dispatcher_->resume_resource(params.at("name"));
               if (!status.ok()) return error_response(status.error());
               Json out = Json::object();
               out["resource"] = params.at("name");
               out["draining"] = false;
               return HttpResponse::json(200, out.dump());
             });

  router.add("GET", "/admin/store",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               Json out = Json::object();
               out["enabled"] = store_ != nullptr;
               if (store_ != nullptr) {
                 const auto status = store_->status();
                 Json detail = status.to_json();
                 // Flatten the toggle into the same object for clients.
                 for (auto& [key, value] : detail.as_object()) {
                   out[key] = std::move(value);
                 }
               }
               return HttpResponse::json(200, out.dump());
             });

  router.add("POST", "/admin/store/compact",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               if (store_ == nullptr) {
                 return error_response(common::err::failed_precondition(
                     "daemon runs without a durable store (no data_dir)"));
               }
               auto status = store_->compact();
               if (!status.ok()) return error_response(status.error());
               Json out = Json::object();
               out["compacted"] = true;
               out["journal_bytes"] = store_->journal().size_bytes();
               out["journal_events"] = store_->journal().event_count();
               return HttpResponse::json(200, out.dump());
             });

  // ---- federation + hot-standby replication ------------------------------

  // Always registered (federation disabled included): peers probing a
  // daemon that has federation off still get a parseable answer instead
  // of a 404 they cannot tell from a dead daemon.
  router.add(
      "GET", "/admin/federation",
      [this, require_admin](const HttpRequest& request, const PathParams&) {
        auto admin = require_admin(request);
        if (!admin.ok()) return error_response(admin.error());
        Json out;
        if (federation_ != nullptr) {
          out = federation_->status_json();
        } else {
          out = Json::object();
          out["enabled"] = false;
          out["self"] = options_.federation.self;
          out["role"] = "leader";
          std::uint64_t epoch = 0;
          if (options_.store.enabled()) {
            if (auto read = federation::read_epoch(options_.store.data_dir);
                read.ok()) {
              epoch = read.value();
            }
          }
          out["epoch"] = static_cast<long long>(epoch);
          out["queue_depth"] =
              static_cast<long long>(dispatcher_->queued_total());
          out["peers"] = Json::array();
        }
        out["fleet"] = broker_->summarize().to_json();
        if (store_ != nullptr) {
          Json store_state = Json::object();
          store_state["journal_last_seq"] =
              static_cast<long long>(store_->journal().last_seq());
          out["store"] = std::move(store_state);
        }
        return HttpResponse::json(200, out.dump());
      });

  router.add("POST", "/admin/federation/promote",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               if (federation_ == nullptr) {
                 return error_response(common::err::failed_precondition(
                     "federation is not enabled on this daemon"));
               }
               auto epoch = federation_->promote();
               if (!epoch.ok()) return error_response(epoch.error());
               Json out = Json::object();
               out["role"] = "leader";
               out["epoch"] = static_cast<long long>(epoch.value());
               return HttpResponse::json(200, out.dump());
             });

  router.add("POST", "/admin/federation/demote",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               if (federation_ == nullptr) {
                 return error_response(common::err::failed_precondition(
                     "federation is not enabled on this daemon"));
               }
               federation_->demote();
               Json out = Json::object();
               out["role"] = "standby";
               out["epoch"] = static_cast<long long>(federation_->epoch());
               return HttpResponse::json(200, out.dump());
             });

  // Peer ingress: a forwarded job enters here and walks the exact
  // session/admission/accounting pipeline a direct submission does —
  // under a lazily-created session for the ORIGINAL user, so fair-share
  // and quotas charge the right ledger on this side too.
  router.add(
      "POST", "/admin/federation/submit",
      [this, require_admin](const HttpRequest& request, const PathParams&) {
        auto admin = require_admin(request);
        if (!admin.ok()) return error_response(admin.error());
        auto body = Json::parse(request.body);
        if (!body.ok()) return error_response(body.error());
        auto user = body.value().get_string("user");
        if (!user.ok()) return error_response(user.error());
        auto payload =
            quantum::Payload::from_json(body.value().at_or_null("payload"));
        if (!payload.ok()) return error_response(payload.error());
        SubmitHints hints;
        hints.no_forward = true;
        if (body.value().contains("partition")) {
          auto parsed = body.value().get_string("partition");
          if (!parsed.ok()) return error_response(parsed.error());
          hints.partition = std::move(parsed).value();
        }
        auto token = ingress_session(user.value());
        if (!token.ok()) return error_response(token.error());
        auto submitted =
            submit_job(token.value(), std::move(payload).value(), hints);
        if (!submitted.ok()) return error_response(submitted.error());
        Json out = Json::object();
        out["job_id"] = static_cast<long long>(submitted.value().id);
        out["class"] = to_string(submitted.value().job_class);
        out["resource"] = submitted.value().resource;
        return HttpResponse::json(201, out.dump());
      });

  // Journal shipping: raw v2 WAL frames above `after`, capped at the
  // durable watermark and `max_bytes`. Framing metadata rides response
  // headers so the body stays exactly the bytes the leader's WAL holds.
  router.add(
      "GET", "/admin/replication/wal",
      [this, require_admin](const HttpRequest& request, const PathParams&) {
        auto admin = require_admin(request);
        if (!admin.ok()) return error_response(admin.error());
        if (store_ == nullptr) {
          return error_response(common::err::failed_precondition(
              "daemon runs without a durable store (no data_dir)"));
        }
        std::uint64_t after = 0;
        if (const auto raw = request.query_param("after")) {
          auto parsed = parse_numeric_param(*raw, "after");
          if (!parsed.ok()) return error_response(parsed.error());
          after = parsed.value();
        }
        std::uint64_t max_bytes = 256 * 1024;
        if (const auto raw = request.query_param("max_bytes")) {
          auto parsed = parse_numeric_param(*raw, "max_bytes");
          if (!parsed.ok()) return error_response(parsed.error());
          if (parsed.value() == 0) {
            return error_response(common::err::invalid_argument(
                "max_bytes must be a positive integer"));
          }
          max_bytes = parsed.value();
        }
        auto segment = store_->journal().read_segment(after, max_bytes);
        if (!segment.ok()) return error_response(segment.error());
        std::uint64_t epoch = 0;
        if (federation_ != nullptr) {
          epoch = federation_->epoch();
        } else if (auto read =
                       federation::read_epoch(options_.store.data_dir);
                   read.ok()) {
          epoch = read.value();
        }
        HttpResponse response;
        response.headers["Content-Type"] = "application/octet-stream";
        response.headers["X-Replication-First-Seq"] =
            std::to_string(segment.value().first_seq);
        response.headers["X-Replication-End-Seq"] =
            std::to_string(segment.value().end_seq);
        response.headers["X-Replication-Durable-Seq"] =
            std::to_string(segment.value().durable_seq);
        response.headers["X-Replication-Snapshot-Needed"] =
            segment.value().snapshot_needed ? "1" : "0";
        response.headers["X-Replication-Epoch"] = std::to_string(epoch);
        response.body = std::move(segment.value().bytes);
        return response;
      });

  router.add(
      "GET", "/admin/replication/snapshot",
      [this, require_admin](const HttpRequest& request, const PathParams&) {
        auto admin = require_admin(request);
        if (!admin.ok()) return error_response(admin.error());
        if (store_ == nullptr) {
          return error_response(common::err::failed_precondition(
              "daemon runs without a durable store (no data_dir)"));
        }
        std::ifstream in(store_->snapshot_path(), std::ios::binary);
        if (!in.is_open()) {
          return error_response(
              common::err::not_found("no snapshot has been written yet"));
        }
        std::string bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
        // Parse the bytes we are about to ship (not the file again —
        // compaction may swap it underneath) for the resume watermark.
        auto parsed = Json::parse(bytes);
        if (!parsed.ok()) return error_response(parsed.error());
        auto snapshot = store::StoreSnapshot::from_json(parsed.value());
        if (!snapshot.ok()) return error_response(snapshot.error());
        const std::uint64_t watermark = std::min(
            snapshot.value().jobs_seq, snapshot.value().sessions_seq);
        std::uint64_t epoch = 0;
        if (federation_ != nullptr) {
          epoch = federation_->epoch();
        } else if (auto read =
                       federation::read_epoch(options_.store.data_dir);
                   read.ok()) {
          epoch = read.value();
        }
        HttpResponse response;
        response.headers["Content-Type"] = "application/json";
        response.headers["X-Replication-Watermark"] =
            std::to_string(watermark);
        response.headers["X-Replication-Epoch"] = std::to_string(epoch);
        response.body = std::move(bytes);
        return response;
      });

  router.add("POST", "/admin/recalibrate",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               if (device_ == nullptr) {
                 return error_response(common::err::failed_precondition(
                     "no local device attached to this daemon"));
               }
               device_->recalibrate();
               Json out = Json::object();
               out["recalibrated"] = true;
               out["fidelity"] =
                   device_->spec().calibration.fidelity_estimate();
               return HttpResponse::json(200, out.dump());
             });

  router.add("POST", "/admin/qa",
             [this, require_admin](const HttpRequest& request,
                                   const PathParams&) {
               auto admin = require_admin(request);
               if (!admin.ok()) return error_response(admin.error());
               if (device_ == nullptr) {
                 return error_response(common::err::failed_precondition(
                     "no local device attached to this daemon"));
               }
               auto quality = device_->run_qa_check();
               if (!quality.ok()) return error_response(quality.error());
               Json out = Json::object();
               out["qa_quality"] = quality.value();
               return HttpResponse::json(200, out.dump());
             });

  // Low-level control with safeguards (§2.5): bounded shot-rate override.
  router.add(
      "POST", "/admin/lowlevel/shot_rate",
      [this, require_admin](const HttpRequest& request, const PathParams&) {
        auto admin = require_admin(request);
        if (!admin.ok()) return error_response(admin.error());
        if (device_ == nullptr) {
          return error_response(common::err::failed_precondition(
              "no local device attached to this daemon"));
        }
        auto body = Json::parse(request.body);
        if (!body.ok()) return error_response(body.error());
        auto value = body.value().get_double("value");
        if (!value.ok()) return error_response(value.error());
        if (value.value() < options_.min_shot_rate_hz ||
            value.value() > options_.max_shot_rate_hz) {
          return error_response(common::err::invalid_argument(
              common::format("shot rate %.3f Hz outside the safeguarded "
                             "range [%.3f, %.3f]",
                             value.value(), options_.min_shot_rate_hz,
                             options_.max_shot_rate_hz)));
        }
        auto status = device_->set_shot_rate(value.value());
        if (!status.ok()) return error_response(status.error());
        Json out = Json::object();
        out["shot_rate_hz"] = value.value();
        return HttpResponse::json(200, out.dump());
      });
}

}  // namespace qcenv::daemon
