// Queue ETA prediction and per-job wait explainability (the "when will my
// job run, and why is it waiting" surface, §3.6 user-centricity).
//
// EtaEngine answers two questions from live daemon state:
//
//  - estimate(): for any job, a predicted start/finish window with
//    confidence bounds. For pending jobs it simulates the dispatcher's
//    tournament order over one consistent shard snapshot
//    (Dispatcher::pending_snapshot) — jobs ahead per class / fair-share
//    rank — combined with per-resource drain/health from the broker and
//    historical per-batch execute latency from the TSDB's scraped
//    daemon_stage_seconds histogram series. Served at
//    GET /v1/jobs/:id/eta and embedded in submit 201 responses.
//  - explain(): decomposes a job's observed queue wait into named causes
//    (fair-share demotion, rate-limit backpressure, resource drain/outage
//    overlap, shard queue depth) computed from the event log, the queue
//    snapshot and accounting state. The causes are an EXACT partition of
//    the observed wait — the unexplained remainder is filed under
//    "queue_depth", never invented — and simtest asserts that equality.
//
// All clock reads go through the injected common::Clock, so simtest can
// drive both deterministically. The engine holds no state of its own:
// every answer is recomputed from the live subsystems it points at.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accounting/accounting.hpp"
#include "broker/broker.hpp"
#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"
#include "daemon/dispatcher.hpp"
#include "telemetry/events.hpp"
#include "telemetry/explain.hpp"
#include "telemetry/tsdb.hpp"

namespace qcenv::daemon {

struct EtaOptions {
  /// TSDB lookback for the historical per-batch execute latency
  /// (delta-sum / delta-count of the scraped daemon_stage_seconds series).
  common::DurationNs latency_lookback = 300 * common::kSecond;
  /// Per-batch latency assumed when the TSDB has no execute history yet
  /// (cold daemon, observability disabled).
  common::DurationNs default_batch_latency = 5 * common::kMillisecond;
  /// Fixed slack added to the predicted-start upper bound: covers lane
  /// wake-up, placement and probe cadence, none of which the backlog
  /// model sees.
  common::DurationNs start_slack = 10 * common::kSecond;
  /// Extra slack on the predicted-finish upper bound.
  common::DurationNs finish_slack = 5 * common::kSecond;
  /// Backlog multiplier for the upper bounds: latest = now + slack +
  /// margin * (backlog work / active lanes). >1 because the mean
  /// understates tail batches and failovers.
  double margin = 3.0;
  /// Claimed confidence of the [earliest, latest] start window. Simtest
  /// asserts actual starts land inside the window at this rate.
  double confidence = 0.95;
};

/// One ETA answer (GET /v1/jobs/:id/eta, and the `eta` object of submit
/// 201 bodies). Times are absolute clock readings; `start_latest` and
/// `finish_latest` are -1 when the estimate is unbounded (no active lane
/// can serve the job: global drain, full-fleet outage, drained pin).
struct EtaEstimate {
  std::uint64_t job_id = 0;
  std::string user;
  std::string state;
  common::TimeNs computed_at = 0;
  /// Tournament position: pending entries ahead in global dispatch order.
  std::size_t jobs_ahead = 0;
  /// Upper bound on batches the fleet may run before this job starts.
  std::uint64_t batches_ahead = 0;
  /// Lanes that can serve this job right now (healthy, not draining;
  /// for pinned jobs only the pinned resource counts).
  std::size_t active_lanes = 0;
  /// Historical mean per-batch execute latency the bounds used.
  common::DurationNs batch_latency = 0;
  bool bounded = true;
  double confidence = 0.0;
  common::TimeNs start_earliest = 0;
  common::TimeNs start_latest = -1;
  common::TimeNs finish_earliest = 0;
  common::TimeNs finish_latest = -1;
  /// Live pressure signals (rate_limited carries the same retry-after the
  /// 429 header reports). Informational: durations here are forecasts,
  /// not a partition of anything.
  std::vector<telemetry::WaitCause> pressures;

  common::Json to_json() const;
};

class EtaEngine {
 public:
  /// Non-owning: every pointer must outlive the engine. `accounting`,
  /// `tsdb` and `events` are optional (rate-limit / historical-latency /
  /// outage-overlap inputs degrade to their fallbacks when absent).
  struct Deps {
    Dispatcher* dispatcher = nullptr;
    broker::ResourceBroker* broker = nullptr;
    accounting::AccountingManager* accounting = nullptr;
    const telemetry::TimeSeriesDb* tsdb = nullptr;
    const telemetry::EventLog* events = nullptr;
    common::Clock* clock = nullptr;
    QueuePolicy policy;
  };

  EtaEngine(Deps deps, EtaOptions options)
      : deps_(deps), options_(options) {}

  /// Predicted start/finish window. Terminal and running jobs report
  /// their actual timestamps (confidence 1.0 on actuals).
  common::Result<EtaEstimate> estimate(std::uint64_t job_id) const;

  /// Exact-partition wait decomposition (see telemetry::ExplainReport).
  common::Result<telemetry::ExplainReport> explain(
      std::uint64_t job_id) const;

  /// Historical mean per-batch execute latency over the lookback window
  /// (counter-reset tolerant), or the configured fallback.
  common::DurationNs historical_batch_latency(common::TimeNs now) const;

  const EtaOptions& options() const noexcept { return options_; }

 private:
  /// Batches one pending entry still owes (the queue core's slicing rule).
  std::uint64_t batches_of(JobClass cls, std::uint64_t shots) const;
  /// Time within [begin, end] during which NO lane could dispatch work
  /// eligible for the job: global drain, or every fleet resource (or the
  /// pinned one) down/draining — reconstructed from event-log
  /// drain/outage transitions.
  common::DurationNs outage_overlap(common::TimeNs begin, common::TimeNs end,
                                    const std::string& pinned) const;

  Deps deps_;
  EtaOptions options_;
};

}  // namespace qcenv::daemon
