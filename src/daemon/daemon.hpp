// MiddlewareDaemon: the standalone REST service on the quantum access node
// (Figure 2). Composition root wiring sessions, admission, the resource
// broker, the dispatcher, telemetry and the admin/low-level surface behind
// one HTTP server.
//
// REST surface (user endpoints authenticate with X-Session-Token; admin
// endpoints with X-Admin-Key):
//   POST   /v1/sessions               {user, class}        -> session+token
//   DELETE /v1/sessions               (token header)       -> close session
//   GET    /v1/device                                      -> device spec
//   GET    /v1/resources                                   -> fleet status
//   POST   /v1/jobs                   {payload, partition?,
//                                      resource?, policy?} -> {job_id}
//   GET    /v1/jobs/:id                                     -> job status
//   GET    /v1/jobs/:id/trace          -> per-stage timeline (span tree)
//   GET    /v1/jobs/:id/eta            -> predicted start/finish window
//                                         (also embedded in submit 201s)
//   GET    /v1/jobs/:id/explain        -> wait decomposed into causes
//   GET    /v1/jobs/:id/result                              -> samples
//   DELETE /v1/jobs/:id                                     -> cancel
//   GET    /v1/queue                  -> depths/order/lanes/per-user counts
//   GET    /v1/usage                  -> caller's decayed usage, share,
//                                        fair-share priority, rate limits
//   GET    /metrics                                         -> Prometheus
//   GET    /admin/status
//   GET    /admin/events?since=N&max=M&severity=&kind=  (event tail)
//   GET    /admin/tsdb/query?series=&start=&end=&window=&agg=  (TSDB range
//                                       query + windowed aggregation)
//   GET    /admin/tsdb/export?series=   (InfluxDB line protocol)
//   GET    /admin/alerts                (active + recent alert records)
//   GET    /admin/slo                   (per-tenant burn-rate readout)
//   GET    /admin/profile?window=&threshold=  (critical-path profile:
//                                       collapsed stacks per resource/
//                                       tenant + baseline regressions)
//   POST   /admin/profile/baseline?window=  (record regression baseline)
//   POST   /admin/debug/dump            (flight-recorder forensics dump)
//   GET    /admin/sessions
//   GET    /admin/fairshare            (accounts/users: shares vs usage)
//   POST   /admin/quotas/:user         {shares?, account?, submit_per_sec?,
//                                       submit_burst?, max_inflight_shots?,
//                                       max_pending_jobs?}
//   POST   /admin/drain | /admin/resume
//   POST   /admin/resources/:name/drain | .../resume  (rolling maintenance)
//   GET    /admin/store                    (journal/snapshot/replay stats)
//   POST   /admin/store/compact
//   POST   /admin/recalibrate
//   POST   /admin/qa
//   POST   /admin/lowlevel/shot_rate  {value}   (safeguarded bounds)
//   GET    /admin/federation           (role/epoch/queue + fleet summary
//                                       + last polled peer views)
//   POST   /admin/federation/promote | /admin/federation/demote
//   POST   /admin/federation/submit   {user, partition?, payload}
//                                      (peer ingress for forwarded jobs)
//   GET    /admin/replication/wal?after=N&max_bytes=M  (raw v2 WAL
//                                       segment; X-Replication-* headers)
//   GET    /admin/replication/snapshot  (snapshot.json + watermark header)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "accounting/accounting.hpp"
#include "broker/broker.hpp"
#include "common/clock.hpp"
#include "common/config.hpp"
#include "daemon/admission.hpp"
#include "daemon/dispatcher.hpp"
#include "daemon/eta.hpp"
#include "daemon/observability.hpp"
#include "daemon/sessions.hpp"
#include "federation/federation.hpp"
#include "net/http_server.hpp"
#include "qpu/qpu_device.hpp"
#include "qrmi/qrmi.hpp"
#include "qrmi/registry.hpp"
#include "store/state_store.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace qcenv::daemon {

/// Tracing and structured-event knobs. Tracing is on by default: the
/// per-span cost is O(1) under a sharded lock and the submit bench gates
/// the overhead at 5%, so there is no reason to fly blind.
struct TelemetryOptions {
  bool tracing = true;
  /// Retained traces (ring per shard; oldest evicted on overflow).
  std::size_t trace_capacity = 4096;
  std::size_t trace_shards = 64;
  /// Retained structured events for `GET /admin/events` tailing.
  std::size_t event_capacity = 4096;
  /// Completed jobs slower than this emit a `slow_job` event with their
  /// trace id, so operators can jump straight from the log line to the
  /// per-stage timeline. 0 disables.
  common::DurationNs slow_job_threshold = 0;
  /// Live metrics pipeline: TSDB scrape loop, SLO burn-rate + drift
  /// alerting, crash-forensics flight recorder (see observability.hpp).
  ObservabilityOptions observability;
  /// Queue ETA / explainability knobs (see eta.hpp).
  EtaOptions eta;
  /// Terminal-job traces retained by the critical-path profiler.
  std::size_t profile_capacity = 4096;
};

struct DaemonOptions {
  std::uint16_t port = 0;  // 0 = ephemeral
  std::string admin_key = "admin-key";
  QueuePolicy queue_policy;
  /// Fleet behaviour: default placement policy, probe cadence, backoff.
  broker::BrokerOptions broker;
  AdmissionPolicy admission;
  /// Multi-tenant accounting: usage decay half-life, account/user shares
  /// and default rate limits. Fair-share ordering engages automatically
  /// once users accumulate usage; defaults keep single-tenant behaviour.
  accounting::AccountingOptions accounting;
  SessionManagerOptions sessions;
  /// Slurm partition -> job class ("the daemon retrieves the job's priority
  /// from Slurm", §3.3): submissions may carry their partition name.
  std::map<std::string, JobClass> partition_class = {
      {"production", JobClass::kProduction},
      {"test", JobClass::kTest},
      {"dev", JobClass::kDevelopment},
  };
  /// Low-level control safeguards.
  double min_shot_rate_hz = 0.1;
  double max_shot_rate_hz = 1000.0;
  /// Durable state store. An empty `store.data_dir` (the default) keeps
  /// today's purely in-memory behaviour; with a data-dir the daemon
  /// journals every job/session event and recovers them all on restart.
  store::StoreOptions store;
  /// Tracing + structured events (see TelemetryOptions).
  TelemetryOptions telemetry;
  /// Broker-of-brokers: peers, poll cadence, forward threshold (see
  /// federation/federation.hpp). Disabled by default — a lone daemon
  /// pays nothing for the subsystem existing.
  federation::FederationOptions federation;
};

class MiddlewareDaemon {
 public:
  /// Multi-resource daemon: every resource of `fleet` becomes a broker
  /// member with its own dispatch lane. The first registered resource is
  /// the "primary" whose device spec backs `GET /v1/device` and admission
  /// checks (per-resource specs are on `GET /v1/resources`). `device` is
  /// optional and enables the admin/low-level endpoints that act on the
  /// physical device; pass nullptr when fronting emulators.
  MiddlewareDaemon(DaemonOptions options, const qrmi::ResourceRegistry& fleet,
                   qpu::QpuDevice* device, common::Clock* clock);
  /// Single-resource convenience (a fleet of one).
  MiddlewareDaemon(DaemonOptions options, qrmi::QrmiPtr resource,
                   qpu::QpuDevice* device, common::Clock* clock);
  ~MiddlewareDaemon();

  common::Result<std::uint16_t> start();
  void stop();
  std::uint16_t port() const noexcept { return server_.port(); }

  SessionManager& sessions() noexcept { return sessions_; }
  Dispatcher& dispatcher() noexcept { return *dispatcher_; }
  accounting::AccountingManager& accounting() noexcept {
    return accounting_;
  }
  broker::ResourceBroker& broker() noexcept { return *broker_; }
  telemetry::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// Job trace store; nullptr when tracing is disabled.
  telemetry::TraceStore* traces() noexcept { return traces_.get(); }
  telemetry::EventLog& events() noexcept { return events_; }
  const DaemonOptions& options() const noexcept { return options_; }
  /// Durable store; nullptr when running purely in memory.
  store::StateStore* state_store() noexcept { return store_.get(); }
  /// Live metrics pipeline; nullptr when observability is disabled.
  ObservabilityPipeline* observability() noexcept {
    return observability_.get();
  }
  /// Queue ETA / wait-explainability engine (always available).
  EtaEngine& eta() noexcept { return *eta_; }
  /// Critical-path profiles of terminal jobs (fed when tracing is on).
  telemetry::CriticalPathProfiler& profiler() noexcept { return profiler_; }
  /// Federation router; nullptr when federation is disabled.
  federation::FederationRouter* federation() noexcept {
    return federation_.get();
  }

  /// Resolves a job class from an explicit partition name or session
  /// default.
  JobClass resolve_class(const std::string& partition,
                         JobClass session_default) const;

  // ---- programmatic surface ------------------------------------------------
  // The REST routes parse JSON and delegate to these 1:1, and the simtest
  // harness calls them directly — so every simulated submission walks the
  // exact session/admission/accounting/rollback pipeline production
  // requests do, without an HTTP round-trip per simulated event.

  /// POST /v1/sessions: creates (and journals) a session.
  common::Result<Session> open_session(const std::string& user,
                                       JobClass cls);
  /// DELETE /v1/sessions: closes the session, cancels its queued jobs.
  /// Returns how many jobs were cancelled.
  common::Result<std::size_t> close_session(const std::string& token);

  /// Optional placement/class preferences of one submission (the REST
  /// `partition`/`resource`/`policy` body fields).
  struct SubmitHints {
    std::string partition;
    std::string resource;
    std::optional<broker::SchedulingPolicy> policy;
    /// Set on the peer-ingress path (/admin/federation/submit): a job a
    /// peer already routed here must not bounce to a third daemon, or
    /// two saturated daemons would ping-pong it forever.
    bool no_forward = false;
  };
  /// What a successful submission settled on (the 201 response body).
  struct Submitted {
    std::uint64_t id = 0;
    JobClass job_class = JobClass::kDevelopment;
    /// Initial placement; empty while no healthy resource could take it.
    std::string resource;
    /// Peer this submission was routed to; empty for local placements.
    /// When set, `id` is the job's id AT THAT PEER.
    std::string forwarded_to;
  };
  /// POST /v1/jobs: authenticates, validates against the target device
  /// spec, applies admission + per-user rate limits (reservations are
  /// rolled back if anything downstream fails) and enqueues the payload.
  /// When tracing is on, `trace_out` (if non-null) receives the trace id
  /// even for rejected submissions, so 429/500/503 responses can point at
  /// the timeline that explains them.
  common::Result<Submitted> submit_job(const std::string& token,
                                       quantum::Payload payload,
                                       const SubmitHints& hints,
                                       telemetry::TraceId* trace_out =
                                           nullptr);
  /// Hint-less convenience (an overload, not a default argument: default
  /// arguments are not complete-class context, so `= {}` cannot see the
  /// nested aggregate's member initializers).
  common::Result<Submitted> submit_job(const std::string& token,
                                       quantum::Payload payload) {
    return submit_job(token, std::move(payload), SubmitHints{});
  }

 private:
  void install_routes();
  /// Opens the store, replays it, and seeds the session manager. Returns
  /// the jobs to hand to the dispatcher once it exists.
  std::vector<store::JobRecord> open_store(std::uint64_t& next_job_id);
  /// Compaction callback: full durable image of sessions + jobs.
  store::StoreSnapshot build_snapshot();
  /// Shared cleanup when a session goes away (close or idle expiry):
  /// cancels its queued jobs and journals the closure.
  std::size_t session_removed(const Session& session);
  /// Session backing forwarded submissions from `user` via the peer
  /// ingress; created lazily, reused while it stays valid.
  common::Result<std::string> ingress_session(const std::string& user);

  DaemonOptions options_;
  qpu::QpuDevice* device_;
  common::Clock* clock_;
  telemetry::MetricsRegistry metrics_;
  // Traces/events must outlive the dispatcher and the store (both record
  // into them from their worker threads).
  std::unique_ptr<telemetry::TraceStore> traces_;
  telemetry::EventLog events_;
  // Must outlive the dispatcher: its lanes fold terminal traces in.
  telemetry::CriticalPathProfiler profiler_;
  SessionManager sessions_;
  AdmissionController admission_;
  // Must outlive the dispatcher: its lanes charge the ledger.
  accounting::AccountingManager accounting_;
  std::shared_ptr<broker::ResourceBroker> broker_;
  qrmi::QrmiPtr primary_;  // first fleet member; backs /v1/device
  // Must outlive the store AND the dispatcher: the journal writer and the
  // dispatch lanes beat the flight recorder's watchdog from their threads.
  // Constructed in the ctor body once both exist; its samplers only run
  // from ticks, which stop() halts before any member is torn down.
  std::unique_ptr<ObservabilityPipeline> observability_;
  // The store must outlive the dispatcher (its lanes journal events);
  // the daemon stops the store's compaction thread before tearing the
  // dispatcher down (see stop()).
  std::unique_ptr<store::StateStore> store_;
  std::unique_ptr<Dispatcher> dispatcher_;
  // Stateless view over dispatcher/broker/accounting/events/TSDB;
  // constructed after all of them, destroyed first.
  std::unique_ptr<EtaEngine> eta_;
  // Reads dispatcher + broker through its status callback, so it must be
  // torn down before either (reverse declaration order handles it).
  std::unique_ptr<federation::FederationRouter> federation_;
  // Sessions backing the peer ingress, keyed by user.
  std::mutex ingress_mutex_;
  std::map<std::string, std::string> ingress_tokens_;
  net::HttpServer server_;
};

}  // namespace qcenv::daemon
