// Vendor-level QPU task queue (the "QPU scheduler" of §3.4).
//
// A single worker drains a FIFO queue into the device. This is what the
// middleware daemon's second-level scheduler sits on top of: the daemon
// reorders/prioritizes before submission; the controller guarantees safe
// serialized device access, cancellation and result retention.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "qpu/qpu_device.hpp"

namespace qcenv::qpu {

enum class TaskState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* to_string(TaskState state) noexcept;

struct TaskInfo {
  common::TaskId id;
  TaskState state = TaskState::kQueued;
  common::TimeNs submitted_ns = 0;
  common::TimeNs started_ns = 0;
  common::TimeNs finished_ns = 0;
  std::uint64_t shots = 0;
  std::string error;  // set when state == kFailed
};

class QpuController {
 public:
  /// `device` and `clock` must outlive the controller. The worker thread
  /// starts immediately and stops in the destructor.
  QpuController(QpuDevice* device, common::Clock* clock);
  ~QpuController();
  QpuController(const QpuController&) = delete;
  QpuController& operator=(const QpuController&) = delete;

  /// Enqueues a payload; returns its task id.
  common::TaskId submit(quantum::Payload payload);

  common::Result<TaskState> status(common::TaskId id) const;
  common::Result<TaskInfo> info(common::TaskId id) const;

  /// Result of a completed task; kFailedPrecondition while pending/running.
  common::Result<quantum::Samples> result(common::TaskId id) const;

  /// Blocks until the task reaches a terminal state, then returns its
  /// samples (or the execution error).
  common::Result<quantum::Samples> wait(common::TaskId id);

  /// Cancels a queued task immediately or aborts a running one at the next
  /// shot-batch boundary.
  common::Status cancel(common::TaskId id);

  std::size_t queue_depth() const;
  std::vector<TaskInfo> list_tasks() const;

 private:
  struct Entry {
    TaskInfo info;
    quantum::Payload payload;
    std::optional<quantum::Samples> samples;
    std::optional<common::Error> error;
    std::atomic<bool> cancel_requested{false};
  };

  void worker_loop(const std::stop_token& stop);

  QpuDevice* device_;
  common::Clock* clock_;
  common::IdGenerator<common::TaskTag> ids_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Entry>> queue_;
  std::unordered_map<common::TaskId, std::shared_ptr<Entry>> tasks_;
  std::jthread worker_;
};

}  // namespace qcenv::qpu
