// Periodic QA and threshold-triggered recalibration (§3.4: "quality
// assurance jobs checking the QPU [are] typically scheduled periodically by
// both the hosting site and the QPU itself").
//
// The scheduler is tick-driven: the hosting site calls tick(now) from its
// cron/simulation loop; the scheduler decides whether a QA run is due and
// whether the measured quality warrants a recalibration.
#pragma once

#include <cstdint>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "qpu/qpu_device.hpp"

namespace qcenv::qpu {

struct MaintenancePolicy {
  /// Time between QA runs.
  common::DurationNs qa_interval = 4LL * 3600 * common::kSecond;
  /// Recalibrate when QA quality falls below this.
  double quality_threshold = 0.85;
  /// Also recalibrate unconditionally after this long (0 = never).
  common::DurationNs max_calibration_age = 24LL * 3600 * common::kSecond;
};

struct MaintenanceCounters {
  std::uint64_t qa_runs = 0;
  std::uint64_t recalibrations = 0;
  std::uint64_t quality_triggers = 0;  // recalibrations due to bad QA
  double last_quality = 1.0;
  common::TimeNs last_qa_ns = 0;
  common::TimeNs last_recalibration_ns = 0;
};

class MaintenanceScheduler {
 public:
  MaintenanceScheduler(QpuDevice* device, MaintenancePolicy policy)
      : device_(device), policy_(policy) {}

  struct TickOutcome {
    bool qa_ran = false;
    double quality = 0;
    bool recalibrated = false;
  };

  /// Runs due maintenance at `now`. QA occupies the device like a normal
  /// job (it goes through QpuDevice::execute), so hosting sites schedule
  /// ticks in low-priority windows.
  common::Result<TickOutcome> tick(common::TimeNs now);

  const MaintenanceCounters& counters() const noexcept { return counters_; }
  const MaintenancePolicy& policy() const noexcept { return policy_; }

 private:
  QpuDevice* device_;
  MaintenancePolicy policy_;
  MaintenanceCounters counters_;
  bool initialized_ = false;
};

}  // namespace qcenv::qpu
