// Simulated analog QPU.
//
// Executes payloads on an exact emulator with the *current drifted
// calibration* applied, and paces execution at the device shot rate
// (~1 Hz today, ~100 Hz roadmap — paper §2.2.1). The time scale can be
// compressed for tests via `time_scale` or driven entirely by a ManualClock.
//
// The device is single-job: callers (the vendor controller, the middleware)
// serialize access. Cancellation is honoured between shot batches, matching
// the granularity of a real analog machine.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "emulator/backend.hpp"
#include "qpu/calibration.hpp"
#include "quantum/device.hpp"
#include "quantum/payload.hpp"
#include "quantum/samples.hpp"

namespace qcenv::qpu {

struct QpuOptions {
  quantum::DeviceSpec spec = quantum::DeviceSpec::analog_default();
  DriftParams drift;
  std::uint64_t seed = 42;
  /// Shots executed between cancellation checks.
  std::uint64_t shot_batch = 10;
  /// Fixed per-job setup cost (register load, sequence compile) in seconds
  /// of device time.
  double setup_seconds = 2.0;
  /// Wall-time compression: simulated_device_time = nominal / time_scale.
  /// 1.0 = real time; tests use large values (or a ManualClock).
  double time_scale = 1.0;
  /// Truth engine executing the physics ("sv" or "mps:<chi>").
  std::string engine = "sv";
};

/// Counters exported to the observability stack.
struct QpuCounters {
  std::uint64_t jobs_executed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t shots_executed = 0;
  std::uint64_t qa_runs = 0;
  common::DurationNs busy_ns = 0;
};

class QpuDevice {
 public:
  /// `clock` must outlive the device; it provides device time (wall or
  /// manual).
  QpuDevice(QpuOptions options, common::Clock* clock);

  /// Device spec with calibration advanced to now. What users fetch for
  /// program development and validity checks.
  quantum::DeviceSpec spec();

  const QpuOptions& options() const noexcept { return options_; }

  /// Nominal device seconds a payload occupies (setup + shots / rate).
  double estimated_duration_seconds(const quantum::Payload& payload) const;

  /// Validates, paces, and executes a payload with current calibration.
  /// `cancel` (optional) aborts between shot batches, returning kCancelled.
  common::Result<quantum::Samples> execute(
      const quantum::Payload& payload,
      const std::atomic<bool>* cancel = nullptr);

  /// Quality-assurance job: a reference two-atom blockade sequence whose
  /// outcome distribution is compared against the ideal; returns the
  /// measured quality in [0, 1]. Scheduled periodically by hosting sites.
  common::Result<double> run_qa_check();

  /// Resets calibration to nominal (maintenance action).
  void recalibrate();

  /// Overrides the effective shot rate (admin low-level control; bounds are
  /// enforced by the caller's safeguard layer, positivity here).
  common::Status set_shot_rate(double hz);
  double shot_rate_hz() const {
    return shot_rate_hz_.load(std::memory_order_relaxed);
  }

  QpuCounters counters() const;

 private:
  QpuOptions options_;
  common::Clock* clock_;
  CalibrationModel calibration_;
  std::unique_ptr<emulator::Backend> engine_;
  std::uint64_t run_counter_ = 0;
  std::atomic<double> shot_rate_hz_;
  mutable std::mutex mutex_;  // guards calibration_, counters_, run_counter_
  QpuCounters counters_;
};

}  // namespace qcenv::qpu
