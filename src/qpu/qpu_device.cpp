#include "qpu/qpu_device.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#define QCENV_LOG_COMPONENT "qpu"
#include "common/logging.hpp"

namespace qcenv::qpu {

using common::DurationNs;
using common::Result;
using common::Status;
using quantum::Payload;
using quantum::Samples;

QpuDevice::QpuDevice(QpuOptions options, common::Clock* clock)
    : options_(std::move(options)),
      clock_(clock),
      calibration_(options_.spec.calibration, options_.drift, options_.seed),
      shot_rate_hz_(options_.spec.shot_rate_hz) {
  auto engine = emulator::make_emulator_backend(options_.engine);
  // A misconfigured engine is a deployment error, not a runtime condition.
  if (!engine.ok()) {
    QCENV_LOG(Error) << "unknown QPU engine '" << options_.engine
                     << "', falling back to sv";
    engine = emulator::make_emulator_backend("sv");
  }
  engine_ = std::move(engine).value();
  calibration_.recalibrate(clock_->now());
}

quantum::DeviceSpec QpuDevice::spec() {
  std::scoped_lock lock(mutex_);
  quantum::DeviceSpec spec = options_.spec;
  spec.shot_rate_hz = shot_rate_hz_.load(std::memory_order_relaxed);
  spec.calibration = calibration_.advance_to(clock_->now());
  return spec;
}

double QpuDevice::estimated_duration_seconds(const Payload& payload) const {
  const double rate = std::max(shot_rate_hz(), 1e-9);
  return options_.setup_seconds +
         static_cast<double>(payload.shots()) / rate;
}

Result<Samples> QpuDevice::execute(const Payload& payload,
                                   const std::atomic<bool>* cancel) {
  // Validate against the *current* device state.
  quantum::CalibrationSnapshot cal;
  {
    std::scoped_lock lock(mutex_);
    cal = calibration_.advance_to(clock_->now());
    ++run_counter_;
  }
  if (payload.kind() == quantum::PayloadKind::kDigital &&
      !options_.spec.supports_digital) {
    return common::err::failed_precondition(
        "device '" + options_.spec.name + "' is analog-only");
  }
  if (payload.kind() == quantum::PayloadKind::kAnalog) {
    auto sequence = payload.sequence();
    if (!sequence.ok()) return sequence.error();
    QCENV_RETURN_IF_ERROR(options_.spec.validate(sequence.value()));
  }

  // Pace the setup phase.
  const double scale = std::max(options_.time_scale, 1e-9);
  clock_->sleep_for(
      common::from_seconds(options_.setup_seconds / scale));

  const double rate = std::max(shot_rate_hz(), 1e-9);
  const std::uint64_t total_shots = payload.shots();
  const std::uint64_t batch =
      std::max<std::uint64_t>(1, options_.shot_batch);

  // Execute physics once for all shots (calibration is quasi-static over a
  // job), then pace delivery batch by batch so cancellation has the shot
  // granularity of the real machine.
  emulator::RunOptions run_options;
  {
    std::scoped_lock lock(mutex_);
    run_options.seed = options_.seed ^ (run_counter_ * 0x9E3779B9ull);
  }
  run_options.calibration = &cal;
  Payload job = payload;
  auto outcome = engine_->run(job, run_options);
  if (!outcome.ok()) return outcome;

  std::uint64_t done = 0;
  while (done < total_shots) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      std::scoped_lock lock(mutex_);
      ++counters_.jobs_cancelled;
      counters_.shots_executed += done;
      return common::err::cancelled("job aborted after " +
                                    std::to_string(done) + " shots");
    }
    const std::uint64_t step = std::min(batch, total_shots - done);
    clock_->sleep_for(
        common::from_seconds(static_cast<double>(step) / rate / scale));
    done += step;
  }

  {
    std::scoped_lock lock(mutex_);
    ++counters_.jobs_executed;
    counters_.shots_executed += total_shots;
    counters_.busy_ns += common::from_seconds(
        options_.setup_seconds + static_cast<double>(total_shots) / rate);
  }

  Samples samples = std::move(outcome).value();
  common::Json meta = samples.metadata();
  meta["backend"] = "qpu:" + options_.spec.name;
  meta["calibration"] = cal.to_json();
  meta["device_seconds"] =
      options_.setup_seconds + static_cast<double>(total_shots) / rate;
  samples.set_metadata(std::move(meta));
  return samples;
}

Result<double> QpuDevice::run_qa_check() {
  // Reference program: two blockaded atoms, collective pi pulse. Ideal
  // outcome: all population in the symmetric single-excitation sector.
  const double omega = 2.0 * std::numbers::pi;
  const double t_pi = std::numbers::pi / (std::sqrt(2.0) * omega);
  quantum::AtomRegister reg = quantum::AtomRegister::linear_chain(2, 5.0);
  quantum::Sequence seq(reg);
  const auto dur = static_cast<quantum::DurationNsQ>(t_pi * 1e3);
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(dur, omega),
                               quantum::Waveform::constant(dur, 0.0), 0.0});
  Payload payload = Payload::from_sequence(seq, 200);
  auto samples = execute(payload);
  if (!samples.ok()) return samples.error();
  {
    std::scoped_lock lock(mutex_);
    ++counters_.qa_runs;
  }
  const double single = samples.value().probability("10") +
                        samples.value().probability("01");
  return single;  // 1.0 on a perfect device
}

common::Status QpuDevice::set_shot_rate(double hz) {
  if (hz <= 0) {
    return common::err::invalid_argument("shot rate must be positive");
  }
  shot_rate_hz_.store(hz, std::memory_order_relaxed);
  QCENV_LOG(Info) << "shot rate set to " << hz << " Hz";
  return common::Status::ok_status();
}

void QpuDevice::recalibrate() {
  std::scoped_lock lock(mutex_);
  calibration_.recalibrate(clock_->now());
  QCENV_LOG(Info) << "device '" << options_.spec.name << "' recalibrated";
}

QpuCounters QpuDevice::counters() const {
  std::scoped_lock lock(mutex_);
  return counters_;
}

}  // namespace qcenv::qpu
