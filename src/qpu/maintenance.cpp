#include "qpu/maintenance.hpp"

#define QCENV_LOG_COMPONENT "qpu.maintenance"
#include "common/logging.hpp"

namespace qcenv::qpu {

common::Result<MaintenanceScheduler::TickOutcome> MaintenanceScheduler::tick(
    common::TimeNs now) {
  TickOutcome outcome;
  if (!initialized_) {
    // The device is assumed freshly calibrated when maintenance begins.
    counters_.last_recalibration_ns = now;
    initialized_ = true;
  }

  // Unconditional recalibration on stale calibration.
  if (policy_.max_calibration_age > 0 &&
      now - counters_.last_recalibration_ns >= policy_.max_calibration_age) {
    device_->recalibrate();
    counters_.last_recalibration_ns = now;
    ++counters_.recalibrations;
    outcome.recalibrated = true;
  }

  if (now - counters_.last_qa_ns < policy_.qa_interval &&
      counters_.qa_runs > 0) {
    return outcome;  // QA not due yet
  }
  auto quality = device_->run_qa_check();
  if (!quality.ok()) return quality.error();
  ++counters_.qa_runs;
  counters_.last_qa_ns = now;
  counters_.last_quality = quality.value();
  outcome.qa_ran = true;
  outcome.quality = quality.value();

  if (quality.value() < policy_.quality_threshold) {
    QCENV_LOG(Warn) << "QA quality " << quality.value()
                    << " below threshold " << policy_.quality_threshold
                    << "; recalibrating";
    device_->recalibrate();
    ++counters_.recalibrations;
    ++counters_.quality_triggers;
    counters_.last_recalibration_ns = now;
    outcome.recalibrated = true;
    // Confirm recovery so operators see the post-maintenance quality.
    auto confirm = device_->run_qa_check();
    if (confirm.ok()) {
      ++counters_.qa_runs;
      counters_.last_quality = confirm.value();
      outcome.quality = confirm.value();
    }
  }
  return outcome;
}

}  // namespace qcenv::qpu
