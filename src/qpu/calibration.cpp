#include "qpu/calibration.hpp"

#include <algorithm>
#include <cmath>

namespace qcenv::qpu {

using common::TimeNs;

CalibrationModel::CalibrationModel(quantum::CalibrationSnapshot nominal,
                                   DriftParams params, std::uint64_t seed)
    : nominal_(nominal), current_(nominal), params_(params), rng_(seed) {}

namespace {
/// One OU step: x' = mu + (x - mu) e^{-theta dt} + sigma sqrt(var) N(0,1)
/// with var = (1 - e^{-2 theta dt}) / (2 theta), dt in hours.
double ou_step(double x, double mu, double theta, double sigma, double dt_h,
               common::Rng& rng) {
  if (dt_h <= 0) return x;
  const double decay = std::exp(-theta * dt_h);
  const double var =
      theta > 0 ? (1.0 - decay * decay) / (2.0 * theta) : dt_h;
  return mu + (x - mu) * decay + sigma * std::sqrt(var) * rng.normal();
}
}  // namespace

const quantum::CalibrationSnapshot& CalibrationModel::advance_to(
    TimeNs now_ns) {
  if (now_ns <= last_time_ns_) return current_;
  const double dt_h =
      common::to_seconds(now_ns - last_time_ns_) / 3600.0;
  const double hours_since_recal =
      common::to_seconds(now_ns - last_recalibration_ns_) / 3600.0;
  const double theta = params_.theta_per_hour;

  current_.rabi_scale = ou_step(current_.rabi_scale, nominal_.rabi_scale,
                                theta, params_.rabi_scale_sigma, dt_h, rng_);
  current_.detuning_offset =
      ou_step(current_.detuning_offset, nominal_.detuning_offset, theta,
              params_.detuning_offset_sigma, dt_h, rng_);
  // Dephasing reverts to a slowly degrading mean.
  const double dephasing_mean =
      nominal_.dephasing_rate +
      params_.dephasing_degradation_per_hour * hours_since_recal;
  current_.dephasing_rate =
      std::max(0.0, ou_step(current_.dephasing_rate, dephasing_mean, theta,
                            params_.dephasing_sigma, dt_h, rng_));
  current_.readout_p01 = std::clamp(
      ou_step(current_.readout_p01, nominal_.readout_p01, theta,
              params_.readout_sigma, dt_h, rng_),
      0.0, 0.5);
  current_.readout_p10 = std::clamp(
      ou_step(current_.readout_p10, nominal_.readout_p10, theta,
              params_.readout_sigma, dt_h, rng_),
      0.0, 0.5);
  current_.fill_success = std::clamp(
      ou_step(current_.fill_success, nominal_.fill_success, theta,
              params_.fill_sigma, dt_h, rng_),
      0.5, 1.0);
  current_.timestamp_ns = now_ns;
  last_time_ns_ = now_ns;
  return current_;
}

void CalibrationModel::recalibrate(TimeNs now_ns) {
  current_ = nominal_;
  current_.timestamp_ns = now_ns;
  last_time_ns_ = now_ns;
  last_recalibration_ns_ = now_ns;
}

}  // namespace qcenv::qpu
