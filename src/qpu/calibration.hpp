// Calibration drift model.
//
// Quantum devices drift between calibrations (paper §2.5/§3.6): qubit
// coherence, drive amplitudes and readout fidelities wander over hours. We
// model each CalibrationSnapshot field as an Ornstein-Uhlenbeck process
// around its nominal value, plus a slow secular degradation of the
// dephasing rate since the last recalibration — giving the drift detectors
// in src/telemetry a realistic signal.
#pragma once

#include <cstdint>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "quantum/device.hpp"

namespace qcenv::qpu {

/// Drift dynamics per field. Sigmas are per sqrt(hour); theta is the mean
/// reversion rate per hour.
struct DriftParams {
  double theta_per_hour = 1.0;
  double rabi_scale_sigma = 0.02;
  double detuning_offset_sigma = 0.15;   // rad/us
  double dephasing_sigma = 0.002;        // 1/us
  double readout_sigma = 0.004;
  double fill_sigma = 0.002;
  /// Secular dephasing growth per hour since recalibration (degradation
  /// trend operators watch for).
  double dephasing_degradation_per_hour = 0.004;
};

class CalibrationModel {
 public:
  CalibrationModel(quantum::CalibrationSnapshot nominal, DriftParams params,
                   std::uint64_t seed);

  /// Advances the OU processes to absolute time `now_ns` and returns the
  /// snapshot at that time. Monotonic: earlier times are clamped.
  const quantum::CalibrationSnapshot& advance_to(common::TimeNs now_ns);

  const quantum::CalibrationSnapshot& current() const noexcept {
    return current_;
  }
  const quantum::CalibrationSnapshot& nominal() const noexcept {
    return nominal_;
  }

  /// Resets drift state to nominal (a recalibration run).
  void recalibrate(common::TimeNs now_ns);

  common::TimeNs last_recalibration_ns() const noexcept {
    return last_recalibration_ns_;
  }

 private:
  quantum::CalibrationSnapshot nominal_;
  quantum::CalibrationSnapshot current_;
  DriftParams params_;
  common::Rng rng_;
  common::TimeNs last_time_ns_ = 0;
  common::TimeNs last_recalibration_ns_ = 0;
};

}  // namespace qcenv::qpu
