#include "qpu/controller.hpp"

#include <algorithm>

#define QCENV_LOG_COMPONENT "qpu.controller"
#include "common/logging.hpp"

namespace qcenv::qpu {

using common::Result;
using common::Status;
using common::TaskId;
using quantum::Samples;

const char* to_string(TaskState state) noexcept {
  switch (state) {
    case TaskState::kQueued: return "queued";
    case TaskState::kRunning: return "running";
    case TaskState::kDone: return "done";
    case TaskState::kFailed: return "failed";
    case TaskState::kCancelled: return "cancelled";
  }
  return "?";
}

QpuController::QpuController(QpuDevice* device, common::Clock* clock)
    : device_(device),
      clock_(clock),
      worker_([this](const std::stop_token& stop) { worker_loop(stop); }) {}

QpuController::~QpuController() {
  worker_.request_stop();
  cv_.notify_all();
}

TaskId QpuController::submit(quantum::Payload payload) {
  auto entry = std::make_shared<Entry>();
  entry->info.id = ids_.next();
  entry->info.state = TaskState::kQueued;
  entry->info.submitted_ns = clock_->now();
  entry->info.shots = payload.shots();
  entry->payload = std::move(payload);
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(entry);
    tasks_[entry->info.id] = entry;
  }
  cv_.notify_all();
  return entry->info.id;
}

Result<TaskState> QpuController::status(TaskId id) const {
  std::scoped_lock lock(mutex_);
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return common::err::not_found("unknown task " + id.to_string());
  }
  return it->second->info.state;
}

Result<TaskInfo> QpuController::info(TaskId id) const {
  std::scoped_lock lock(mutex_);
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return common::err::not_found("unknown task " + id.to_string());
  }
  return it->second->info;
}

Result<Samples> QpuController::result(TaskId id) const {
  std::scoped_lock lock(mutex_);
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return common::err::not_found("unknown task " + id.to_string());
  }
  const Entry& entry = *it->second;
  switch (entry.info.state) {
    case TaskState::kDone: return *entry.samples;
    case TaskState::kFailed: return *entry.error;
    case TaskState::kCancelled:
      return common::err::cancelled("task " + id.to_string() +
                                    " was cancelled");
    default:
      return common::err::failed_precondition(
          "task " + id.to_string() + " is still " +
          std::string(to_string(entry.info.state)));
  }
}

Result<Samples> QpuController::wait(TaskId id) {
  std::unique_lock lock(mutex_);
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return common::err::not_found("unknown task " + id.to_string());
  }
  auto entry = it->second;
  cv_.wait(lock, [&] {
    return entry->info.state == TaskState::kDone ||
           entry->info.state == TaskState::kFailed ||
           entry->info.state == TaskState::kCancelled;
  });
  lock.unlock();
  return result(id);
}

Status QpuController::cancel(TaskId id) {
  std::scoped_lock lock(mutex_);
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return common::err::not_found("unknown task " + id.to_string());
  }
  Entry& entry = *it->second;
  switch (entry.info.state) {
    case TaskState::kQueued: {
      entry.info.state = TaskState::kCancelled;
      entry.info.finished_ns = clock_->now();
      const auto queue_it =
          std::find(queue_.begin(), queue_.end(), it->second);
      if (queue_it != queue_.end()) queue_.erase(queue_it);
      cv_.notify_all();
      return Status::ok_status();
    }
    case TaskState::kRunning:
      entry.cancel_requested.store(true, std::memory_order_release);
      return Status::ok_status();
    default:
      return common::err::failed_precondition(
          "task already " + std::string(to_string(entry.info.state)));
  }
}

std::size_t QpuController::queue_depth() const {
  std::scoped_lock lock(mutex_);
  return queue_.size();
}

std::vector<TaskInfo> QpuController::list_tasks() const {
  std::scoped_lock lock(mutex_);
  std::vector<TaskInfo> out;
  out.reserve(tasks_.size());
  for (const auto& [_, entry] : tasks_) out.push_back(entry->info);
  return out;
}

void QpuController::worker_loop(const std::stop_token& stop) {
  while (!stop.stop_requested()) {
    std::shared_ptr<Entry> entry;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop.stop_requested() || !queue_.empty(); });
      if (stop.stop_requested()) return;
      entry = queue_.front();
      queue_.pop_front();
      entry->info.state = TaskState::kRunning;
      entry->info.started_ns = clock_->now();
    }
    auto outcome = device_->execute(entry->payload, &entry->cancel_requested);
    {
      std::scoped_lock lock(mutex_);
      entry->info.finished_ns = clock_->now();
      if (outcome.ok()) {
        entry->samples = std::move(outcome).value();
        entry->info.state = TaskState::kDone;
      } else if (outcome.error().code() == common::ErrorCode::kCancelled) {
        entry->info.state = TaskState::kCancelled;
      } else {
        entry->error = outcome.error();
        entry->info.error = outcome.error().to_string();
        entry->info.state = TaskState::kFailed;
        QCENV_LOG(Warn) << "task " << entry->info.id.to_string()
                        << " failed: " << entry->info.error;
      }
    }
    cv_.notify_all();
  }
}

}  // namespace qcenv::qpu
