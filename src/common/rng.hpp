// Seeded random number generation with named distributions. Every stochastic
// component (noise models, arrival processes, drift) takes an explicit Rng so
// experiments are reproducible from a single seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace qcenv::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Deterministically derives an independent child stream (for giving each
  /// component its own generator from one experiment seed).
  Rng fork(std::uint64_t salt) {
    return Rng(engine_() ^ (salt * 0x9E3779B97F4A7C15ull));
  }

  double uniform() { return uniform_(engine_); }
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform_(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  double normal(double mean = 0.0, double stddev = 1.0) {
    return mean + stddev * normal_(engine_);
  }
  /// Exponential with the given mean (not rate).
  double exponential_mean(double mean) {
    return -mean * std::log(1.0 - uniform_(engine_));
  }
  bool bernoulli(double p) { return uniform_(engine_) < p; }

  /// Samples an index from unnormalized non-negative weights.
  std::size_t discrete(const std::vector<double>& weights) {
    return std::discrete_distribution<std::size_t>(weights.begin(),
                                                   weights.end())(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace qcenv::common
