// Layered configuration: defaults < file < environment < explicit overrides.
//
// QRMI (and the daemon) are configured through environment variables in the
// paper's design; Config reproduces that while letting tests inject values
// without touching the process environment.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.hpp"

namespace qcenv::common {

/// Immutable-after-build key/value configuration with typed accessors.
class Config {
 public:
  Config() = default;

  /// Loads `KEY=VALUE` lines ('#' comments, blank lines ignored) into the
  /// file layer. Later calls override earlier keys.
  Status load_file(const std::string& path);

  /// Parses the same format from a string (used by tests and embedded
  /// defaults).
  Status load_string(std::string_view text);

  /// Imports all process environment variables with the given prefix
  /// (e.g. "QRMI_") into the environment layer.
  void load_env(std::string_view prefix);

  /// Explicit override (highest precedence) — e.g. from CLI flags.
  void set(const std::string& key, std::string value);

  /// Lookup across layers (override > env > file).
  std::optional<std::string> get(const std::string& key) const;

  std::string get_or(const std::string& key, std::string fallback) const;
  Result<std::string> require(const std::string& key) const;

  /// Typed accessors; parse errors fall back (get_*_or) or error (require_*).
  long long get_int_or(const std::string& key, long long fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  /// All keys with the given prefix, in sorted order (for listing resources).
  std::map<std::string, std::string> with_prefix(std::string_view prefix) const;

  bool contains(const std::string& key) const { return get(key).has_value(); }

 private:
  std::map<std::string, std::string> file_layer_;
  std::map<std::string, std::string> env_layer_;
  std::map<std::string, std::string> override_layer_;
};

}  // namespace qcenv::common
