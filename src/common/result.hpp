// Result<T>: lightweight expected-style error handling for recoverable
// failures. Programming errors use assertions; Result is for I/O, protocol,
// validation and resource errors that callers are expected to handle.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace qcenv::common {

/// Coarse error category, stable across module boundaries.
enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kTimeout,
  kCancelled,
  kProtocol,
  kIo,
  kInternal,
};

/// Human-readable name for an ErrorCode ("invalid_argument", ...).
const char* to_string(ErrorCode code) noexcept;

/// An error: category plus a human-readable message describing the failure.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "invalid_argument: shots must be positive"
  std::string to_string() const;

  bool operator==(const Error& other) const noexcept {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

namespace err {
Error invalid_argument(std::string msg);
Error not_found(std::string msg);
Error already_exists(std::string msg);
Error permission_denied(std::string msg);
Error resource_exhausted(std::string msg);
Error failed_precondition(std::string msg);
Error unavailable(std::string msg);
Error timeout(std::string msg);
Error cancelled(std::string msg);
Error protocol(std::string msg);
Error io(std::string msg);
Error internal(std::string msg);
}  // namespace err

/// Result<T> holds either a value or an Error. Access to the wrong
/// alternative asserts: check ok() (or use value_or) before dereferencing.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT implicit
  Result(Error error) : state_(std::move(error)) {}  // NOLINT implicit

  bool ok() const noexcept { return std::holds_alternative<T>(state_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    assert(ok() && "Result::value() on error");
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok() && "Result::value() on error");
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok() && "Result::value() on error");
    return std::get<T>(std::move(state_));
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  const Error& error() const& {
    assert(!ok() && "Result::error() on value");
    return std::get<Error>(state_);
  }

  /// Applies fn to the value (returning its Result) or forwards the error.
  template <typename Fn>
  auto and_then(Fn&& fn) const& -> decltype(fn(std::declval<const T&>())) {
    if (ok()) return fn(value());
    return error();
  }

  /// Maps the value through fn, wrapping the output in a Result.
  template <typename Fn>
  auto map(Fn&& fn) const& -> Result<decltype(fn(std::declval<const T&>()))> {
    if (ok()) return fn(value());
    return error();
  }

 private:
  std::variant<T, Error> state_;
};

/// Status: Result with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)) {}  // NOLINT implicit

  static Status ok_status() { return Status(); }

  bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  const Error& error() const {
    assert(!ok() && "Status::error() on success");
    return *error_;
  }

  std::string to_string() const {
    return ok() ? "ok" : error_->to_string();
  }

 private:
  std::optional<Error> error_;
};

/// RETURN_IF_ERROR(status_expr): early-return the error of a Status.
#define QCENV_RETURN_IF_ERROR(expr)                      \
  do {                                                   \
    auto qcenv_status_ = (expr);                         \
    if (!qcenv_status_.ok()) return qcenv_status_.error(); \
  } while (0)

}  // namespace qcenv::common
