// Clock abstraction: production code uses WallClock; schedulers and tests
// use ManualClock so time-dependent logic is deterministic and fast.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace qcenv::common {

/// Monotonic time point in nanoseconds since an arbitrary epoch.
using TimeNs = std::int64_t;
/// Duration in nanoseconds.
using DurationNs = std::int64_t;

constexpr DurationNs kMicrosecond = 1'000;
constexpr DurationNs kMillisecond = 1'000'000;
constexpr DurationNs kSecond = 1'000'000'000;

constexpr double to_seconds(DurationNs ns) {
  return static_cast<double>(ns) / 1e9;
}
constexpr DurationNs from_seconds(double s) {
  return static_cast<DurationNs>(s * 1e9);
}
constexpr DurationNs from_millis(double ms) {
  return static_cast<DurationNs>(ms * 1e6);
}

/// Abstract monotonic clock. sleep_until must be interruptible by
/// ManualClock::advance (so virtual-time components never stall).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeNs now() const = 0;
  virtual void sleep_for(DurationNs duration) = 0;
};

/// Real monotonic clock backed by std::chrono::steady_clock.
class WallClock final : public Clock {
 public:
  TimeNs now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void sleep_for(DurationNs duration) override {
    if (duration <= 0) return;
    std::this_thread::sleep_for(std::chrono::nanoseconds(duration));
  }
};

/// Manually advanced clock for tests and discrete-event simulation.
/// sleep_for blocks the calling thread until another thread advances the
/// clock past the deadline (or returns immediately in single-threaded use
/// when `auto_advance` is enabled).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimeNs start = 0, bool auto_advance = true)
      : now_(start), auto_advance_(auto_advance) {}

  TimeNs now() const override { return now_.load(std::memory_order_acquire); }

  void sleep_for(DurationNs duration) override {
    if (duration <= 0) return;
    if (auto_advance_) {
      advance(duration);
      return;
    }
    std::unique_lock lock(mutex_);
    const TimeNs deadline = now_.load(std::memory_order_acquire) + duration;
    cv_.wait(lock, [&] { return now_.load(std::memory_order_acquire) >= deadline; });
  }

  /// Moves time forward and wakes sleepers.
  void advance(DurationNs delta) {
    {
      std::scoped_lock lock(mutex_);
      now_.fetch_add(delta, std::memory_order_acq_rel);
    }
    cv_.notify_all();
  }

  /// Monotonic catch-up: moves time forward to `t` if (and only if) it is
  /// ahead of now. Safe against concurrent advance() callers — a racing
  /// advance past `t` simply wins — which set() is not; simulation
  /// drivers use this to jump to the next scheduled event while worker
  /// threads nudge the clock through Clock::sleep_for.
  void advance_to(TimeNs t) {
    {
      std::scoped_lock lock(mutex_);
      if (t > now_.load(std::memory_order_acquire)) {
        now_.store(t, std::memory_order_release);
      }
    }
    cv_.notify_all();
  }

  /// Sets the absolute time (must not move backwards).
  void set(TimeNs t) {
    {
      std::scoped_lock lock(mutex_);
      now_.store(t, std::memory_order_release);
    }
    cv_.notify_all();
  }

 private:
  std::atomic<TimeNs> now_;
  bool auto_advance_;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace qcenv::common
