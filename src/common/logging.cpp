#include "common/logging.hpp"

#include <cstdio>
#include <ctime>

namespace qcenv::common {

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace {
void stderr_sink(LogLevel level, std::string_view component,
                 std::string_view message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%H:%M:%S", &tm_buf);
  std::fprintf(stderr, "[%s %-5s %.*s] %.*s\n", stamp, to_string(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() { sinks_.push_back(stderr_sink); }

void Logger::set_sink(LogSink sink) {
  std::scoped_lock lock(mutex_);
  sinks_.clear();
  sinks_.push_back(std::move(sink));
}

void Logger::add_sink(LogSink sink) {
  std::scoped_lock lock(mutex_);
  sinks_.push_back(std::move(sink));
}

void Logger::reset() {
  std::scoped_lock lock(mutex_);
  sinks_.clear();
  sinks_.push_back(stderr_sink);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (!enabled(level)) return;
  std::scoped_lock lock(mutex_);
  for (const auto& sink : sinks_) sink(level, component, message);
}

}  // namespace qcenv::common
