#include "common/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.hpp"

namespace qcenv::common {

BucketHistogram::BucketHistogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      counts_(boundaries_.size() + 1, 0) {
  assert(std::is_sorted(boundaries_.begin(), boundaries_.end()) &&
         "histogram boundaries must be sorted");
}

BucketHistogram BucketHistogram::exponential(double start, double factor,
                                             int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return BucketHistogram(std::move(bounds));
}

void BucketHistogram::observe(double value) {
  const auto it =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), value);
  counts_[static_cast<std::size_t>(it - boundaries_.begin())]++;
  ++count_;
  sum_ += value;
}

std::uint64_t BucketHistogram::cumulative(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k <= i && k < counts_.size(); ++k) {
    total += counts_[k];
  }
  return total;
}

void BucketHistogram::merge_counts(
    const std::vector<std::uint64_t>& bucket_counts, double sum) {
  assert(bucket_counts.size() == counts_.size() &&
         "merged bucket layout must match");
  for (std::size_t i = 0; i < counts_.size() && i < bucket_counts.size();
       ++i) {
    counts_[i] += bucket_counts[i];
    count_ += bucket_counts[i];
  }
  sum_ += sum;
}

void BucketHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
}

void QuantileRecorder::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double QuantileRecorder::mean() const {
  if (samples_.empty()) return 0;
  double total = 0;
  for (const double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double QuantileRecorder::min() const {
  ensure_sorted();
  return samples_.empty() ? 0 : samples_.front();
}

double QuantileRecorder::max() const {
  ensure_sorted();
  return samples_.empty() ? 0 : samples_.back();
}

double QuantileRecorder::quantile(double q) const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double QuantileRecorder::stddev() const {
  if (samples_.size() < 2) return 0;
  const double m = mean();
  double acc = 0;
  for (const double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

std::string QuantileRecorder::summary(const std::string& unit) const {
  return format("n=%zu mean=%.3f%s p50=%.3f%s p95=%.3f%s p99=%.3f%s max=%.3f%s",
                count(), mean(), unit.c_str(), quantile(0.5), unit.c_str(),
                quantile(0.95), unit.c_str(), quantile(0.99), unit.c_str(),
                max(), unit.c_str());
}

}  // namespace qcenv::common
