// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qcenv::common {

/// Splits on a delimiter; empty segments are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Lowercases ASCII.
std::string to_lower(std::string_view text);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Shortest decimal representation that round-trips the double exactly
/// ("0.98", not "0.97999999999999998").
std::string format_double_shortest(double value);

/// Fixed-width human-friendly engineering formatting, e.g. "1.23 ms".
std::string format_duration_ns(long long ns);

/// Random lowercase-hex token of `bytes*2` characters (for session tokens).
std::string random_token(std::size_t bytes = 16);

}  // namespace qcenv::common
