#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>

namespace qcenv::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.close();
  // jthread joins automatically.
}

void ThreadPool::worker_loop() {
  while (auto task = tasks_.pop()) {
    (*task)();
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t parts = std::min<std::size_t>(workers_.size() + 1, n);
  if (parts <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t chunk = (n + parts - 1) / parts;

  struct Latch {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t pending;
  };
  auto latch = std::make_shared<Latch>();
  latch->pending = parts - 1;

  // Dispatch all but the first chunk to the pool; run the first inline.
  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t lo = begin + p * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    const bool accepted = tasks_.push([&body, lo, hi, latch] {
      if (lo < hi) body(lo, hi);
      std::scoped_lock lock(latch->mutex);
      if (--latch->pending == 0) latch->cv.notify_one();
    });
    if (!accepted) {  // shutting down: run inline
      if (lo < hi) body(lo, hi);
      std::scoped_lock lock(latch->mutex);
      --latch->pending;
    }
  }
  body(begin, std::min(end, begin + chunk));

  // Help-first wait: while chunks are outstanding, execute queued tasks on
  // this thread so nested parallel_for calls cannot deadlock the pool.
  while (true) {
    {
      std::scoped_lock lock(latch->mutex);
      if (latch->pending == 0) return;
    }
    if (auto task = tasks_.try_pop()) {
      (*task)();
      continue;
    }
    std::unique_lock lock(latch->mutex);
    latch->cv.wait_for(lock, std::chrono::milliseconds(1),
                       [&] { return latch->pending == 0; });
    if (latch->pending == 0) return;
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(begin, end, [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace qcenv::common
