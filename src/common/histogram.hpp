// Fixed-boundary and streaming histograms for latency/size statistics.
// Used by the telemetry registry (Prometheus-style buckets) and by the
// bench harnesses (p50/p95/p99 reporting).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qcenv::common {

/// Cumulative-bucket histogram with user-supplied upper boundaries
/// (Prometheus semantics: each bucket counts observations <= boundary,
/// plus an implicit +Inf bucket).
class BucketHistogram {
 public:
  /// `boundaries` must be strictly increasing.
  explicit BucketHistogram(std::vector<double> boundaries);

  /// Exponential boundaries: `start * factor^i` for i in [0, count).
  static BucketHistogram exponential(double start, double factor, int count);

  void observe(double value);

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  const std::vector<double>& boundaries() const noexcept { return boundaries_; }
  /// Per-bucket (non-cumulative) counts; size == boundaries().size() + 1.
  const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }
  /// Cumulative count of observations <= boundaries()[i].
  std::uint64_t cumulative(std::size_t i) const;

  /// Adds pre-aggregated per-bucket counts (size must match
  /// bucket_counts()) plus their total `sum`. Used to assemble a
  /// snapshot from the telemetry registry's striped atomic counters.
  void merge_counts(const std::vector<std::uint64_t>& bucket_counts,
                    double sum);

  void reset();

 private:
  std::vector<double> boundaries_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// Exact-quantile recorder: stores samples and sorts on demand. Suitable for
/// bench harnesses (bounded sample counts), not for unbounded telemetry.
class QuantileRecorder {
 public:
  void record(double value) { samples_.push_back(value); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// q in [0, 1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double stddev() const;

  /// "n=100 mean=1.2 p50=1.1 p95=2.0 p99=3.4" with a value formatter suffix.
  std::string summary(const std::string& unit = "") const;

  void clear() { samples_.clear(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace qcenv::common
