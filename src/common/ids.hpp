// Strong ID types. JobId{3} and SessionId{3} do not compare or convert,
// which prevents the classic scheduler bug of crossing ID namespaces.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace qcenv::common {

/// CRTP-free strongly typed integral identifier; Tag disambiguates.
template <typename Tag>
struct StrongId {
  std::uint64_t value = 0;

  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t v) : value(v) {}

  constexpr bool valid() const noexcept { return value != 0; }
  constexpr auto operator<=>(const StrongId&) const = default;

  std::string to_string() const { return std::to_string(value); }
};

/// Thread-safe monotonically increasing ID allocator (never yields 0).
template <typename Tag>
class IdGenerator {
 public:
  StrongId<Tag> next() {
    return StrongId<Tag>(counter_.fetch_add(1, std::memory_order_relaxed));
  }

  /// Never hand out ids at or below `value` again (recovery floors the
  /// allocator past every restored id so old and new ids cannot alias).
  void reserve_through(std::uint64_t value) {
    std::uint64_t current = counter_.load(std::memory_order_relaxed);
    while (current <= value &&
           !counter_.compare_exchange_weak(current, value + 1,
                                           std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::uint64_t> counter_{1};
};

struct JobTag {};
struct SessionTag {};
struct TaskTag {};
struct NodeTag {};
struct AllocTag {};

using JobId = StrongId<JobTag>;        // batch-scheduler job
using SessionId = StrongId<SessionTag>;  // daemon user session
using TaskId = StrongId<TaskTag>;      // quantum task on a QRMI resource
using NodeId = StrongId<NodeTag>;      // compute node
using AllocId = StrongId<AllocTag>;    // resource allocation

}  // namespace qcenv::common

namespace std {
template <typename Tag>
struct hash<qcenv::common::StrongId<Tag>> {
  size_t operator()(const qcenv::common::StrongId<Tag>& id) const noexcept {
    return std::hash<uint64_t>{}(id.value);
  }
};
}  // namespace std
