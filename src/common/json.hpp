// Minimal self-contained JSON value, parser and serializer.
//
// Json is the interchange type for quantum payloads, REST bodies, device
// specs, configuration files and telemetry. Integers and doubles are kept
// distinct so payload round-trips are exact. Object keys are stored sorted
// (std::map) so serialization is deterministic.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.hpp"

namespace qcenv::common {

class Json;

using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// A JSON value: null, bool, int64, double, string, array or object.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}            // NOLINT implicit
  Json(bool b) : value_(b) {}                          // NOLINT implicit
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT implicit
  Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(long v) : value_(static_cast<std::int64_t>(v)) {}      // NOLINT
  Json(long long v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(unsigned long v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(unsigned long long v) : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(double v) : value_(v) {}                        // NOLINT implicit
  Json(const char* s) : value_(std::string(s)) {}      // NOLINT implicit
  Json(std::string s) : value_(std::move(s)) {}        // NOLINT implicit
  Json(std::string_view s) : value_(std::string(s)) {}  // NOLINT implicit
  Json(JsonArray a) : value_(std::move(a)) {}          // NOLINT implicit
  Json(JsonObject o) : value_(std::move(o)) {}         // NOLINT implicit

  static Json array() { return Json(JsonArray{}); }
  static Json array(std::initializer_list<Json> items) {
    return Json(JsonArray(items));
  }
  static Json object() { return Json(JsonObject{}); }
  static Json object(
      std::initializer_list<std::pair<const std::string, Json>> items) {
    return Json(JsonObject(items));
  }

  Type type() const noexcept { return static_cast<Type>(value_.index()); }
  bool is_null() const noexcept { return type() == Type::kNull; }
  bool is_bool() const noexcept { return type() == Type::kBool; }
  bool is_int() const noexcept { return type() == Type::kInt; }
  bool is_double() const noexcept { return type() == Type::kDouble; }
  bool is_number() const noexcept { return is_int() || is_double(); }
  bool is_string() const noexcept { return type() == Type::kString; }
  bool is_array() const noexcept { return type() == Type::kArray; }
  bool is_object() const noexcept { return type() == Type::kObject; }

  // Typed accessors; assert on type mismatch (callers validate first or use
  // the checked get_* helpers below).
  bool as_bool() const { return std::get<bool>(value_); }
  std::int64_t as_int() const {
    if (is_double()) return static_cast<std::int64_t>(std::get<double>(value_));
    return std::get<std::int64_t>(value_);
  }
  double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
    return std::get<double>(value_);
  }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Object access: operator[] inserts null on a missing key (object only).
  Json& operator[](const std::string& key);
  /// Const lookup: returns null Json when the key is absent or this is not
  /// an object (convenient for optional fields).
  const Json& at_or_null(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Checked field extraction with descriptive errors, for protocol parsing.
  Result<bool> get_bool(const std::string& key) const;
  Result<std::int64_t> get_int(const std::string& key) const;
  Result<double> get_double(const std::string& key) const;
  Result<std::string> get_string(const std::string& key) const;

  /// Array helpers.
  void push_back(Json value);
  std::size_t size() const;

  bool operator==(const Json& other) const { return value_ == other.value_; }

  /// Structural FNV-1a content hash: equal values hash equally (object
  /// keys are stored sorted, so order is canonical). Walks the tree
  /// directly — no serialization — which makes it cheap enough for
  /// content-addressing large payloads on hot paths.
  std::uint64_t hash() const noexcept;

  /// Serializes to compact JSON; `indent > 0` pretty-prints.
  std::string dump(int indent = 0) const;

  /// Parses a JSON document. Errors carry position information.
  static Result<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace qcenv::common
