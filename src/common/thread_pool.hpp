// Task-based thread pool (CP.4: think in terms of tasks, not threads).
//
// Two entry points:
//  - submit(fn): returns std::future<R> for one-off asynchronous tasks.
//  - parallel_for(begin, end, body): blocks until the index range has been
//    processed; used by the state-vector kernels for data parallelism.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/queue.hpp"

namespace qcenv::common {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Schedules `fn()` and returns a future for its result.
  template <typename Fn>
  auto submit(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    const bool accepted = tasks_.push([task] { (*task)(); });
    if (!accepted) {
      // Pool is shutting down; run inline so the future is always satisfied.
      (*task)();
    }
    return future;
  }

  /// Splits [begin, end) into chunks and runs `body(i)` for each index.
  /// Executes on the calling thread too, so it works with zero workers and
  /// never deadlocks when called from inside a pool task.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Same but the body receives [chunk_begin, chunk_end) ranges — cheaper
  /// for tight numeric kernels.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;
};

/// Process-wide default pool for numeric kernels.
ThreadPool& default_pool();

}  // namespace qcenv::common
