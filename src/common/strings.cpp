#include "common/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <random>

namespace qcenv::common {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string format_double_shortest(double value) {
  char buffer[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

std::string format_duration_ns(long long ns) {
  const double abs_ns = ns < 0 ? -static_cast<double>(ns) : static_cast<double>(ns);
  if (abs_ns < 1e3) return format("%lld ns", ns);
  if (abs_ns < 1e6) return format("%.2f us", static_cast<double>(ns) / 1e3);
  if (abs_ns < 1e9) return format("%.2f ms", static_cast<double>(ns) / 1e6);
  return format("%.3f s", static_cast<double>(ns) / 1e9);
}

std::string random_token(std::size_t bytes) {
  static thread_local std::mt19937_64 rng{std::random_device{}()};
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes * 2);
  for (std::size_t i = 0; i < bytes; ++i) {
    const auto byte = static_cast<unsigned>(rng() & 0xFF);
    out += kHex[byte >> 4];
    out += kHex[byte & 0xF];
  }
  return out;
}

}  // namespace qcenv::common
