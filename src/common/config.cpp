#include "common/config.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"

extern char** environ;

namespace qcenv::common {

Status Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return err::io("cannot open config file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return load_string(buffer.str());
}

Status Config::load_string(std::string_view text) {
  std::size_t line_no = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_no;
    const std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return err::invalid_argument("config line " + std::to_string(line_no) +
                                   " has no '=': " + std::string(line));
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) {
      return err::invalid_argument("config line " + std::to_string(line_no) +
                                   " has empty key");
    }
    file_layer_[key] = value;
  }
  return Status::ok_status();
}

void Config::load_env(std::string_view prefix) {
  for (char** env = environ; *env != nullptr; ++env) {
    const std::string_view entry(*env);
    if (!starts_with(entry, prefix)) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) continue;
    env_layer_[std::string(entry.substr(0, eq))] =
        std::string(entry.substr(eq + 1));
  }
}

void Config::set(const std::string& key, std::string value) {
  override_layer_[key] = std::move(value);
}

std::optional<std::string> Config::get(const std::string& key) const {
  if (const auto it = override_layer_.find(key); it != override_layer_.end()) {
    return it->second;
  }
  if (const auto it = env_layer_.find(key); it != env_layer_.end()) {
    return it->second;
  }
  if (const auto it = file_layer_.find(key); it != file_layer_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::string Config::get_or(const std::string& key, std::string fallback) const {
  auto v = get(key);
  return v ? *v : std::move(fallback);
}

Result<std::string> Config::require(const std::string& key) const {
  auto v = get(key);
  if (!v) return err::not_found("missing required config key: " + key);
  return *v;
}

long long Config::get_int_or(const std::string& key, long long fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') return fallback;
  return parsed;
}

double Config::get_double_or(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') return fallback;
  return parsed;
}

bool Config::get_bool_or(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const std::string lower = to_lower(*v);
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") {
    return false;
  }
  return fallback;
}

std::map<std::string, std::string> Config::with_prefix(
    std::string_view prefix) const {
  std::map<std::string, std::string> out;
  const auto scan = [&](const std::map<std::string, std::string>& layer) {
    for (const auto& [key, value] : layer) {
      if (starts_with(key, prefix)) out[key] = value;
    }
  };
  // Lowest precedence first so higher layers overwrite.
  scan(file_layer_);
  scan(env_layer_);
  scan(override_layer_);
  return out;
}

}  // namespace qcenv::common
