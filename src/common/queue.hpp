// Thread-safe blocking queue used for message passing between components
// (CP.3/CP.mess: prefer passing data over sharing writable state).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/clock.hpp"

namespace qcenv::common {

/// Unbounded MPMC blocking queue with close() semantics: after close(),
/// pushes are rejected and pops drain remaining items then return nullopt.
template <typename T>
class BlockingQueue {
 public:
  /// Returns false if the queue is closed.
  bool push(T item) {
    {
      std::scoped_lock lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Waits up to `timeout` (wall time); nullopt on timeout or closed-empty.
  std::optional<T> pop_for(DurationNs timeout) {
    std::unique_lock lock(mutex_);
    const bool got = cv_.wait_for(lock, std::chrono::nanoseconds(timeout),
                                  [&] { return !items_.empty() || closed_; });
    if (!got || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::scoped_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace qcenv::common
