#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qcenv::common {

namespace {

const Json kNullJson;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "null";  // JSON has no NaN; null is the least-surprising encoding
    return;
  }
  if (std::isinf(v)) {
    out += (v > 0 ? "1e308" : "-1e308");
    return;
  }
  char buf[32];
  // %.17g round-trips doubles exactly; trim to shortest via %g first.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = std::strtod(buf, nullptr);
  if (back == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      if (std::strtod(shorter, nullptr) == v) {
        out += shorter;
        return;
      }
    }
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse() {
    skip_ws();
    auto value = parse_value();
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Error fail(const std::string& what) const {
    return err::protocol("json parse error at offset " + std::to_string(pos_) +
                         ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  Result<Json> parse_value() {
    if (depth_ > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return s.error();
        return Json(std::move(s).value());
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Json(true);
        }
        return fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Json(false);
        }
        return fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Json(nullptr);
        }
        return fail("invalid literal");
      default: return parse_number();
    }
  }

  Result<Json> parse_object() {
    ++pos_;  // consume '{'
    ++depth_;
    JsonObject obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      --depth_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      auto value = parse_value();
      if (!value.ok()) return value;
      obj[std::move(key).value()] = std::move(value).value();
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return Json(std::move(obj));
      }
      return fail("expected ',' or '}' in object");
    }
  }

  Result<Json> parse_array() {
    ++pos_;  // consume '['
    ++depth_;
    JsonArray arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      --depth_;
      return Json(std::move(arr));
    }
    while (true) {
      skip_ws();
      auto value = parse_value();
      if (!value.ok()) return value;
      arr.push_back(std::move(value).value());
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return Json(std::move(arr));
      }
      return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    ++pos_;  // consume '"'
    std::string out;
    while (true) {
      if (eof()) return fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) return fail("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape");
            }
            // Encode as UTF-8 (surrogate pairs collapse to U+FFFD for
            // simplicity; payloads never use astral-plane characters).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("invalid escape");
        }
      } else {
        out += c;
      }
    }
  }

  Result<Json> parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof()) {
      const char c = peek();
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<std::int64_t>(v));
      }
      // fall through to double on overflow
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    return Json(d);
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (!is_object()) value_ = JsonObject{};
  return std::get<JsonObject>(value_)[key];
}

const Json& Json::at_or_null(const std::string& key) const {
  if (!is_object()) return kNullJson;
  const auto& obj = std::get<JsonObject>(value_);
  const auto it = obj.find(key);
  return it == obj.end() ? kNullJson : it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

Result<bool> Json::get_bool(const std::string& key) const {
  const Json& v = at_or_null(key);
  if (!v.is_bool()) return err::protocol("missing bool field '" + key + "'");
  return v.as_bool();
}

Result<std::int64_t> Json::get_int(const std::string& key) const {
  const Json& v = at_or_null(key);
  if (!v.is_number()) return err::protocol("missing int field '" + key + "'");
  return v.as_int();
}

Result<double> Json::get_double(const std::string& key) const {
  const Json& v = at_or_null(key);
  if (!v.is_number()) {
    return err::protocol("missing number field '" + key + "'");
  }
  return v.as_double();
}

Result<std::string> Json::get_string(const std::string& key) const {
  const Json& v = at_or_null(key);
  if (!v.is_string()) {
    return err::protocol("missing string field '" + key + "'");
  }
  return v.as_string();
}

void Json::push_back(Json value) {
  if (!is_array()) value_ = JsonArray{};
  std::get<JsonArray>(value_).push_back(std::move(value));
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent) * d, ' ');
    }
  };
  switch (type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += (as_bool() ? "true" : "false"); break;
    case Type::kInt: out += std::to_string(std::get<std::int64_t>(value_)); break;
    case Type::kDouble: append_double(out, std::get<double>(value_)); break;
    case Type::kString: append_escaped(out, as_string()); break;
    case Type::kArray: {
      const auto& arr = as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& item : arr) {
        if (!first) out += ',';
        first = false;
        newline_pad(depth + 1);
        item.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const auto& obj = as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, item] : obj) {
        if (!first) out += ',';
        first = false;
        newline_pad(depth + 1);
        append_escaped(out, key);
        out += ':';
        if (indent > 0) out += ' ';
        item.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_byte(std::uint64_t& hash, unsigned char byte) {
  hash ^= byte;
  hash *= kFnvPrime;
}

/// Word-wise mix (splitmix64 finalizer): one multiply chain per 64-bit
/// value instead of eight FNV rounds — numbers dominate payload bodies.
void mix_word(std::uint64_t& hash, std::uint64_t word) {
  std::uint64_t x = hash ^ word;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  hash = x;
}

void fnv_bytes(std::uint64_t& hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) fnv_byte(hash, bytes[i]);
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void hash_value(std::uint64_t& hash, const Json& value) {
  // Tag every node with its type so e.g. 0, false and "" differ, and
  // length-prefix strings and containers so element-boundary shifts
  // ([[1,2],3] vs [[1],2,3], "ab"+"c" vs "a"+"bc") cannot collide.
  fnv_byte(hash, static_cast<unsigned char>(value.type()));
  switch (value.type()) {
    case Json::Type::kNull:
      break;
    case Json::Type::kBool:
      fnv_byte(hash, value.as_bool() ? 1 : 0);
      break;
    case Json::Type::kInt:
      mix_word(hash, static_cast<std::uint64_t>(value.as_int()));
      break;
    case Json::Type::kDouble:
      mix_word(hash, double_bits(value.as_double()));
      break;
    case Json::Type::kString:
      mix_word(hash, value.as_string().size());
      fnv_bytes(hash, value.as_string().data(), value.as_string().size());
      break;
    case Json::Type::kArray:
      mix_word(hash, value.as_array().size());
      for (const auto& item : value.as_array()) hash_value(hash, item);
      break;
    case Json::Type::kObject:
      mix_word(hash, value.as_object().size());
      for (const auto& [key, item] : value.as_object()) {
        mix_word(hash, key.size());
        fnv_bytes(hash, key.data(), key.size());
        hash_value(hash, item);
      }
      break;
  }
}

}  // namespace

std::uint64_t Json::hash() const noexcept {
  std::uint64_t hash = kFnvBasis;
  hash_value(hash, *this);
  return hash;
}

Result<Json> Json::parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace qcenv::common
