// Thread-safe leveled logger with pluggable sinks.
//
// Usage:
//   QCENV_LOG(info) << "job " << id << " started";
// The default sink writes to stderr; tests may install a capture sink.
#pragma once

#include <chrono>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace qcenv::common {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level) noexcept;

/// A log sink receives fully formatted records. Must be callable from
/// multiple threads (the logger serializes calls under its own mutex).
using LogSink =
    std::function<void(LogLevel, std::string_view component, std::string_view message)>;

/// Process-wide logger. Cheap level check before any formatting happens.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }
  bool enabled(LogLevel level) const noexcept { return level >= level_ && level_ != LogLevel::kOff; }

  /// Replaces all sinks with `sink`. Returns the previous sink count.
  void set_sink(LogSink sink);
  /// Adds an additional sink.
  void add_sink(LogSink sink);
  /// Restores the default stderr sink.
  void reset();

  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();

  std::mutex mutex_;
  std::vector<LogSink> sinks_;
  LogLevel level_ = LogLevel::kInfo;
};

/// Stream-style single-record builder; emits on destruction.
class LogRecord {
 public:
  LogRecord(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogRecord() { Logger::instance().log(level_, component_, stream_.str()); }
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;

  template <typename T>
  LogRecord& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace qcenv::common

/// Component defaults to the translation unit; override with QCENV_LOG_COMPONENT.
#ifndef QCENV_LOG_COMPONENT
#define QCENV_LOG_COMPONENT "qcenv"
#endif

#define QCENV_LOG_AT(level_enum)                                            \
  if (!::qcenv::common::Logger::instance().enabled(level_enum)) {          \
  } else                                                                    \
    ::qcenv::common::LogRecord(level_enum, QCENV_LOG_COMPONENT)

#define QCENV_LOG(level) QCENV_LOG_AT(::qcenv::common::LogLevel::k##level)
