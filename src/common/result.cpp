#include "common/result.hpp"

namespace qcenv::common {

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kPermissionDenied: return "permission_denied";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kProtocol: return "protocol";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out = qcenv::common::to_string(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace err {
Error invalid_argument(std::string msg) {
  return Error(ErrorCode::kInvalidArgument, std::move(msg));
}
Error not_found(std::string msg) {
  return Error(ErrorCode::kNotFound, std::move(msg));
}
Error already_exists(std::string msg) {
  return Error(ErrorCode::kAlreadyExists, std::move(msg));
}
Error permission_denied(std::string msg) {
  return Error(ErrorCode::kPermissionDenied, std::move(msg));
}
Error resource_exhausted(std::string msg) {
  return Error(ErrorCode::kResourceExhausted, std::move(msg));
}
Error failed_precondition(std::string msg) {
  return Error(ErrorCode::kFailedPrecondition, std::move(msg));
}
Error unavailable(std::string msg) {
  return Error(ErrorCode::kUnavailable, std::move(msg));
}
Error timeout(std::string msg) {
  return Error(ErrorCode::kTimeout, std::move(msg));
}
Error cancelled(std::string msg) {
  return Error(ErrorCode::kCancelled, std::move(msg));
}
Error protocol(std::string msg) {
  return Error(ErrorCode::kProtocol, std::move(msg));
}
Error io(std::string msg) { return Error(ErrorCode::kIo, std::move(msg)); }
Error internal(std::string msg) {
  return Error(ErrorCode::kInternal, std::move(msg));
}
}  // namespace err

}  // namespace qcenv::common
