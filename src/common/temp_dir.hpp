// TempDir: RAII mkdtemp wrapper for tests and benches that need a scratch
// directory on disk (journal/snapshot files, data dirs). Not used by the
// library itself.
#pragma once

#include <cstdlib>

#include <filesystem>
#include <string>
#include <system_error>

namespace qcenv::common {

class TempDir {
 public:
  /// Creates `<tmp>/<prefix>XXXXXX`. On failure path() is empty, so the
  /// first use of the directory fails loudly instead of writing to "".
  explicit TempDir(const std::string& prefix = "qcenv-") {
    auto pattern =
        (std::filesystem::temp_directory_path() / (prefix + "XXXXXX"))
            .string();
    const char* created = ::mkdtemp(pattern.data());
    if (created != nullptr) path_ = created;
  }
  ~TempDir() {
    if (path_.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

}  // namespace qcenv::common
