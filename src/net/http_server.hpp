// Threaded HTTP server with a pattern router.
//
// Routes use ":name" segments for path parameters, e.g.
//   router.add("GET", "/v1/jobs/:id", handler);
// Handlers run on a worker pool; connections are keep-alive with an idle
// timeout. A middleware hook runs before routing (authentication, metrics).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "common/thread_pool.hpp"
#include "net/http.hpp"
#include "net/socket.hpp"

namespace qcenv::net {

using PathParams = std::map<std::string, std::string>;
using Handler = std::function<HttpResponse(const HttpRequest&, const PathParams&)>;
/// Returns a response to short-circuit (e.g. 401), or nullopt to continue.
using Middleware = std::function<std::optional<HttpResponse>(const HttpRequest&)>;

class Router {
 public:
  void add(const std::string& method, const std::string& pattern,
           Handler handler);

  /// Dispatches; 404 on no route, 405 on method mismatch for a known path.
  HttpResponse dispatch(const HttpRequest& request) const;

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;  // ":name" marks a parameter
    Handler handler;
  };
  static bool match(const Route& route, const std::vector<std::string>& path,
                    PathParams& params);

  std::vector<Route> routes_;
};

struct HttpServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral
  std::size_t worker_threads = 4;
  common::DurationNs idle_timeout = 5 * common::kSecond;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  Router& router() noexcept { return router_; }
  void set_middleware(Middleware middleware) {
    middleware_ = std::move(middleware);
  }

  /// Binds and starts the accept loop. Returns the bound port.
  common::Result<std::uint16_t> start();
  void stop();
  bool running() const noexcept { return running_.load(); }
  std::uint16_t port() const noexcept { return listener_.port(); }

  /// Requests served so far (for tests and metrics).
  std::uint64_t requests_served() const noexcept { return requests_.load(); }

 private:
  void accept_loop(const std::stop_token& stop);
  void serve_connection(Socket client);

  HttpServerOptions options_;
  Router router_;
  Middleware middleware_;
  ListenSocket listener_;
  std::unique_ptr<common::ThreadPool> workers_;
  std::jthread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace qcenv::net
