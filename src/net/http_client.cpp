#include "net/http_client.hpp"

#include "net/socket.hpp"

namespace qcenv::net {

using common::Result;

Result<HttpResponse> HttpClient::get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return send(std::move(request));
}

Result<HttpResponse> HttpClient::post(const std::string& target,
                                      const std::string& body) {
  HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.body = body;
  request.headers["Content-Type"] = "application/json";
  return send(std::move(request));
}

Result<HttpResponse> HttpClient::del(const std::string& target) {
  HttpRequest request;
  request.method = "DELETE";
  request.target = target;
  return send(std::move(request));
}

Result<HttpResponse> HttpClient::send(HttpRequest request) {
  for (const auto& [name, value] : default_headers_) {
    if (request.headers.find(name) == request.headers.end()) {
      request.headers[name] = value;
    }
  }
  request.headers["Connection"] = "close";

  auto socket = connect_local(port_, timeout_);
  if (!socket.ok()) return socket.error();
  QCENV_RETURN_IF_ERROR(socket.value().send_all(request.serialize()));

  HttpResponseParser parser;
  while (!parser.complete()) {
    auto chunk = socket.value().recv_some();
    if (!chunk.ok()) return chunk.error();
    if (chunk.value().empty()) {
      return common::err::protocol("connection closed mid-response");
    }
    auto progress = parser.feed(chunk.value());
    if (!progress.ok()) return progress.error();
  }
  return std::move(parser.response());
}

}  // namespace qcenv::net
