#include "net/http.hpp"

#include <algorithm>
#include <cctype>

#include "common/strings.hpp"

namespace qcenv::net {

using common::Result;

bool CaseInsensitiveLess::operator()(const std::string& a,
                                     const std::string& b) const {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(), [](char x, char y) {
        return std::tolower(static_cast<unsigned char>(x)) <
               std::tolower(static_cast<unsigned char>(y));
      });
}

std::string HttpRequest::path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::optional<std::string> HttpRequest::query_param(
    const std::string& key) const {
  const std::size_t q = target.find('?');
  if (q == std::string::npos) return std::nullopt;
  for (const auto& pair : common::split(target.substr(q + 1), '&')) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    if (pair.substr(0, eq) == key) return pair.substr(eq + 1);
  }
  return std::nullopt;
}

std::string HttpRequest::serialize() const {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  bool has_length = false;
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
    if (common::iequals(name, "content-length")) has_length = true;
  }
  if (!has_length) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

HttpResponse HttpResponse::json(int status, const std::string& body) {
  HttpResponse response;
  response.status = status;
  response.reason = status < 300   ? "OK"
                    : status < 400 ? "Redirect"
                    : status < 500 ? "Client Error"
                                   : "Server Error";
  response.headers["Content-Type"] = "application/json";
  response.body = body;
  return response;
}

HttpResponse HttpResponse::text(int status, const std::string& body) {
  HttpResponse response = json(status, body);
  response.headers["Content-Type"] = "text/plain";
  return response;
}

std::string HttpResponse::serialize() const {
  std::string out =
      "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  bool has_length = false;
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
    if (common::iequals(name, "content-length")) has_length = true;
  }
  if (!has_length) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

Result<Headers> parse_header_block(std::string_view block) {
  Headers headers;
  for (const auto& line : common::split(block, '\n')) {
    std::string_view trimmed = common::trim(line);
    if (trimmed.empty()) continue;
    const std::size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      return common::err::protocol("malformed header line: " +
                                   std::string(trimmed));
    }
    const std::string name(common::trim(trimmed.substr(0, colon)));
    const std::string value(common::trim(trimmed.substr(colon + 1)));
    if (name.empty()) return common::err::protocol("empty header name");
    headers[name] = value;
  }
  return headers;
}

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 64 * 1024 * 1024;

/// Shared framing logic: returns true when the message is complete.
template <typename Msg, typename StartLineFn>
Result<bool> feed_message(std::string& buffer, std::string_view bytes,
                          bool& headers_done, bool& complete,
                          std::size_t& body_expected, Msg& msg,
                          StartLineFn&& parse_start_line) {
  if (complete) return true;
  buffer.append(bytes);
  if (!headers_done) {
    const std::size_t end = buffer.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (buffer.size() > kMaxHeaderBytes) {
        return common::err::protocol("header block too large");
      }
      return false;
    }
    const std::string head = buffer.substr(0, end);
    buffer.erase(0, end + 4);
    const std::size_t line_end = head.find("\r\n");
    const std::string start_line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    auto status = parse_start_line(start_line);
    if (!status.ok()) return status.error();
    auto headers = parse_header_block(
        line_end == std::string::npos ? "" : head.substr(line_end + 2));
    if (!headers.ok()) return headers.error();
    msg.headers = std::move(headers).value();
    body_expected = 0;
    const auto it = msg.headers.find("Content-Length");
    if (it != msg.headers.end()) {
      char* end_ptr = nullptr;
      const unsigned long long len =
          std::strtoull(it->second.c_str(), &end_ptr, 10);
      if (end_ptr == it->second.c_str() || *end_ptr != '\0' ||
          len > kMaxBodyBytes) {
        return common::err::protocol("bad Content-Length");
      }
      body_expected = static_cast<std::size_t>(len);
    }
    headers_done = true;
  }
  if (buffer.size() >= body_expected) {
    msg.body = buffer.substr(0, body_expected);
    buffer.erase(0, body_expected);
    complete = true;
    return true;
  }
  return false;
}

}  // namespace

Result<bool> HttpRequestParser::feed(std::string_view bytes) {
  return feed_message(
      buffer_, bytes, headers_done_, complete_, body_expected_, request_,
      [this](const std::string& line) -> common::Status {
        const auto parts = common::split(line, ' ');
        if (parts.size() < 3 || parts[0].empty() || parts[1].empty()) {
          return common::err::protocol("malformed request line: " + line);
        }
        if (!common::starts_with(parts[2], "HTTP/1.")) {
          return common::err::protocol("unsupported HTTP version");
        }
        request_.method = parts[0];
        request_.target = parts[1];
        return common::Status::ok_status();
      });
}

Result<bool> HttpResponseParser::feed(std::string_view bytes) {
  return feed_message(
      buffer_, bytes, headers_done_, complete_, body_expected_, response_,
      [this](const std::string& line) -> common::Status {
        const auto parts = common::split(line, ' ');
        if (parts.size() < 2 || !common::starts_with(parts[0], "HTTP/1.")) {
          return common::err::protocol("malformed status line: " + line);
        }
        char* end_ptr = nullptr;
        const long code = std::strtol(parts[1].c_str(), &end_ptr, 10);
        if (end_ptr == parts[1].c_str() || code < 100 || code > 599) {
          return common::err::protocol("bad status code: " + parts[1]);
        }
        response_.status = static_cast<int>(code);
        response_.reason = parts.size() > 2 ? parts[2] : "";
        return common::Status::ok_status();
      });
}

}  // namespace qcenv::net
