#include "net/http_server.hpp"

#include <algorithm>

#include "common/strings.hpp"

#define QCENV_LOG_COMPONENT "net.http"
#include "common/logging.hpp"

namespace qcenv::net {

using common::Result;

void Router::add(const std::string& method, const std::string& pattern,
                 Handler handler) {
  Route route;
  route.method = method;
  for (const auto& segment : common::split(pattern, '/')) {
    if (!segment.empty()) route.segments.push_back(segment);
  }
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

bool Router::match(const Route& route, const std::vector<std::string>& path,
                   PathParams& params) {
  if (route.segments.size() != path.size()) return false;
  PathParams captured;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const std::string& pattern = route.segments[i];
    if (!pattern.empty() && pattern.front() == ':') {
      captured[pattern.substr(1)] = path[i];
    } else if (pattern != path[i]) {
      return false;
    }
  }
  params = std::move(captured);
  return true;
}

HttpResponse Router::dispatch(const HttpRequest& request) const {
  std::vector<std::string> path;
  for (const auto& segment : common::split(request.path(), '/')) {
    if (!segment.empty()) path.push_back(segment);
  }
  bool path_known = false;
  for (const auto& route : routes_) {
    PathParams params;
    if (!match(route, path, params)) continue;
    path_known = true;
    if (route.method != request.method) continue;
    return route.handler(request, params);
  }
  if (path_known) {
    return HttpResponse::json(405, R"({"error":"method not allowed"})");
  }
  return HttpResponse::json(404, R"({"error":"not found"})");
}

HttpServer::HttpServer(HttpServerOptions options)
    : options_(options) {}

HttpServer::~HttpServer() { stop(); }

Result<std::uint16_t> HttpServer::start() {
  auto listener = ListenSocket::listen_on(options_.port);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(listener).value();
  // Accept timeout lets the loop observe stop requests promptly.
  QCENV_RETURN_IF_ERROR(
      listener_.set_accept_timeout(100 * common::kMillisecond));
  workers_ = std::make_unique<common::ThreadPool>(options_.worker_threads);
  running_.store(true);
  acceptor_ = std::jthread(
      [this](const std::stop_token& stop) { accept_loop(stop); });
  QCENV_LOG(Debug) << "http server listening on 127.0.0.1:"
                   << listener_.port();
  return listener_.port();
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  acceptor_.request_stop();
  if (acceptor_.joinable()) acceptor_.join();
  workers_.reset();  // drains in-flight handlers
  listener_.close();
}

void HttpServer::accept_loop(const std::stop_token& stop) {
  while (!stop.stop_requested()) {
    auto client = listener_.accept_client();
    if (!client.ok()) {
      if (client.error().code() == common::ErrorCode::kTimeout) continue;
      if (!stop.stop_requested()) {
        QCENV_LOG(Warn) << "accept failed: " << client.error().to_string();
      }
      continue;
    }
    auto socket = std::make_shared<Socket>(std::move(client).value());
    workers_->submit([this, socket]() mutable {
      serve_connection(std::move(*socket));
    });
  }
}

void HttpServer::serve_connection(Socket client) {
  (void)client.set_timeout(options_.idle_timeout);
  while (running_.load()) {
    HttpRequestParser parser;
    bool closed = false;
    while (!parser.complete()) {
      auto chunk = client.recv_some();
      if (!chunk.ok() || chunk.value().empty()) {
        closed = true;
        break;
      }
      auto progress = parser.feed(chunk.value());
      if (!progress.ok()) {
        (void)client.send_all(
            HttpResponse::json(400, R"({"error":"malformed request"})")
                .serialize());
        return;
      }
    }
    if (closed) return;

    const HttpRequest& request = parser.request();
    HttpResponse response;
    if (middleware_) {
      if (auto intercepted = middleware_(request)) {
        response = std::move(*intercepted);
      } else {
        response = router_.dispatch(request);
      }
    } else {
      response = router_.dispatch(request);
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    response.headers["Connection"] = "keep-alive";
    if (!client.send_all(response.serialize()).ok()) return;

    const auto connection = request.headers.find("Connection");
    if (connection != request.headers.end() &&
        common::iequals(connection->second, "close")) {
      return;
    }
  }
}

}  // namespace qcenv::net
