#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace qcenv::net {

using common::Result;
using common::Status;

namespace {
common::Error errno_error(const std::string& what) {
  return common::err::io(what + ": " + std::strerror(errno));
}

/// Waits for readiness with poll(). Timeouts rely on poll rather than
/// SO_RCVTIMEO/SO_SNDTIMEO because sandboxed kernels do not always honour
/// socket timeouts on blocking accept()/recv().
/// events: POLLIN or POLLOUT. timeout <= 0 waits indefinitely.
Status wait_ready(int fd, short events, common::DurationNs timeout) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  const int timeout_ms =
      timeout > 0
          ? static_cast<int>(
                std::max<common::DurationNs>(1, timeout / common::kMillisecond))
          : -1;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::ok_status();
    if (rc == 0) return common::err::timeout("poll timed out");
    if (errno == EINTR) continue;
    return errno_error("poll");
  }
}
}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), timeout_(other.timeout_) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    timeout_ = other.timeout_;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::send_all(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    QCENV_RETURN_IF_ERROR(wait_ready(fd_, POLLOUT, timeout_));
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return errno_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::ok_status();
}

Result<std::string> Socket::recv_some(std::size_t max_bytes) {
  QCENV_RETURN_IF_ERROR(wait_ready(fd_, POLLIN, timeout_));
  std::string buffer(max_bytes, '\0');
  while (true) {
    const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Readiness raced away (rare); wait again.
        QCENV_RETURN_IF_ERROR(wait_ready(fd_, POLLIN, timeout_));
        continue;
      }
      return errno_error("recv");
    }
    buffer.resize(static_cast<std::size_t>(n));
    return buffer;
  }
}

Status Socket::set_timeout(common::DurationNs timeout) {
  timeout_ = timeout;
  return Status::ok_status();
}

Result<ListenSocket> ListenSocket::listen_on(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  Socket socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return errno_error("bind");
  }
  if (::listen(fd, backlog) != 0) return errno_error("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_error("getsockname");
  }
  ListenSocket out;
  out.socket_ = std::move(socket);
  out.port_ = ntohs(addr.sin_port);
  return out;
}

Result<Socket> ListenSocket::accept_client() {
  QCENV_RETURN_IF_ERROR(
      wait_ready(socket_.fd(), POLLIN, accept_timeout_));
  while (true) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return common::err::timeout("accept timed out");
    }
    return errno_error("accept");
  }
}

Status ListenSocket::set_accept_timeout(common::DurationNs timeout) {
  accept_timeout_ = timeout;
  return Status::ok_status();
}

Result<Socket> connect_local(std::uint16_t port, common::DurationNs timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  Socket socket(fd);
  QCENV_RETURN_IF_ERROR(socket.set_timeout(timeout));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return errno_error("connect to 127.0.0.1:" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

}  // namespace qcenv::net
