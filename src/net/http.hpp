// Minimal HTTP/1.1 message model and wire codec (request/response line,
// headers, Content-Length bodies). Enough protocol for a REST daemon on an
// access node; no chunked encoding, no TLS (site-internal service).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/result.hpp"

namespace qcenv::net {

/// Case-insensitive header map (HTTP header names are case-insensitive).
struct CaseInsensitiveLess {
  bool operator()(const std::string& a, const std::string& b) const;
};
using Headers = std::map<std::string, std::string, CaseInsensitiveLess>;

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // path + optional query, e.g. "/v1/jobs?limit=5"
  Headers headers;
  std::string body;

  /// Path without the query string.
  std::string path() const;
  /// Query parameter lookup (simple k=v&k=v parsing, no URL decoding of
  /// reserved characters beyond %XX for the values we generate).
  std::optional<std::string> query_param(const std::string& key) const;

  std::string serialize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  std::string body;

  static HttpResponse json(int status, const std::string& body);
  static HttpResponse text(int status, const std::string& body);

  std::string serialize() const;
};

/// Incremental parser: feed() bytes until a full message is available.
/// Template on message kind via two concrete classes below.
class HttpRequestParser {
 public:
  /// Appends bytes; returns a parsed request once complete, nullopt while
  /// incomplete, or an error on malformed input.
  common::Result<bool> feed(std::string_view bytes);
  bool complete() const noexcept { return complete_; }
  HttpRequest& request() { return request_; }

 private:
  std::string buffer_;
  HttpRequest request_;
  bool headers_done_ = false;
  bool complete_ = false;
  std::size_t body_expected_ = 0;
};

class HttpResponseParser {
 public:
  common::Result<bool> feed(std::string_view bytes);
  bool complete() const noexcept { return complete_; }
  HttpResponse& response() { return response_; }

 private:
  std::string buffer_;
  HttpResponse response_;
  bool headers_done_ = false;
  bool complete_ = false;
  std::size_t body_expected_ = 0;
};

/// Shared header-block parsing (exposed for tests).
common::Result<Headers> parse_header_block(std::string_view block);

}  // namespace qcenv::net
