// RAII TCP sockets (IPv4, localhost-oriented). The REST substrate for the
// middleware daemon and the simulated cloud service.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/clock.hpp"
#include "common/result.hpp"

namespace qcenv::net {

/// Owns a file descriptor; moves transfer ownership, destruction closes.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Sends the whole buffer (handles partial writes).
  common::Status send_all(std::string_view data);

  /// Receives up to `max_bytes`; empty string = orderly shutdown.
  common::Result<std::string> recv_some(std::size_t max_bytes = 64 * 1024);

  /// Sets the poll-based I/O timeout (0 = wait indefinitely). Implemented
  /// with poll() rather than SO_RCVTIMEO, which sandboxed kernels ignore.
  common::Status set_timeout(common::DurationNs timeout);

  void close();

 private:
  int fd_ = -1;
  common::DurationNs timeout_ = 0;
};

/// Listening socket bound to 127.0.0.1.
class ListenSocket {
 public:
  /// Binds and listens; port 0 picks an ephemeral port.
  static common::Result<ListenSocket> listen_on(std::uint16_t port,
                                                int backlog = 64);

  ListenSocket() = default;
  std::uint16_t port() const noexcept { return port_; }
  bool valid() const noexcept { return socket_.valid(); }

  /// Blocks for the next client; respects the accept timeout if set so
  /// servers can poll their shutdown flag (kTimeout on expiry).
  common::Result<Socket> accept_client();

  common::Status set_accept_timeout(common::DurationNs timeout);

  void close() { socket_.close(); }

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
  common::DurationNs accept_timeout_ = 0;
};

/// Connects to 127.0.0.1:port.
common::Result<Socket> connect_local(
    std::uint16_t port, common::DurationNs timeout = 5 * common::kSecond);

}  // namespace qcenv::net
