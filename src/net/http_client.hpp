// Blocking HTTP client for localhost services. One connection per request —
// simple and robust; the daemon's request rates don't justify pooling.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "net/http.hpp"

namespace qcenv::net {

class HttpClient {
 public:
  explicit HttpClient(std::uint16_t port,
                      common::DurationNs timeout = 10 * common::kSecond)
      : port_(port), timeout_(timeout) {}

  std::uint16_t port() const noexcept { return port_; }

  /// Adds a header sent with every request (e.g. Authorization).
  void set_default_header(const std::string& name, const std::string& value) {
    default_headers_[name] = value;
  }

  common::Result<HttpResponse> get(const std::string& target);
  common::Result<HttpResponse> post(const std::string& target,
                                    const std::string& body);
  common::Result<HttpResponse> del(const std::string& target);

  common::Result<HttpResponse> send(HttpRequest request);

 private:
  std::uint16_t port_;
  common::DurationNs timeout_;
  Headers default_headers_;
};

}  // namespace qcenv::net
