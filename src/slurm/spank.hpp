// SPANK-style plugin hooks (after Slurm's SPANK API): plugins observe job
// submission, validate options and inject environment variables into the
// job. This is how QRMI configuration reaches user jobs without source
// changes — the `--qpu=<resource>` option becomes QRMI_* env vars.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "qrmi/registry.hpp"
#include "slurm/types.hpp"

namespace qcenv::slurm {

class SpankPlugin {
 public:
  virtual ~SpankPlugin() = default;
  virtual std::string name() const = 0;

  /// Runs at submission, before queueing. May mutate job.env or reject the
  /// job with an error.
  virtual common::Status on_submit(BatchJob& job) = 0;
};

/// The QRMI plugin: resolves `--qpu=<resource>` against the resource
/// registry, rejects unknown resources at submit time (instead of failing
/// inside the job), and exports:
///   QRMI_RESOURCE_ID, QRMI_RESOURCE_TYPE,
///   QRMI_DAEMON_PORT (when the middleware daemon endpoint is configured).
class QrmiSpankPlugin final : public SpankPlugin {
 public:
  QrmiSpankPlugin(const qrmi::ResourceRegistry* registry,
                  std::uint16_t daemon_port = 0)
      : registry_(registry), daemon_port_(daemon_port) {}

  std::string name() const override { return "spank_qrmi"; }
  common::Status on_submit(BatchJob& job) override;

 private:
  const qrmi::ResourceRegistry* registry_;
  std::uint16_t daemon_port_;
};

/// Validates `--hint=` values against the Table-1 taxonomy and normalizes
/// them into the job environment (QCENV_WORKLOAD_HINT).
class HintSpankPlugin final : public SpankPlugin {
 public:
  std::string name() const override { return "spank_hint"; }
  common::Status on_submit(BatchJob& job) override;
};

}  // namespace qcenv::slurm
