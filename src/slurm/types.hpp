// slurmlite core types: nodes, partitions, jobs.
//
// A deliberately small model of the Slurm surfaces the paper relies on:
// partitions with priorities (mapping the daemon's job classes, §3.3),
// GRES/license pools for fractional QPU shares (§3.5), SPANK-style plugin
// hooks that inject QRMI environment variables, and preemption between
// partitions.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"

namespace qcenv::slurm {

using common::DurationNs;
using common::JobId;
using common::TimeNs;

struct NodeSpec {
  std::string name;
  int cpus = 32;
  int gpus = 0;
};

struct Partition {
  std::string name;
  /// Larger = more important. Maps to the daemon's job classes.
  int priority = 100;
  /// Jobs in this partition may preempt running jobs of lower-priority
  /// partitions when resources are short.
  bool preempt_lower = false;
  DurationNs max_time = 24LL * 3600 * common::kSecond;
};

/// Countable shared resources (the paper's "10 licenses/GRES units,
/// corresponding to timeshares of the QPU in increments of 10 points").
struct CountedPool {
  std::string name;
  int total = 0;
};

enum class JobState {
  kPending,
  kRunning,
  kCompleted,
  kCancelled,
  kPreempted,  // transient: requeued as pending
  kTimeout,
};

const char* to_string(JobState state) noexcept;

struct JobSubmission {
  std::string name;
  std::string user;
  std::string partition;
  int nodes = 1;
  int cpus_per_node = 1;
  std::map<std::string, int> gres;      // pool name -> units
  std::map<std::string, int> licenses;  // pool name -> count
  DurationNs time_limit = 3600 * common::kSecond;
  /// Actual runtime in simulation (the "script length").
  DurationNs duration = 60 * common::kSecond;
  /// When true the job runs until SlurmScheduler::complete() is called
  /// (hybrid jobs whose wall time depends on external queues); the time
  /// limit still applies.
  bool external_completion = false;
  /// --qpu=<resource>: consumed by the QRMI SPANK plugin.
  std::string qpu_resource;
  /// --hint=<pattern>: workload-pattern hint (Table 1).
  std::string hint;
};

struct BatchJob {
  JobId id;
  JobSubmission submission;
  JobState state = JobState::kPending;
  TimeNs submit_time = 0;
  TimeNs start_time = 0;
  TimeNs end_time = 0;
  int preempt_count = 0;
  /// Environment assembled by SPANK plugins at submission.
  std::map<std::string, std::string> env;
  /// Node names allocated while running.
  std::vector<std::string> allocated_nodes;
};

/// Observer hooks fired by the scheduler (workload models attach here).
struct JobCallbacks {
  std::function<void(const BatchJob&)> on_start;
  std::function<void(const BatchJob&)> on_end;  // any terminal state
};

}  // namespace qcenv::slurm
