#include "slurm/scheduler.hpp"

#include <algorithm>
#include <cassert>

#define QCENV_LOG_COMPONENT "slurm"
#include "common/logging.hpp"

namespace qcenv::slurm {

using common::Result;
using common::Status;

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kPending: return "pending";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kPreempted: return "preempted";
    case JobState::kTimeout: return "timeout";
  }
  return "?";
}

SlurmScheduler::SlurmScheduler(ClusterConfig config, simkit::Simulator* sim)
    : config_(std::move(config)), sim_(sim) {
  nodes_.reserve(config_.nodes.size());
  for (const auto& spec : config_.nodes) {
    nodes_.push_back(NodeState{spec, spec.cpus});
    total_cpus_ += spec.cpus;
  }
  for (const auto& pool : config_.gres) {
    gres_free_[pool.name] = pool.total;
    gres_busy_[pool.name] = 0;
  }
  for (const auto& pool : config_.licenses) {
    license_free_[pool.name] = pool.total;
  }
  last_account_time_ = sim_->now();
}

void SlurmScheduler::register_plugin(std::unique_ptr<SpankPlugin> plugin) {
  plugins_.push_back(std::move(plugin));
}

const Partition* SlurmScheduler::find_partition(const std::string& name) const {
  for (const auto& partition : config_.partitions) {
    if (partition.name == name) return &partition;
  }
  return nullptr;
}

int SlurmScheduler::partition_priority(const Record& record) const {
  const Partition* partition =
      find_partition(record.job.submission.partition);
  return partition != nullptr ? partition->priority : 0;
}

Result<JobId> SlurmScheduler::submit(JobSubmission submission,
                                     JobCallbacks callbacks) {
  const Partition* partition = find_partition(submission.partition);
  if (partition == nullptr) {
    return common::err::invalid_argument("unknown partition: " +
                                         submission.partition);
  }
  if (submission.time_limit > partition->max_time) {
    return common::err::invalid_argument(
        "time limit exceeds partition max for " + submission.partition);
  }
  if (submission.nodes <= 0 || submission.cpus_per_node <= 0) {
    return common::err::invalid_argument("nodes and cpus must be positive");
  }
  if (static_cast<std::size_t>(submission.nodes) > nodes_.size()) {
    return common::err::resource_exhausted("cluster has only " +
                                           std::to_string(nodes_.size()) +
                                           " nodes");
  }
  for (const auto& [pool, units] : submission.gres) {
    const auto it = gres_free_.find(pool);
    if (it == gres_free_.end()) {
      return common::err::invalid_argument("unknown GRES pool: " + pool);
    }
    // Validate against total, not current availability.
    for (const auto& configured : config_.gres) {
      if (configured.name == pool && units > configured.total) {
        return common::err::resource_exhausted(
            "GRES request exceeds pool " + pool);
      }
    }
  }

  Record record;
  record.job.id = ids_.next();
  record.job.submission = std::move(submission);
  record.job.submit_time = sim_->now();
  record.callbacks = std::move(callbacks);
  for (const auto& plugin : plugins_) {
    QCENV_RETURN_IF_ERROR(plugin->on_submit(record.job));
  }
  const JobId id = record.job.id;
  records_.emplace(id, std::move(record));
  pending_.push_back(id);
  schedule_pass();
  return id;
}

Status SlurmScheduler::cancel(JobId id) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return common::err::not_found("unknown job " + id.to_string());
  }
  Record& record = it->second;
  switch (record.job.state) {
    case JobState::kPending: {
      record.job.state = JobState::kCancelled;
      record.job.end_time = sim_->now();
      pending_.erase(std::find(pending_.begin(), pending_.end(), id));
      if (record.callbacks.on_end) record.callbacks.on_end(record.job);
      return Status::ok_status();
    }
    case JobState::kRunning:
      end_job(id, JobState::kCancelled);
      return Status::ok_status();
    default:
      return common::err::failed_precondition(
          "job already " + std::string(to_string(record.job.state)));
  }
}

Result<BatchJob> SlurmScheduler::query(JobId id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return common::err::not_found("unknown job " + id.to_string());
  }
  return it->second.job;
}

std::vector<BatchJob> SlurmScheduler::queue_snapshot() const {
  std::vector<BatchJob> out;
  for (const auto& [_, record] : records_) {
    if (record.job.state == JobState::kPending ||
        record.job.state == JobState::kRunning) {
      out.push_back(record.job);
    }
  }
  return out;
}

std::size_t SlurmScheduler::pending_count() const { return pending_.size(); }

std::size_t SlurmScheduler::running_count() const {
  std::size_t count = 0;
  for (const auto& [_, record] : records_) {
    if (record.job.state == JobState::kRunning) ++count;
  }
  return count;
}

std::optional<SlurmScheduler::Allocation> SlurmScheduler::try_allocate(
    const BatchJob& job) {
  Allocation allocation;
  // Nodes: first-fit over nodes with enough free cpus.
  int remaining = job.submission.nodes;
  for (std::size_t i = 0; i < nodes_.size() && remaining > 0; ++i) {
    if (nodes_[i].free_cpus >= job.submission.cpus_per_node) {
      allocation.node_cpus.emplace_back(i, job.submission.cpus_per_node);
      --remaining;
    }
  }
  if (remaining > 0) return std::nullopt;
  for (const auto& [pool, units] : job.submission.gres) {
    if (gres_free_[pool] < units) return std::nullopt;
    allocation.gres[pool] = units;
  }
  for (const auto& [pool, count] : job.submission.licenses) {
    const auto it = license_free_.find(pool);
    if (it == license_free_.end() || it->second < count) return std::nullopt;
    allocation.licenses[pool] = count;
  }
  return allocation;
}

void SlurmScheduler::apply_allocation(Record& record, Allocation allocation) {
  account_until(sim_->now());
  for (const auto& [node, cpus] : allocation.node_cpus) {
    nodes_[node].free_cpus -= cpus;
    busy_cpus_ += cpus;
    record.job.allocated_nodes.push_back(nodes_[node].spec.name);
  }
  for (const auto& [pool, units] : allocation.gres) {
    gres_free_[pool] -= units;
    gres_busy_[pool] += units;
  }
  for (const auto& [pool, count] : allocation.licenses) {
    license_free_[pool] -= count;
  }
  record.allocation = std::move(allocation);
}

void SlurmScheduler::release_allocation(Record& record) {
  if (!record.allocation.has_value()) return;
  account_until(sim_->now());
  for (const auto& [node, cpus] : record.allocation->node_cpus) {
    nodes_[node].free_cpus += cpus;
    busy_cpus_ -= cpus;
  }
  for (const auto& [pool, units] : record.allocation->gres) {
    gres_free_[pool] += units;
    gres_busy_[pool] -= units;
  }
  for (const auto& [pool, count] : record.allocation->licenses) {
    license_free_[pool] += count;
  }
  record.job.allocated_nodes.clear();
  record.allocation.reset();
}

void SlurmScheduler::start_job(JobId id) {
  Record& record = records_.at(id);
  record.job.state = JobState::kRunning;
  record.job.start_time = sim_->now();
  if (record.job.submission.external_completion) {
    // Externally driven job: only the time limit is scheduled.
    record.allocation->end_event = sim_->schedule_after(
        record.job.submission.time_limit,
        [this, id] { end_job(id, JobState::kTimeout); });
  } else {
    const DurationNs runtime = std::min(record.job.submission.duration,
                                        record.job.submission.time_limit);
    const bool timed_out =
        record.job.submission.duration > record.job.submission.time_limit;
    record.allocation->end_event = sim_->schedule_after(
        runtime, [this, id, timed_out] {
          end_job(id, timed_out ? JobState::kTimeout : JobState::kCompleted);
        });
  }
  if (record.callbacks.on_start) record.callbacks.on_start(record.job);
}

Status SlurmScheduler::complete(JobId id) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return common::err::not_found("unknown job " + id.to_string());
  }
  if (it->second.job.state != JobState::kRunning) {
    return common::err::failed_precondition(
        "job is " + std::string(to_string(it->second.job.state)));
  }
  if (it->second.allocation.has_value() &&
      it->second.allocation->end_event != 0) {
    sim_->cancel(it->second.allocation->end_event);
    it->second.allocation->end_event = 0;
  }
  end_job(id, JobState::kCompleted);
  return Status::ok_status();
}

void SlurmScheduler::end_job(JobId id, JobState final_state) {
  Record& record = records_.at(id);
  assert(record.job.state == JobState::kRunning);
  if (record.allocation.has_value() && record.allocation->end_event != 0 &&
      final_state != JobState::kCompleted &&
      final_state != JobState::kTimeout) {
    sim_->cancel(record.allocation->end_event);
  }
  release_allocation(record);
  record.job.end_time = sim_->now();
  record.job.state = final_state;
  switch (final_state) {
    case JobState::kCompleted: ++stats_.jobs_completed; break;
    case JobState::kTimeout: ++stats_.jobs_timed_out; break;
    case JobState::kPreempted: ++stats_.jobs_preempted; break;
    default: break;
  }
  if (final_state == JobState::kPreempted) {
    // Requeue from scratch (Slurm's requeue-on-preempt semantics).
    record.job.state = JobState::kPending;
    ++record.job.preempt_count;
    pending_.push_back(id);
  } else if (record.callbacks.on_end) {
    record.callbacks.on_end(record.job);
  }
  schedule_pass();
}

TimeNs SlurmScheduler::earliest_start_estimate(const BatchJob& job) const {
  // Collect running jobs' latest end bounds (start + time_limit) and probe
  // successively later release times until the job fits.
  struct Release {
    TimeNs at;
    const Record* record;
  };
  std::vector<Release> releases;
  for (const auto& [_, record] : records_) {
    if (record.job.state == JobState::kRunning &&
        record.allocation.has_value()) {
      releases.push_back(
          Release{record.job.start_time + record.job.submission.time_limit,
                  &record});
    }
  }
  std::sort(releases.begin(), releases.end(),
            [](const Release& a, const Release& b) { return a.at < b.at; });

  // Probe: free resources now plus everything released up to each point.
  std::vector<int> free_cpus(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    free_cpus[i] = nodes_[i].free_cpus;
  }
  std::map<std::string, int> gres = gres_free_;
  const auto fits = [&]() {
    int needed = job.submission.nodes;
    for (std::size_t i = 0; i < free_cpus.size() && needed > 0; ++i) {
      if (free_cpus[i] >= job.submission.cpus_per_node) --needed;
    }
    if (needed > 0) return false;
    for (const auto& [pool, units] : job.submission.gres) {
      const auto it = gres.find(pool);
      if (it == gres.end() || it->second < units) return false;
    }
    return true;
  };
  if (fits()) return sim_->now();
  for (const auto& release : releases) {
    for (const auto& [node, cpus] : release.record->allocation->node_cpus) {
      free_cpus[node] += cpus;
    }
    for (const auto& [pool, units] : release.record->allocation->gres) {
      gres[pool] += units;
    }
    if (fits()) return release.at;
  }
  // Cannot fit even with everything free (request > cluster) — treat as far
  // future so nothing backfills around it forever.
  return sim_->now() + 365LL * 24 * 3600 * common::kSecond;
}

void SlurmScheduler::preempt_for(const BatchJob& head) {
  const Partition* head_partition = find_partition(head.submission.partition);
  if (head_partition == nullptr || !head_partition->preempt_lower) return;
  // Victims: running jobs in strictly lower-priority partitions, lowest
  // priority first, newest first.
  std::vector<JobId> victims;
  for (const auto& [id, record] : records_) {
    if (record.job.state != JobState::kRunning) continue;
    const Partition* p = find_partition(record.job.submission.partition);
    if (p != nullptr && p->priority < head_partition->priority) {
      victims.push_back(id);
    }
  }
  std::sort(victims.begin(), victims.end(), [this](JobId a, JobId b) {
    const int pa = partition_priority(records_.at(a));
    const int pb = partition_priority(records_.at(b));
    if (pa != pb) return pa < pb;
    return records_.at(a).job.start_time > records_.at(b).job.start_time;
  });
  for (const JobId victim : victims) {
    if (try_allocate(head).has_value()) return;  // enough freed
    QCENV_LOG(Debug) << "preempting job " << victim.to_string() << " for "
                     << head.id.to_string();
    end_job(victim, JobState::kPreempted);
    // end_job triggers schedule_pass which may already start `head`.
    const auto it = records_.find(head.id);
    if (it == records_.end() || it->second.job.state != JobState::kPending) {
      return;
    }
  }
}

void SlurmScheduler::schedule_pass() {
  // Order pending by (priority desc, submit asc, id asc).
  std::vector<JobId> order(pending_.begin(), pending_.end());
  std::sort(order.begin(), order.end(), [this](JobId a, JobId b) {
    const Record& ra = records_.at(a);
    const Record& rb = records_.at(b);
    const int pa = partition_priority(ra);
    const int pb = partition_priority(rb);
    if (pa != pb) return pa > pb;
    if (ra.job.submit_time != rb.job.submit_time) {
      return ra.job.submit_time < rb.job.submit_time;
    }
    return a < b;
  });

  bool head_blocked = false;
  TimeNs reservation = 0;
  for (const JobId id : order) {
    Record& record = records_.at(id);
    if (record.job.state != JobState::kPending) continue;
    auto allocation = try_allocate(record.job);
    if (allocation.has_value()) {
      if (head_blocked) {
        // EASY backfill: only start if we finish before the reservation.
        const TimeNs finish = sim_->now() + record.job.submission.time_limit;
        if (finish > reservation) continue;
      }
      pending_.erase(std::find(pending_.begin(), pending_.end(), id));
      apply_allocation(record, std::move(allocation).value());
      start_job(id);
      continue;
    }
    if (!head_blocked) {
      // First blocked job: try preemption, then reserve.
      preempt_for(record.job);
      if (record.job.state != JobState::kPending) continue;  // started
      auto retry = try_allocate(record.job);
      if (retry.has_value()) {
        pending_.erase(std::find(pending_.begin(), pending_.end(), id));
        apply_allocation(record, std::move(retry).value());
        start_job(id);
        continue;
      }
      head_blocked = true;
      reservation = earliest_start_estimate(record.job);
    }
  }
}

void SlurmScheduler::account_until(TimeNs now) {
  const double dt = common::to_seconds(now - last_account_time_);
  if (dt <= 0) return;
  stats_.cpu_busy_seconds += dt * busy_cpus_;
  stats_.cpu_capacity_seconds += dt * total_cpus_;
  for (const auto& pool : config_.gres) {
    stats_.gres_busy_seconds[pool.name] += dt * gres_busy_[pool.name];
    stats_.gres_capacity_seconds[pool.name] += dt * pool.total;
  }
  last_account_time_ = now;
}

ClusterStats SlurmScheduler::finish_accounting() {
  account_until(sim_->now());
  return stats_;
}

std::map<std::string, double> SlurmScheduler::mean_wait_seconds_by_partition()
    const {
  std::map<std::string, double> total;
  std::map<std::string, int> count;
  for (const auto& [_, record] : records_) {
    if (record.job.state != JobState::kCompleted) continue;
    total[record.job.submission.partition] += common::to_seconds(
        record.job.start_time - record.job.submit_time);
    count[record.job.submission.partition] += 1;
  }
  std::map<std::string, double> mean;
  for (const auto& [partition, sum] : total) {
    mean[partition] = sum / count[partition];
  }
  return mean;
}

}  // namespace qcenv::slurm
