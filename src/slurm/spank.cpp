#include "slurm/spank.hpp"

namespace qcenv::slurm {

using common::Status;

Status QrmiSpankPlugin::on_submit(BatchJob& job) {
  const std::string& resource = job.submission.qpu_resource;
  if (resource.empty()) return Status::ok_status();  // purely classical job
  auto qrmi = registry_->lookup(resource);
  if (!qrmi.ok()) return qrmi.error();
  job.env["QRMI_RESOURCE_ID"] = resource;
  job.env["QRMI_RESOURCE_TYPE"] = to_string(qrmi.value()->type());
  if (daemon_port_ != 0) {
    job.env["QRMI_DAEMON_PORT"] = std::to_string(daemon_port_);
  }
  return Status::ok_status();
}

Status HintSpankPlugin::on_submit(BatchJob& job) {
  const std::string& hint = job.submission.hint;
  if (hint.empty()) return Status::ok_status();
  if (hint != "qc-dominant" && hint != "cc-dominant" && hint != "qc-balanced") {
    return common::err::invalid_argument(
        "unknown --hint value '" + hint +
        "' (expected qc-dominant, cc-dominant or qc-balanced)");
  }
  job.env["QCENV_WORKLOAD_HINT"] = hint;
  return Status::ok_status();
}

}  // namespace qcenv::slurm
