// slurmlite scheduler: priority scheduling with EASY backfill, partition
// preemption, GRES/license accounting — advanced in virtual time by a
// simkit::Simulator so cluster-scale scenarios run in milliseconds.
//
// The algorithmic model (deliberately close to Slurm's sched/backfill):
//  1. Pending jobs are ordered by (partition priority, submit time).
//  2. The head job starts if resources fit; otherwise it gets a
//     reservation at the earliest time enough resources free up.
//  3. Later jobs may backfill iff their time limit ends before the head
//     job's reservation (EASY condition) and resources fit now.
//  4. If the head job's partition has preempt_lower, running jobs from
//     lower-priority partitions are requeued until the head job fits.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.hpp"
#include "simkit/simulator.hpp"
#include "slurm/spank.hpp"
#include "slurm/types.hpp"

namespace qcenv::slurm {

struct ClusterConfig {
  std::vector<NodeSpec> nodes;
  std::vector<Partition> partitions;
  std::vector<CountedPool> gres;
  std::vector<CountedPool> licenses;
};

/// Aggregate utilization accounting (time integrals of busy resources).
struct ClusterStats {
  double cpu_busy_seconds = 0;
  double cpu_capacity_seconds = 0;
  std::map<std::string, double> gres_busy_seconds;
  std::map<std::string, double> gres_capacity_seconds;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_preempted = 0;
  std::uint64_t jobs_timed_out = 0;

  double cpu_utilization() const {
    return cpu_capacity_seconds > 0 ? cpu_busy_seconds / cpu_capacity_seconds
                                    : 0.0;
  }
  double gres_utilization(const std::string& pool) const {
    const auto busy = gres_busy_seconds.find(pool);
    const auto cap = gres_capacity_seconds.find(pool);
    if (busy == gres_busy_seconds.end() || cap == gres_capacity_seconds.end() ||
        cap->second <= 0) {
      return 0.0;
    }
    return busy->second / cap->second;
  }
};

class SlurmScheduler {
 public:
  SlurmScheduler(ClusterConfig config, simkit::Simulator* sim);

  void register_plugin(std::unique_ptr<SpankPlugin> plugin);

  /// Submits a job (runs SPANK plugins synchronously). Scheduling happens
  /// at the current simulation time.
  common::Result<JobId> submit(JobSubmission submission,
                               JobCallbacks callbacks = {});

  common::Status cancel(JobId id);

  /// Ends a running external_completion job successfully (the job's driver
  /// signals it is done).
  common::Status complete(JobId id);

  common::Result<BatchJob> query(JobId id) const;
  std::vector<BatchJob> queue_snapshot() const;  // squeue
  std::size_t pending_count() const;
  std::size_t running_count() const;

  /// Closes the books at the current sim time and returns utilization.
  ClusterStats finish_accounting();
  const ClusterStats& stats() const { return stats_; }

  /// Mean/max pending wait per partition (seconds), over completed jobs.
  std::map<std::string, double> mean_wait_seconds_by_partition() const;

 private:
  struct NodeState {
    NodeSpec spec;
    int free_cpus = 0;
  };
  struct Allocation {
    std::vector<std::pair<std::size_t, int>> node_cpus;  // node idx, cpus
    std::map<std::string, int> gres;
    std::map<std::string, int> licenses;
    std::uint64_t end_event = 0;
  };
  struct Record {
    BatchJob job;
    JobCallbacks callbacks;
    std::optional<Allocation> allocation;
  };

  const Partition* find_partition(const std::string& name) const;
  int partition_priority(const Record& record) const;

  /// Tries to allocate resources for the job right now.
  std::optional<Allocation> try_allocate(const BatchJob& job);
  void apply_allocation(Record& record, Allocation allocation);
  void release_allocation(Record& record);
  void start_job(JobId id);
  void end_job(JobId id, JobState final_state);
  void schedule_pass();
  /// Earliest virtual time at which the given job could start, assuming all
  /// running jobs hold resources until their time limits.
  TimeNs earliest_start_estimate(const BatchJob& job) const;
  void preempt_for(const BatchJob& head);
  void account_until(TimeNs now);

  ClusterConfig config_;
  simkit::Simulator* sim_;
  std::vector<std::unique_ptr<SpankPlugin>> plugins_;
  common::IdGenerator<common::JobTag> ids_;

  std::vector<NodeState> nodes_;
  std::map<std::string, int> gres_free_;
  std::map<std::string, int> license_free_;

  std::map<JobId, Record> records_;
  std::deque<JobId> pending_;

  // Accounting.
  ClusterStats stats_;
  TimeNs last_account_time_ = 0;
  int busy_cpus_ = 0;
  std::map<std::string, int> gres_busy_;
  int total_cpus_ = 0;
};

}  // namespace qcenv::slurm
