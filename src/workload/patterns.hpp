// Table-1 workload generators: the three hybrid patterns with randomized
// phase structures and Poisson arrivals.
//
//   A) High-QC / Low-CC   — dominant quantum, minor pre/post processing
//   B) Low-QC / High-CC   — sparse quantum, heavy classical
//   C) Balanced QC-CC     — comparable, alternating phases
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "daemon/queue_core.hpp"

namespace qcenv::workload {

enum class Pattern { kHighQcLowCc, kLowQcHighCc, kBalanced };

const char* to_string(Pattern pattern) noexcept;
/// Table 1's scheduler hint for the pattern.
const char* scheduler_hint(Pattern pattern) noexcept;

struct HybridPhase {
  bool quantum = false;
  double seconds = 0;
};

struct WorkloadJob {
  std::string name;
  daemon::JobClass job_class = daemon::JobClass::kProduction;
  double submit_at_seconds = 0;
  std::vector<HybridPhase> phases;
  int cpus = 8;  // classical footprint while allocated

  double total_seconds() const;
  double quantum_seconds() const;
  double classical_seconds() const;
};

struct PatternOptions {
  std::size_t count = 20;
  double arrival_window_seconds = 600;  // Poisson arrivals across this span
  daemon::JobClass job_class = daemon::JobClass::kProduction;
};

/// Draws `options.count` jobs of the given pattern.
std::vector<WorkloadJob> generate(Pattern pattern, PatternOptions options,
                                  common::Rng& rng);

/// A mixed-class stream: production/test/development in the given ratios,
/// all of the same pattern (used by the priority benches).
std::vector<WorkloadJob> generate_mixed_classes(
    Pattern pattern, std::size_t production, std::size_t test,
    std::size_t development, double arrival_window_seconds, common::Rng& rng);

}  // namespace qcenv::workload
