// Co-simulation of the full two-level scheduling stack in virtual time:
// slurmlite allocates classical nodes (and, in exclusive mode, QPU GRES),
// while the daemon's PriorityQueueCore orders quantum work onto a single
// QPU server. This engine regenerates Table 1 and the scheduling
// experiments (E1/E2/E6) in milliseconds of wall time.
//
// Access modes:
//  * kExclusiveSlurm — the one-level baseline: a hybrid job allocates the
//    whole QPU (10/10 GRES units) together with its classical nodes for its
//    entire wall time; the QPU idles during the job's classical phases.
//  * kDaemonShared — the paper's model: jobs allocate classical nodes only;
//    quantum phases are submitted to the middleware queue, which packs the
//    QPU back-to-back across all concurrent jobs.
#pragma once

#include <map>
#include <vector>

#include "common/histogram.hpp"
#include "daemon/queue_core.hpp"
#include "workload/patterns.hpp"
#include "workload/trace.hpp"

namespace qcenv::workload {

enum class QpuAccess { kExclusiveSlurm, kDaemonShared };

struct CosimOptions {
  int nodes = 8;
  int cpus_per_node = 32;
  QpuAccess access = QpuAccess::kDaemonShared;
  daemon::QueuePolicy queue_policy;
  /// Fixed per-dispatch QPU overhead (register load, compile), seconds.
  double qpu_setup_seconds = 2.0;
  /// Converts quantum phase seconds into shots and back (paper §2.2.1:
  /// ~1 Hz today, ~100 Hz roadmap).
  double shot_rate_hz = 1.0;
  /// Release classical nodes during quantum waits and reacquire afterwards
  /// (the malleability ablation, §2.4).
  bool malleable = false;
  /// Job time limit = factor * nominal duration (large: no timeouts).
  double time_limit_factor = 1000.0;
  /// Network round-trip added around each quantum phase (submit + result
  /// fetch) — models loosely coupled cloud QPUs (§2.2.1). The QPU serves
  /// other jobs during these gaps.
  double network_roundtrip_seconds = 0.0;
  /// Optional per-job phase timeline (Gantt) recorder; not owned.
  Timeline* timeline = nullptr;
};

struct ClassStats {
  std::size_t jobs = 0;
  double mean_quantum_wait_seconds = 0;
  double p95_quantum_wait_seconds = 0;
  double mean_turnaround_seconds = 0;
};

struct CosimMetrics {
  double makespan_seconds = 0;
  double qpu_busy_seconds = 0;
  double qpu_utilization = 0;       // busy / makespan
  double cpu_held_seconds = 0;      // allocation integral
  double cpu_useful_seconds = 0;    // classical phase work only
  double cpu_capacity_seconds = 0;  // cluster capacity over the makespan
  double cpu_held_utilization = 0;
  double cpu_useful_utilization = 0;
  std::size_t jobs_completed = 0;
  std::size_t qpu_dispatches = 0;
  std::map<daemon::JobClass, ClassStats> by_class;
};

/// Runs the scenario to completion and reports aggregate metrics.
CosimMetrics run_cosim(const CosimOptions& options,
                       const std::vector<WorkloadJob>& jobs);

}  // namespace qcenv::workload
