#include "workload/patterns.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace qcenv::workload {

const char* to_string(Pattern pattern) noexcept {
  switch (pattern) {
    case Pattern::kHighQcLowCc: return "A-high-qc";
    case Pattern::kLowQcHighCc: return "B-high-cc";
    case Pattern::kBalanced: return "C-balanced";
  }
  return "?";
}

const char* scheduler_hint(Pattern pattern) noexcept {
  switch (pattern) {
    case Pattern::kHighQcLowCc: return "sequential QPU queue";
    case Pattern::kLowQcHighCc: return "interleave to kill QPU idle";
    case Pattern::kBalanced: return "fine-grained orchestration";
  }
  return "?";
}

double WorkloadJob::total_seconds() const {
  double total = 0;
  for (const auto& phase : phases) total += phase.seconds;
  return total;
}

double WorkloadJob::quantum_seconds() const {
  double total = 0;
  for (const auto& phase : phases) {
    if (phase.quantum) total += phase.seconds;
  }
  return total;
}

double WorkloadJob::classical_seconds() const {
  return total_seconds() - quantum_seconds();
}

namespace {

std::vector<HybridPhase> draw_phases(Pattern pattern, common::Rng& rng) {
  std::vector<HybridPhase> phases;
  switch (pattern) {
    case Pattern::kHighQcLowCc:
      // Small prep, long quantum run, small post-processing.
      phases.push_back({false, rng.uniform(1.0, 4.0)});
      phases.push_back({true, rng.uniform(30.0, 90.0)});
      phases.push_back({false, rng.uniform(1.0, 6.0)});
      break;
    case Pattern::kLowQcHighCc:
      // Heavy classical with one sparse quantum call in the middle
      // (SQD-style: sample once, post-process at scale).
      phases.push_back({false, rng.uniform(20.0, 60.0)});
      phases.push_back({true, rng.uniform(3.0, 10.0)});
      phases.push_back({false, rng.uniform(90.0, 240.0)});
      break;
    case Pattern::kBalanced: {
      // Variational loop: alternating comparable phases.
      const int rounds = static_cast<int>(rng.uniform_int(3, 6));
      for (int r = 0; r < rounds; ++r) {
        phases.push_back({false, rng.uniform(8.0, 20.0)});
        phases.push_back({true, rng.uniform(8.0, 20.0)});
      }
      phases.push_back({false, rng.uniform(4.0, 10.0)});
      break;
    }
  }
  return phases;
}

int draw_cpus(Pattern pattern, common::Rng& rng) {
  switch (pattern) {
    case Pattern::kHighQcLowCc: return static_cast<int>(rng.uniform_int(2, 8));
    case Pattern::kLowQcHighCc:
      return static_cast<int>(rng.uniform_int(16, 32));
    case Pattern::kBalanced: return static_cast<int>(rng.uniform_int(8, 16));
  }
  return 8;
}

}  // namespace

std::vector<WorkloadJob> generate(Pattern pattern, PatternOptions options,
                                  common::Rng& rng) {
  std::vector<WorkloadJob> jobs;
  jobs.reserve(options.count);
  // Poisson arrivals: exponential gaps with mean window/count.
  const double mean_gap =
      options.count > 0
          ? options.arrival_window_seconds / static_cast<double>(options.count)
          : 0.0;
  double at = 0;
  for (std::size_t i = 0; i < options.count; ++i) {
    WorkloadJob job;
    job.name = common::format("%s-%03zu", to_string(pattern), i);
    job.job_class = options.job_class;
    job.submit_at_seconds = at;
    job.phases = draw_phases(pattern, rng);
    job.cpus = draw_cpus(pattern, rng);
    jobs.push_back(std::move(job));
    at += rng.exponential_mean(mean_gap);
  }
  return jobs;
}

std::vector<WorkloadJob> generate_mixed_classes(
    Pattern pattern, std::size_t production, std::size_t test,
    std::size_t development, double arrival_window_seconds,
    common::Rng& rng) {
  std::vector<WorkloadJob> jobs;
  const auto add = [&](daemon::JobClass cls, std::size_t count) {
    PatternOptions options;
    options.count = count;
    options.arrival_window_seconds = arrival_window_seconds;
    options.job_class = cls;
    auto batch = generate(pattern, options, rng);
    jobs.insert(jobs.end(), batch.begin(), batch.end());
  };
  add(daemon::JobClass::kProduction, production);
  add(daemon::JobClass::kTest, test);
  add(daemon::JobClass::kDevelopment, development);
  std::sort(jobs.begin(), jobs.end(),
            [](const WorkloadJob& a, const WorkloadJob& b) {
              return a.submit_at_seconds < b.submit_at_seconds;
            });
  return jobs;
}

}  // namespace qcenv::workload
