// Classical optimizers for hybrid variational loops: Nelder-Mead simplex
// (derivative-free, low-dimension), SPSA (noise-tolerant stochastic
// approximation) and grid search (baselines/tests). They drive the
// runtime::HybridExecutor through its ParameterStrategy interface.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "runtime/executor.hpp"

namespace qcenv::workload {

/// Nelder-Mead over `dim` parameters. Stateful strategy: construct once per
/// optimization run and pass .strategy() to HybridExecutor::optimize.
class NelderMead {
 public:
  struct Options {
    double initial_step = 0.5;
    double tolerance = 1e-4;     // simplex spread stopping criterion
    std::size_t max_evaluations = 200;
  };

  explicit NelderMead(std::size_t dim) : NelderMead(dim, Options{}) {}
  NelderMead(std::size_t dim, Options options);

  /// Strategy closure for HybridExecutor (captures this; keep alive).
  runtime::ParameterStrategy strategy();

 private:
  std::vector<double> propose(
      const std::vector<std::vector<double>>& params,
      const std::vector<double>& costs);

  std::size_t dim_;
  Options options_;
  // Simplex bookkeeping: indices into the evaluation history.
  std::vector<std::size_t> simplex_;
  enum class Stage { kBuildSimplex, kReflect, kExpand, kContract, kShrink };
  Stage stage_ = Stage::kBuildSimplex;
  std::vector<double> centroid_;
  std::vector<double> reflected_;
  std::size_t pending_shrink_ = 0;
};

/// SPSA: simultaneous perturbation stochastic approximation; two
/// evaluations per step regardless of dimension, robust to shot noise.
class Spsa {
 public:
  struct Options {
    double a = 0.4;        // step size numerator
    double c = 0.2;        // perturbation size
    double alpha = 0.602;  // step decay exponent
    double gamma = 0.101;  // perturbation decay exponent
    std::size_t max_iterations = 60;
  };

  Spsa(std::size_t dim, std::uint64_t seed) : Spsa(dim, seed, Options{}) {}
  Spsa(std::size_t dim, std::uint64_t seed, Options options);

  runtime::ParameterStrategy strategy();

 private:
  std::vector<double> propose(
      const std::vector<std::vector<double>>& params,
      const std::vector<double>& costs);

  std::size_t dim_;
  Options options_;
  common::Rng rng_;
  std::vector<double> theta_;
  std::vector<double> delta_;
  std::size_t iteration_ = 0;
  bool have_theta_ = false;
  std::size_t pending_ = 0;
  enum class Phase { kPlus, kMinus } phase_ = Phase::kPlus;
};

/// Exhaustive grid over [lo, hi]^dim with `points_per_dim` samples.
runtime::ParameterStrategy grid_search(std::size_t dim, double lo, double hi,
                                       std::size_t points_per_dim);

}  // namespace qcenv::workload
