// Execution timelines: per-job phase intervals recorded by the co-sim and
// rendered as ASCII Gantt charts — the at-a-glance view of where the QPU
// idles and where classical nodes wait (debugging aid for scheduling
// policies, and the visual companion to the E1/T1 tables).
#pragma once

#include <string>
#include <vector>

namespace qcenv::workload {

enum class PhaseKind : char {
  kClassical = 'C',  // running classical work on allocated nodes
  kQuantumWait = 'w',  // queued for the QPU
  kQuantumRun = 'Q',   // being served by the QPU
  kPending = '.',      // waiting for a Slurm allocation
};

struct TraceInterval {
  std::string job;
  PhaseKind kind = PhaseKind::kClassical;
  double start_seconds = 0;
  double end_seconds = 0;
};

class Timeline {
 public:
  void record(const std::string& job, PhaseKind kind, double start_seconds,
              double end_seconds);

  const std::vector<TraceInterval>& intervals() const noexcept {
    return intervals_;
  }
  std::size_t size() const noexcept { return intervals_.size(); }
  void clear() { intervals_.clear(); }

  /// Renders one row per job, `width` columns across [0, max_end]:
  ///   jobname  CCCCwwwQQQCCC....CCC
  /// Later intervals overwrite earlier ones in a cell; idle cells are ' '.
  std::string render_gantt(std::size_t width = 80) const;

  /// Fraction of recorded time spent per kind (aggregate over jobs).
  double total_seconds(PhaseKind kind) const;

 private:
  std::vector<TraceInterval> intervals_;
};

}  // namespace qcenv::workload
