#include "workload/cosim.hpp"

#include <algorithm>
#include <cassert>

#include "simkit/simulator.hpp"
#include "slurm/scheduler.hpp"

namespace qcenv::workload {

using common::DurationNs;
using common::TimeNs;
using daemon::Batch;
using daemon::JobClass;
using daemon::PriorityQueueCore;

namespace {

const char* partition_for(JobClass cls) {
  switch (cls) {
    case JobClass::kProduction: return "production";
    case JobClass::kTest: return "test";
    case JobClass::kDevelopment: return "dev";
  }
  return "dev";
}

class Engine {
 public:
  Engine(const CosimOptions& options, const std::vector<WorkloadJob>& jobs)
      : options_(options),
        specs_(jobs),
        qpu_queue_(options.queue_policy),
        slurm_(make_cluster(options), &sim_) {}

  CosimMetrics run() {
    contexts_.resize(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      contexts_[i].index = i;
      sim_.schedule_at(
          common::from_seconds(specs_[i].submit_at_seconds),
          [this, i] { submit_slurm(i, /*from_phase=*/0); });
    }
    sim_.run();
    return finalize();
  }

 private:
  struct JobCtx {
    std::size_t index = 0;
    std::size_t phase = 0;           // next phase to execute
    common::JobId slurm_id;          // active allocation (if any)
    bool holds_allocation = false;
    TimeNs submit_time = 0;
    TimeNs done_time = 0;
    TimeNs quantum_enqueue_time = -1;
    double quantum_wait_seconds = 0;
    bool finished = false;
  };

  static slurm::ClusterConfig make_cluster(const CosimOptions& options) {
    slurm::ClusterConfig config;
    for (int n = 0; n < options.nodes; ++n) {
      config.nodes.push_back(
          slurm::NodeSpec{"node" + std::to_string(n), options.cpus_per_node, 0});
    }
    config.partitions = {
        {"production", 300, false, 30LL * 24 * 3600 * common::kSecond},
        {"test", 200, false, 30LL * 24 * 3600 * common::kSecond},
        {"dev", 100, false, 30LL * 24 * 3600 * common::kSecond},
    };
    config.gres = {{"qpu", 10}};  // ten 10%-timeshare units (paper §3.5)
    return config;
  }

  void submit_slurm(std::size_t index, std::size_t from_phase) {
    const WorkloadJob& spec = specs_[index];
    JobCtx& ctx = contexts_[index];
    ctx.phase = from_phase;
    if (from_phase == 0) ctx.submit_time = sim_.now();

    slurm::JobSubmission submission;
    submission.name = spec.name;
    submission.user = "cosim";
    submission.partition = partition_for(spec.job_class);
    submission.nodes = 1;
    submission.cpus_per_node = spec.cpus;
    submission.external_completion = true;
    submission.time_limit = common::from_seconds(
        std::max(1.0, spec.total_seconds() * options_.time_limit_factor));
    if (options_.access == QpuAccess::kExclusiveSlurm) {
      submission.gres["qpu"] = 10;  // whole device for the whole job
    }
    const common::TimeNs pending_from = sim_.now();
    slurm::JobCallbacks callbacks;
    callbacks.on_start = [this, index, from_phase,
                          pending_from](const slurm::BatchJob& job) {
      JobCtx& started = contexts_[index];
      started.slurm_id = job.id;
      started.holds_allocation = true;
      trace(index, PhaseKind::kPending, pending_from, sim_.now());
      if (options_.access == QpuAccess::kExclusiveSlurm && from_phase == 0) {
        // Exclusive mode: waiting for the QPU happens in the Slurm pending
        // queue (the allocation includes the device), so that wait is the
        // comparable "quantum wait".
        started.quantum_wait_seconds +=
            common::to_seconds(sim_.now() - started.submit_time);
      }
      run_phase(index);
    };
    auto id = slurm_.submit(std::move(submission), std::move(callbacks));
    assert(id.ok() && "cosim slurm submission must be valid");
    (void)id;
  }

  void run_phase(std::size_t index) {
    JobCtx& ctx = contexts_[index];
    const WorkloadJob& spec = specs_[index];
    if (ctx.phase >= spec.phases.size()) {
      finish_job(index);
      return;
    }
    const HybridPhase& phase = spec.phases[ctx.phase];
    if (!phase.quantum) {
      cpu_useful_seconds_ += phase.seconds * spec.cpus;
      trace(index, PhaseKind::kClassical, sim_.now(),
            sim_.now() + common::from_seconds(phase.seconds));
      sim_.schedule_after(common::from_seconds(phase.seconds),
                          [this, index] {
                            ++contexts_[index].phase;
                            run_phase(index);
                          });
      return;
    }
    // Quantum phase.
    if (options_.access == QpuAccess::kExclusiveSlurm) {
      // The job owns the device: service starts immediately.
      const double service = options_.qpu_setup_seconds + phase.seconds;
      qpu_busy_seconds_ += service;
      ++qpu_dispatches_;
      trace(index, PhaseKind::kQuantumRun, sim_.now(),
            sim_.now() + common::from_seconds(service));
      sim_.schedule_after(common::from_seconds(service), [this, index] {
        ++contexts_[index].phase;
        run_phase(index);
      });
      return;
    }
    // Shared mode: route through the middleware queue.
    if (options_.malleable && ctx.holds_allocation) {
      // Shrink: release classical nodes while queued on the QPU.
      ctx.holds_allocation = false;
      (void)slurm_.complete(ctx.slurm_id);
    }
    const auto shots = static_cast<std::uint64_t>(std::max(
        1.0, phase.seconds * options_.shot_rate_hz + 0.5));
    // Loose coupling: the submission travels over the WAN first.
    const auto submit_delay =
        common::from_seconds(options_.network_roundtrip_seconds / 2.0);
    sim_.schedule_after(submit_delay, [this, index, shots] {
      JobCtx& queued = contexts_[index];
      queued.quantum_enqueue_time = sim_.now();
      qpu_queue_.enqueue(job_key(index), specs_[index].job_class, shots,
                         sim_.now());
      dispatch_qpu();
    });
  }

  void trace(std::size_t index, PhaseKind kind, common::TimeNs from,
             common::TimeNs to) {
    if (options_.timeline != nullptr) {
      options_.timeline->record(specs_[index].name, kind,
                                common::to_seconds(from),
                                common::to_seconds(to));
    }
  }

  static std::uint64_t job_key(std::size_t index) { return index + 1; }
  static std::size_t key_job(std::uint64_t key) { return key - 1; }

  void dispatch_qpu() {
    if (qpu_busy_) return;
    auto batch = qpu_queue_.next_batch(sim_.now());
    if (!batch.has_value()) return;
    qpu_busy_ = true;
    ++qpu_dispatches_;
    const std::size_t index = key_job(batch->job_id);
    JobCtx& ctx = contexts_[index];
    if (ctx.quantum_enqueue_time >= 0) {
      ctx.quantum_wait_seconds +=
          common::to_seconds(sim_.now() - ctx.quantum_enqueue_time);
      trace(index, PhaseKind::kQuantumWait, ctx.quantum_enqueue_time,
            sim_.now());
      ctx.quantum_enqueue_time = -1;
    }
    const double service =
        options_.qpu_setup_seconds +
        static_cast<double>(batch->shots) / options_.shot_rate_hz;
    qpu_busy_seconds_ += service;
    trace(index, PhaseKind::kQuantumRun, sim_.now(),
          sim_.now() + common::from_seconds(service));
    const Batch dispatched = *batch;
    sim_.schedule_after(common::from_seconds(service),
                        [this, dispatched] { qpu_batch_done(dispatched); });
  }

  void qpu_batch_done(const Batch& batch) {
    qpu_busy_ = false;
    qpu_queue_.batch_done(batch);
    if (batch.final_batch) {
      const std::size_t index = key_job(batch.job_id);
      // Results travel back over the WAN; the QPU is already free.
      const auto result_delay =
          common::from_seconds(options_.network_roundtrip_seconds / 2.0);
      sim_.schedule_after(result_delay, [this, index] {
        JobCtx& ctx = contexts_[index];
        ++ctx.phase;
        if (options_.malleable && !ctx.holds_allocation) {
          // Grow again: reacquire classical nodes for the remaining phases
          // (or finish if the quantum phase was last).
          if (ctx.phase >= specs_[index].phases.size()) {
            finish_job(index);
          } else {
            submit_slurm(index, ctx.phase);
          }
        } else {
          run_phase(index);
        }
      });
    }
    dispatch_qpu();
  }

  void finish_job(std::size_t index) {
    JobCtx& ctx = contexts_[index];
    if (ctx.finished) return;
    ctx.finished = true;
    ctx.done_time = sim_.now();
    if (ctx.holds_allocation) {
      ctx.holds_allocation = false;
      (void)slurm_.complete(ctx.slurm_id);
    }
    ++completed_;
  }

  CosimMetrics finalize() {
    CosimMetrics metrics;
    const double makespan = common::to_seconds(sim_.now());
    metrics.makespan_seconds = makespan;
    metrics.qpu_busy_seconds = qpu_busy_seconds_;
    metrics.qpu_utilization = makespan > 0 ? qpu_busy_seconds_ / makespan : 0;
    const auto stats = slurm_.finish_accounting();
    metrics.cpu_held_seconds = stats.cpu_busy_seconds;
    metrics.cpu_capacity_seconds = stats.cpu_capacity_seconds;
    metrics.cpu_useful_seconds = cpu_useful_seconds_;
    metrics.cpu_held_utilization = stats.cpu_utilization();
    metrics.cpu_useful_utilization =
        stats.cpu_capacity_seconds > 0
            ? cpu_useful_seconds_ / stats.cpu_capacity_seconds
            : 0;
    metrics.jobs_completed = completed_;
    metrics.qpu_dispatches = qpu_dispatches_;

    std::map<JobClass, common::QuantileRecorder> waits;
    std::map<JobClass, common::QuantileRecorder> turnarounds;
    for (const JobCtx& ctx : contexts_) {
      if (!ctx.finished) continue;
      const JobClass cls = specs_[ctx.index].job_class;
      waits[cls].record(ctx.quantum_wait_seconds);
      turnarounds[cls].record(
          common::to_seconds(ctx.done_time - ctx.submit_time));
    }
    for (auto& [cls, recorder] : waits) {
      ClassStats& cs = metrics.by_class[cls];
      cs.jobs = recorder.count();
      cs.mean_quantum_wait_seconds = recorder.mean();
      cs.p95_quantum_wait_seconds = recorder.quantile(0.95);
      cs.mean_turnaround_seconds = turnarounds[cls].mean();
    }
    return metrics;
  }

  CosimOptions options_;
  std::vector<WorkloadJob> specs_;
  simkit::Simulator sim_;
  PriorityQueueCore qpu_queue_;
  slurm::SlurmScheduler slurm_;
  std::vector<JobCtx> contexts_;
  bool qpu_busy_ = false;
  double qpu_busy_seconds_ = 0;
  double cpu_useful_seconds_ = 0;
  std::size_t completed_ = 0;
  std::size_t qpu_dispatches_ = 0;
};

}  // namespace

CosimMetrics run_cosim(const CosimOptions& options,
                       const std::vector<WorkloadJob>& jobs) {
  Engine engine(options, jobs);
  return engine.run();
}

}  // namespace qcenv::workload
