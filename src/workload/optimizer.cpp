#include "workload/optimizer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qcenv::workload {

NelderMead::NelderMead(std::size_t dim, Options options)
    : dim_(dim), options_(options) {}

runtime::ParameterStrategy NelderMead::strategy() {
  return [this](const std::vector<std::vector<double>>& params,
                const std::vector<double>& costs) {
    return propose(params, costs);
  };
}

std::vector<double> NelderMead::propose(
    const std::vector<std::vector<double>>& params,
    const std::vector<double>& costs) {
  assert(params.size() == costs.size() && !params.empty());
  if (params.size() >= options_.max_evaluations) return {};
  const std::size_t last = params.size() - 1;

  // Phase 1: build the initial simplex from the starting point.
  if (stage_ == Stage::kBuildSimplex) {
    simplex_.push_back(last);
    if (simplex_.size() < dim_ + 1) {
      std::vector<double> vertex = params[simplex_.front()];
      vertex[simplex_.size() - 1] += options_.initial_step;
      return vertex;
    }
    stage_ = Stage::kReflect;
    // Fall through to reflection.
  } else if (stage_ == Stage::kReflect) {
    // `last` is the reflected point's evaluation.
    auto by_cost = [&](std::size_t a, std::size_t b) {
      return costs[a] < costs[b];
    };
    std::sort(simplex_.begin(), simplex_.end(), by_cost);
    const std::size_t worst = simplex_.back();
    const std::size_t second_worst = simplex_[simplex_.size() - 2];
    const double fr = costs[last];
    if (fr < costs[simplex_.front()]) {
      // Try expansion.
      stage_ = Stage::kExpand;
      reflected_ = params[last];
      std::vector<double> expanded(dim_);
      for (std::size_t i = 0; i < dim_; ++i) {
        expanded[i] = centroid_[i] + 2.0 * (params[last][i] - centroid_[i]);
      }
      pending_shrink_ = last;  // remember reflected eval index
      return expanded;
    }
    if (fr < costs[second_worst]) {
      simplex_.back() = last;  // accept reflection
    } else {
      // Contract toward the better of (worst, reflected).
      stage_ = Stage::kContract;
      const bool outside = fr < costs[worst];
      const std::size_t anchor = outside ? last : worst;
      std::vector<double> contracted(dim_);
      for (std::size_t i = 0; i < dim_; ++i) {
        contracted[i] =
            centroid_[i] + 0.5 * (params[anchor][i] - centroid_[i]);
      }
      pending_shrink_ = last;
      return contracted;
    }
  } else if (stage_ == Stage::kExpand) {
    // `last` = expansion eval; pending_shrink_ = reflection eval.
    std::sort(simplex_.begin(), simplex_.end(),
              [&](std::size_t a, std::size_t b) { return costs[a] < costs[b]; });
    simplex_.back() =
        costs[last] < costs[pending_shrink_] ? last : pending_shrink_;
    stage_ = Stage::kReflect;
  } else if (stage_ == Stage::kContract) {
    std::sort(simplex_.begin(), simplex_.end(),
              [&](std::size_t a, std::size_t b) { return costs[a] < costs[b]; });
    if (costs[last] < costs[simplex_.back()]) {
      simplex_.back() = last;
      stage_ = Stage::kReflect;
    } else {
      // Shrink all non-best vertices toward the best.
      stage_ = Stage::kShrink;
      pending_shrink_ = 1;  // next simplex slot to replace
      const auto& best = params[simplex_.front()];
      std::vector<double> shrunk(dim_);
      for (std::size_t i = 0; i < dim_; ++i) {
        shrunk[i] = best[i] + 0.5 * (params[simplex_[1]][i] - best[i]);
      }
      return shrunk;
    }
  } else if (stage_ == Stage::kShrink) {
    simplex_[pending_shrink_] = last;
    ++pending_shrink_;
    if (pending_shrink_ < simplex_.size()) {
      const auto& best = params[simplex_.front()];
      std::vector<double> shrunk(dim_);
      for (std::size_t i = 0; i < dim_; ++i) {
        shrunk[i] =
            best[i] + 0.5 * (params[simplex_[pending_shrink_]][i] - best[i]);
      }
      return shrunk;
    }
    stage_ = Stage::kReflect;
  }

  // Reflection step (entered from several stages above).
  std::sort(simplex_.begin(), simplex_.end(),
            [&](std::size_t a, std::size_t b) { return costs[a] < costs[b]; });
  // Convergence: cost spread across the simplex.
  const double spread =
      std::abs(costs[simplex_.back()] - costs[simplex_.front()]);
  if (spread < options_.tolerance) return {};

  centroid_.assign(dim_, 0.0);
  for (std::size_t v = 0; v + 1 < simplex_.size(); ++v) {
    for (std::size_t i = 0; i < dim_; ++i) {
      centroid_[i] += params[simplex_[v]][i];
    }
  }
  for (double& c : centroid_) c /= static_cast<double>(dim_);
  std::vector<double> reflected(dim_);
  const auto& worst = params[simplex_.back()];
  for (std::size_t i = 0; i < dim_; ++i) {
    reflected[i] = centroid_[i] + (centroid_[i] - worst[i]);
  }
  stage_ = Stage::kReflect;
  return reflected;
}

Spsa::Spsa(std::size_t dim, std::uint64_t seed, Options options)
    : dim_(dim), options_(options), rng_(seed) {}

runtime::ParameterStrategy Spsa::strategy() {
  return [this](const std::vector<std::vector<double>>& params,
                const std::vector<double>& costs) {
    return propose(params, costs);
  };
}

std::vector<double> Spsa::propose(
    const std::vector<std::vector<double>>& params,
    const std::vector<double>& costs) {
  if (!have_theta_) {
    theta_ = params.front();
    have_theta_ = true;
  }
  if (iteration_ >= options_.max_iterations) return {};
  const double ck =
      options_.c / std::pow(static_cast<double>(iteration_ + 1),
                            options_.gamma);
  if (phase_ == Phase::kPlus) {
    delta_.resize(dim_);
    for (double& d : delta_) d = rng_.bernoulli(0.5) ? 1.0 : -1.0;
    std::vector<double> plus(dim_);
    for (std::size_t i = 0; i < dim_; ++i) plus[i] = theta_[i] + ck * delta_[i];
    phase_ = Phase::kMinus;
    return plus;
  }
  // Minus phase, first call: the plus point was just evaluated; propose the
  // minus point. Second call: both gradients samples are in, update theta.
  if (pending_ == 0) {
    pending_ = 1;
    std::vector<double> minus(dim_);
    for (std::size_t i = 0; i < dim_; ++i) {
      minus[i] = theta_[i] - ck * delta_[i];
    }
    return minus;
  }
  pending_ = 0;
  const std::size_t n = costs.size();
  const double f_plus = costs[n - 2];
  const double f_minus = costs[n - 1];
  const double ak =
      options_.a / std::pow(static_cast<double>(iteration_ + 1) + 10.0,
                            options_.alpha);
  for (std::size_t i = 0; i < dim_; ++i) {
    const double gradient = (f_plus - f_minus) / (2.0 * ck * delta_[i]);
    theta_[i] -= ak * gradient;
  }
  ++iteration_;
  phase_ = Phase::kPlus;
  if (iteration_ >= options_.max_iterations) {
    // Final evaluation at theta so the best point enters the history.
    return theta_;
  }
  return propose(params, costs);  // immediately draw the next plus point
}

runtime::ParameterStrategy grid_search(std::size_t dim, double lo, double hi,
                                       std::size_t points_per_dim) {
  auto counter = std::make_shared<std::size_t>(0);
  return [dim, lo, hi, points_per_dim, counter](
             const std::vector<std::vector<double>>&,
             const std::vector<double>&) -> std::vector<double> {
    std::size_t total = 1;
    for (std::size_t i = 0; i < dim; ++i) total *= points_per_dim;
    const std::size_t index = (*counter)++;
    if (index + 1 >= total) return {};
    // Decode index+1 (index 0 was the executor's initial point).
    std::size_t code = index + 1;
    std::vector<double> point(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      const std::size_t step = code % points_per_dim;
      code /= points_per_dim;
      point[i] = points_per_dim > 1
                     ? lo + (hi - lo) * static_cast<double>(step) /
                               static_cast<double>(points_per_dim - 1)
                     : lo;
    }
    return point;
  };
}

}  // namespace qcenv::workload
