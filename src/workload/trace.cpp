#include "workload/trace.hpp"

#include <algorithm>
#include <map>

#include "common/strings.hpp"

namespace qcenv::workload {

void Timeline::record(const std::string& job, PhaseKind kind,
                      double start_seconds, double end_seconds) {
  if (end_seconds < start_seconds) std::swap(start_seconds, end_seconds);
  intervals_.push_back(TraceInterval{job, kind, start_seconds, end_seconds});
}

double Timeline::total_seconds(PhaseKind kind) const {
  double total = 0;
  for (const auto& interval : intervals_) {
    if (interval.kind == kind) {
      total += interval.end_seconds - interval.start_seconds;
    }
  }
  return total;
}

std::string Timeline::render_gantt(std::size_t width) const {
  if (intervals_.empty() || width == 0) return "(empty timeline)\n";
  double horizon = 0;
  std::size_t name_width = 4;
  // Preserve first-seen job order for stable output.
  std::vector<std::string> order;
  std::map<std::string, std::string> rows;
  for (const auto& interval : intervals_) {
    horizon = std::max(horizon, interval.end_seconds);
    if (rows.try_emplace(interval.job, std::string(width, ' ')).second) {
      order.push_back(interval.job);
    }
    name_width = std::max(name_width, interval.job.size());
  }
  if (horizon <= 0) horizon = 1;
  for (const auto& interval : intervals_) {
    auto lo = static_cast<std::size_t>(interval.start_seconds / horizon *
                                       static_cast<double>(width));
    auto hi = static_cast<std::size_t>(interval.end_seconds / horizon *
                                       static_cast<double>(width));
    lo = std::min(lo, width - 1);
    hi = std::min(std::max(hi, lo + 1), width);
    std::string& row = rows[interval.job];
    for (std::size_t c = lo; c < hi; ++c) {
      row[c] = static_cast<char>(interval.kind);
    }
  }
  std::string out = common::format(
      "time: 0 .. %.0f s   legend: .=pending C=classical w=qpu-wait "
      "Q=qpu-run\n",
      horizon);
  for (const auto& job : order) {
    out += common::format("%-*s |%s|\n", static_cast<int>(name_width),
                          job.c_str(), rows[job].c_str());
  }
  return out;
}

}  // namespace qcenv::workload
