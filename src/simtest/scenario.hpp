// Deterministic full-stack simulation scenario: the real MiddlewareDaemon
// (sessions, admission, accounting, broker, dispatcher, durable store) is
// driven through its programmatic surface under a ManualClock, while a
// seeded FaultPlan injects QPU flaps, drains, kill-and-restarts, journal
// disk deaths, torn tails, compactions, cancels, session churn and tenant
// submit storms at scheduled virtual times. All time-dependent behaviour —
// probe backoff, rate-limiter refill, ledger decay, execution latency,
// QRMI poll pacing — runs in virtual time (dispatch threads nudge the
// clock through Clock::sleep_for instead of sleeping for real), so a
// scenario spanning a virtual minute completes in milliseconds of wall
// time. After the plan plays out the scenario quiesces and the global
// invariants (invariants.hpp) are checked: zero lost or double-executed
// shots, exactly one terminal state per job, no cancel resurrections, a
// balanced ledger, drained reservations, an empty queue and bounded
// records under GC.
//
// Determinism note, honestly: the fault schedule, workload and every
// scheduling *decision* (ordering, backoff, decay, limits) are exact
// functions of the seed and virtual time. Thread interleaving of the
// dispatch lanes is the host's — replaying a seed replays the same
// schedule against the same code, not the same instruction interleaving.
// The invariants are therefore written to hold under EVERY interleaving.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "simtest/fault_plan.hpp"
#include "simtest/invariants.hpp"

namespace qcenv::simtest {

struct ScenarioOptions {
  std::uint64_t seed = 1;
  std::size_t fleet_size = 2;
  std::size_t users = 3;
  std::size_t jobs = 20;
  std::uint64_t min_shots = 20;
  std::uint64_t max_shots = 120;
  /// Non-production dispatch slice (small batches catch more interleavings
  /// per job: every batch boundary is a crash/cancel/failover point).
  std::uint64_t batch_shots = 16;
  /// Durable store under the daemon (journal sync kAlways so every ack is
  /// a real durability promise the invariants can hold the stack to).
  /// Restarts, disk faults and compactions require this.
  bool durable = true;
  /// Exercise the terminal-job GC (records_ bound instead of exact ledger
  /// balancing — eviction outlives the records the balance would need).
  bool gc = false;
  /// Virtual execution latency jitter on every batch.
  bool latency = false;
  /// Per-user submit token buckets tight enough that storms draw 429s.
  bool rate_limits = true;
  /// Virtual span submissions are spread across (faults share it).
  common::DurationNs horizon = 30 * common::kSecond;
  /// Dispatcher submit shards (0 = the production default of 8). The
  /// sweep varies this per seed (1/2/4/8) so the invariants are checked
  /// against every shard topology, including the unsharded one.
  std::size_t submit_shards = 0;
  /// The FIRST daemon life writes a v1 (JSON-lines) journal; every
  /// restart reopens it with the v2 default, exercising the live
  /// migration path: v1 replay, v1 torn tails, appends into a v1 file
  /// from a v2-configured daemon, and kCompact's transparent rewrite to
  /// v2 (kCompactCrash can kill that rewrite mid-migration).
  bool journal_v1_start = false;
  FaultPlanOptions faults;
  /// Deliberate bug plant: the emulator silently drops a slice of every
  /// result. Exists solely to prove the sweep catches invariant
  /// violations with a replayable seed.
  bool plant_shot_loss = false;
  /// Collect the final daemon life's structured-event log and every
  /// job's trace into ScenarioResult::trace_dump (JSON) — the sweep's
  /// `--trace` flag, for debugging a failing seed stage by stage.
  bool trace_dump = false;
  /// Live metrics pipeline under test: the harness drives the scrape loop
  /// on its own deterministic grid (tick_at, never the clock-driven
  /// thread) so the alert timeline is a pure function of the seed.
  bool observability = true;
  /// Scrape grid interval; 0 derives ~horizon/128 (min 1 ms).
  common::DurationNs scrape_interval = 0;
  /// Hot-standby replication under test: a StandbyDaemon mirrors the
  /// leader's journal over a FileReplicationSource (polled on the scrape
  /// grid, virtual time only). Enables kPeerPartition / kTornSegment /
  /// kLeaderKill fault ops, an end-of-run mirror-equivalence check, and —
  /// on kLeaderKill — fenced promotion whose recovered sessions, ledger
  /// and fair-share inputs must match what a restart of the dead leader
  /// would have recovered. Requires `durable`.
  bool federation = false;
};

struct ScenarioStats {
  std::size_t submitted = 0;
  std::size_t rejected = 0;   // admission/rate-limit/disk rejections
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t restarts = 0;
  std::size_t flaps = 0;
  std::size_t storms = 0;
  std::size_t disk_faults = 0;
  std::size_t compactions = 0;
  std::size_t compact_crashes = 0;
  std::size_t calib_drifts = 0;
  std::size_t scrape_stalls = 0;
  std::size_t alerts_fired = 0;
  std::size_t peer_partitions = 0;
  std::size_t torn_segments = 0;
  std::size_t leader_kills = 0;
  std::size_t promotions = 0;
  common::TimeNs virtual_end = 0;
};

struct ScenarioResult {
  std::uint64_t seed = 0;
  /// The expanded fault schedule — printed verbatim on failure so the
  /// seed is replayable AND readable without re-running.
  std::string plan;
  ScenarioStats stats;
  std::vector<std::string> violations;
  /// JSON {events, traces} when ScenarioOptions::trace_dump was set.
  std::string trace_dump;
  /// The flight recorder's forensics JSON, when any daemon life dumped one
  /// (a journal fail-stop mid-scenario). The sweep ships it with the
  /// failure artifact; `simtest_sweep --dump-check` validates its shape.
  std::string flight_dump;
  /// Every alert record across all daemon lives, in fired order — the
  /// sweep's double-run determinism check compares these between replays.
  std::vector<telemetry::AlertRecord> alerts;
  /// Deterministic post-scenario eta/explain probe responses (one string
  /// per probe job, verbatim JSON). Produced by a fresh, drained,
  /// non-durable daemon at a pinned virtual time whose inputs are pure
  /// functions of the seed — the sweep's double-run check compares these
  /// byte for byte between replays.
  std::vector<std::string> eta_probe;
  bool ok() const { return violations.empty(); }
};

/// Runs one scenario to quiescence and checks every invariant.
ScenarioResult run_scenario(const ScenarioOptions& options);

/// Expands one sweep seed into a full scenario configuration (fleet size,
/// tenant count, workload shape, fault mix — everything derives from the
/// seed). `quick` caps the workload for CI; the nightly sweep runs bigger.
ScenarioOptions scenario_for_seed(std::uint64_t seed, bool quick);

}  // namespace qcenv::simtest
