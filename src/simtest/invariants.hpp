// Global invariants every fault schedule must preserve, checked after the
// scenario quiesces. Kept as a pure function over collected state so the
// checkers are unit-testable on synthetic inputs (including deliberately
// corrupted ones — the sweep is only trustworthy if planted violations are
// provably caught).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "daemon/dispatcher.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/trace.hpp"

namespace qcenv::simtest {

/// What the harness knows about one admitted job, accumulated as the
/// scenario runs.
struct TrackedJob {
  std::uint64_t id = 0;
  std::string user;
  std::uint64_t shots = 0;
  /// A cancel was acknowledged while the journal was healthy: the job must
  /// end kCancelled and stay kCancelled across every later restart.
  bool must_cancel = false;
  /// Terminal state observed while the journal was healthy (hence durable):
  /// later lives must report exactly this state again.
  std::optional<daemon::DaemonJobState> durable_terminal;
};

/// Scenario end-state handed to the checkers.
struct InvariantInput {
  std::vector<TrackedJob> tracked;
  /// Final job table (dispatcher jobs_snapshot, keyed by id).
  std::map<std::uint64_t, daemon::DaemonJob> jobs;
  /// Completed job id -> total shots in its fetched samples.
  std::map<std::uint64_t, std::uint64_t> result_shots;
  /// Per-user raw (undecayed) ledger shot totals.
  std::map<std::string, std::uint64_t> ledger_raw_shots;
  /// Per-user rate-limiter in-flight shot reservations.
  std::map<std::string, std::uint64_t> inflight_shots;
  std::size_t queue_depth = 0;
  /// Terminal-job GC: when enabled, evicted jobs may legitimately be
  /// missing from `jobs` and exact ledger balancing is waived (the ledger
  /// outlives evicted records by design).
  bool gc_enabled = false;
  std::size_t records_count = 0;
  std::size_t records_cap = 0;  // 0 = unbounded (no cap check)
  bool check_ledger_balance = true;
  /// Tracing was on: every terminal job must carry a finished, well-nested
  /// span tree whose top-level stages exactly partition [start, finish]
  /// (see telemetry::trace_nesting_error). Jobs restored after a kill
  /// re-begin their timeline with an explicit `lost` stage, so the
  /// invariant holds across crash/restart replays too.
  bool check_traces = false;
  /// Job id -> its trace, as found at gather time (evicted traces absent).
  std::map<std::uint64_t, telemetry::JobTrace> traces;

  /// Observability pipeline was on: every alert record accumulated across
  /// all daemon lives (fired and resolved), the scrape grid interval, and
  /// whether the plan guarantees a calibration-drift alert (computed from
  /// the schedule: enough pre/post-onset scrapes, no restart resetting the
  /// detectors, no flap/drain hiding the drifting resource's samples).
  bool observability = false;
  std::vector<telemetry::AlertRecord> alerts;
  common::DurationNs scrape_interval = 0;
  bool expect_drift_alert = false;

  /// ETA calibration (the explainability engine's promise): one sample
  /// per paced-probe job — the start upper bound the engine predicted at
  /// submit against the job's actual first dispatch. Collected by the
  /// scenario's post-quiescence probe phase, where virtual time advances
  /// in small paced steps so dispatch lanes keep up (the scenario proper
  /// fast-forwards the clock in catch-up jumps, which would blame the
  /// predictor for time the lanes never got). Actual starts must land at
  /// or before the predicted bound at a rate of at least
  /// `eta_confidence`.
  struct EtaSample {
    std::uint64_t job_id = 0;
    common::TimeNs predicted_latest = -1;
    common::TimeNs first_dispatch = 0;
  };
  std::vector<EtaSample> eta_samples;
  double eta_confidence = 0.0;

  /// Explain-report partition: per terminal job, the observed queue wait
  /// and the sum of the causes the engine attributed it to. The engine
  /// promises EXACT equality — the unexplained remainder is filed under
  /// queue_depth, never dropped or invented.
  struct ExplainCheck {
    std::uint64_t job_id = 0;
    common::DurationNs observed_wait = 0;
    common::DurationNs causes_total = 0;
  };
  std::vector<ExplainCheck> explain_checks;
};

/// Returns one message per violated invariant (empty = all hold):
///   - every admitted job is present and in exactly one terminal state,
///   - completed jobs lost no shots and executed none twice (shots_done
///     and fetched samples both equal the submitted total),
///   - cancelled jobs never resurrect (durably observed terminal states
///     are final; acknowledged cancels end cancelled),
///   - per-user ledger totals equal the shots their jobs actually
///     executed, and in-flight reservations drained to zero,
///   - the queue is empty and, under GC, records_ stays within its cap,
///   - with tracing on, every terminal job has a finished, well-nested
///     span tree whose stage durations sum to its observed latency,
///   - with observability on, every alert timestamp sits exactly on the
///     scrape grid (fired_at > 0, divisible by the interval) and a
///     schedule that guarantees a calibration drift produced a
///     calibration_drift alert,
///   - eta predictions are calibrated (eligible jobs start by their
///     predicted upper bound at >= the claimed confidence rate), and
///     every explain report's causes sum exactly to its observed wait.
std::vector<std::string> check_invariants(const InvariantInput& input);

}  // namespace qcenv::simtest
