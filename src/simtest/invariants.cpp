#include "simtest/invariants.hpp"

namespace qcenv::simtest {

using daemon::DaemonJobState;

namespace {

bool terminal(DaemonJobState state) {
  return state == DaemonJobState::kCompleted ||
         state == DaemonJobState::kFailed ||
         state == DaemonJobState::kCancelled;
}

std::string job_tag(const TrackedJob& tracked) {
  return "job " + std::to_string(tracked.id) + " (user " + tracked.user +
         ", " + std::to_string(tracked.shots) + " shots)";
}

}  // namespace

std::vector<std::string> check_invariants(const InvariantInput& input) {
  std::vector<std::string> violations;
  std::map<std::string, std::uint64_t> executed_by_user;

  for (const auto& tracked : input.tracked) {
    const auto it = input.jobs.find(tracked.id);
    if (it == input.jobs.end()) {
      // Under GC a missing record means the job was evicted, and eviction
      // only ever takes terminal records — including cancelled ones, so a
      // binding cancel may legitimately have been honoured and then aged
      // out before the harness could observe it. Without GC nothing may
      // ever vanish.
      if (!input.gc_enabled) {
        violations.push_back(job_tag(tracked) +
                             " vanished from the job table");
      }
      continue;
    }
    const daemon::DaemonJob& job = it->second;

    if (!terminal(job.state)) {
      violations.push_back(job_tag(tracked) + " never reached a terminal "
                           "state (stuck " +
                           daemon::to_string(job.state) + " on '" +
                           (job.resource.empty() ? "<unplaced>"
                                                 : job.resource) +
                           "')");
      continue;
    }
    if (job.shots_done > job.total_shots) {
      violations.push_back(job_tag(tracked) + " over-executed: " +
                           std::to_string(job.shots_done) + "/" +
                           std::to_string(job.total_shots) + " shots");
    }
    if (job.state == DaemonJobState::kCompleted) {
      if (job.shots_done != job.total_shots) {
        violations.push_back(
            job_tag(tracked) + " completed with " +
            std::to_string(job.shots_done) + "/" +
            std::to_string(job.total_shots) + " shots executed");
      }
      const auto result = input.result_shots.find(tracked.id);
      if (result != input.result_shots.end() &&
          result->second != job.total_shots) {
        violations.push_back(job_tag(tracked) + " result holds " +
                             std::to_string(result->second) + "/" +
                             std::to_string(job.total_shots) +
                             " shots (lost or duplicated shots)");
      }
    }
    if (input.check_traces) {
      const auto trace = input.traces.find(tracked.id);
      if (trace == input.traces.end()) {
        // The harness sizes the trace store so nothing it submitted can
        // be evicted; a terminal job without a trace lost its timeline.
        violations.push_back(job_tag(tracked) + " has no trace");
      } else {
        const std::string error = telemetry::trace_nesting_error(
            trace->second);
        if (!error.empty()) {
          violations.push_back(job_tag(tracked) + " trace: " + error);
        }
      }
    }
    if (tracked.must_cancel && job.state != DaemonJobState::kCancelled) {
      violations.push_back(job_tag(tracked) +
                           " resurrected past an acknowledged cancel "
                           "(final state " +
                           daemon::to_string(job.state) + ")");
    }
    if (tracked.durable_terminal.has_value() &&
        job.state != *tracked.durable_terminal) {
      violations.push_back(
          job_tag(tracked) + " changed terminal state across restart: " +
          daemon::to_string(*tracked.durable_terminal) + " -> " +
          daemon::to_string(job.state));
    }
    executed_by_user[tracked.user] += job.shots_done;
  }

  if (input.check_ledger_balance && !input.gc_enabled) {
    for (const auto& [user, executed] : executed_by_user) {
      const auto it = input.ledger_raw_shots.find(user);
      const std::uint64_t charged =
          it != input.ledger_raw_shots.end() ? it->second : 0;
      if (charged != executed) {
        violations.push_back(
            "ledger imbalance for " + user + ": charged " +
            std::to_string(charged) + " shots, executed " +
            std::to_string(executed));
      }
    }
  }
  for (const auto& [user, inflight] : input.inflight_shots) {
    if (inflight != 0) {
      violations.push_back("rate limiter leaked " +
                           std::to_string(inflight) +
                           " in-flight shot(s) for " + user);
    }
  }
  if (input.queue_depth != 0) {
    violations.push_back("queue not empty after quiescence: depth " +
                         std::to_string(input.queue_depth));
  }
  if (input.gc_enabled && input.records_cap > 0 &&
      input.records_count > input.records_cap) {
    violations.push_back("records_ unbounded under GC: " +
                         std::to_string(input.records_count) +
                         " records retained, cap " +
                         std::to_string(input.records_cap));
  }
  if (input.observability && input.scrape_interval > 0) {
    bool drift_alerted = false;
    for (const auto& alert : input.alerts) {
      // Scrapes stamp at grid deadlines and alerts evaluate at those same
      // deadlines — a timestamp off the grid means wall time leaked into
      // the alert pipeline (the replay-determinism bug this guards).
      if (alert.fired_at <= 0 ||
          alert.fired_at % input.scrape_interval != 0) {
        violations.push_back(
            "alert '" + alert.rule + "/" + alert.label +
            "' fired off the scrape grid at " +
            std::to_string(alert.fired_at) + " ns (interval " +
            std::to_string(input.scrape_interval) + " ns)");
      }
      if (alert.resolved_at != 0 &&
          alert.resolved_at % input.scrape_interval != 0) {
        violations.push_back(
            "alert '" + alert.rule + "/" + alert.label +
            "' resolved off the scrape grid at " +
            std::to_string(alert.resolved_at) + " ns");
      }
      if (alert.rule.rfind("calibration_drift", 0) == 0) {
        drift_alerted = true;
      }
    }
    if (input.expect_drift_alert && !drift_alerted) {
      violations.push_back(
          "calibration drift was injected with enough warmup and "
          "post-onset scrapes, but no calibration_drift alert fired");
    }
  }
  if (!input.eta_samples.empty()) {
    std::vector<std::string> misses;
    for (const auto& sample : input.eta_samples) {
      // Upper bound only: the lower bound can legitimately race a lane's
      // latency sleep advancing the clock between the dispatch stamp and
      // the estimate's own clock read.
      if (sample.predicted_latest >= 0 &&
          sample.first_dispatch > sample.predicted_latest) {
        misses.push_back(
            "job " + std::to_string(sample.job_id) +
            " first dispatched at " +
            std::to_string(sample.first_dispatch) + " ns, " +
            std::to_string(sample.first_dispatch -
                           sample.predicted_latest) +
            " ns past its predicted start upper bound");
      }
    }
    const auto allowed = static_cast<std::size_t>(
        (1.0 - input.eta_confidence) *
        static_cast<double>(input.eta_samples.size()));
    if (misses.size() > allowed) {
      violations.push_back(
          "eta miscalibrated: " + std::to_string(misses.size()) + "/" +
          std::to_string(input.eta_samples.size()) +
          " paced-probe job(s) missed their predicted start window "
          "(claimed confidence " +
          std::to_string(input.eta_confidence) + " allows " +
          std::to_string(allowed) + ")");
      for (const auto& miss : misses) {
        violations.push_back("eta calibration: " + miss);
      }
    }
  }
  for (const auto& check : input.explain_checks) {
    if (check.causes_total != check.observed_wait) {
      violations.push_back(
          "explain report for job " + std::to_string(check.job_id) +
          " is not an exact partition: causes sum to " +
          std::to_string(check.causes_total) + " ns, observed wait is " +
          std::to_string(check.observed_wait) + " ns");
    }
  }
  return violations;
}

}  // namespace qcenv::simtest
