#include "simtest/sweep.hpp"

#include <fstream>
#include <ostream>

namespace qcenv::simtest {

std::string summary_line(const ScenarioResult& result) {
  const ScenarioStats& stats = result.stats;
  std::string out = "seed " + std::to_string(result.seed) + ": " +
                    std::to_string(stats.submitted) + " jobs (" +
                    std::to_string(stats.completed) + " completed, " +
                    std::to_string(stats.failed) + " failed, " +
                    std::to_string(stats.cancelled) + " cancelled, " +
                    std::to_string(stats.rejected) + " rejected), " +
                    std::to_string(stats.restarts) + " restart(s), " +
                    std::to_string(stats.flaps) + " flap(s), " +
                    std::to_string(stats.disk_faults) + " disk fault(s), " +
                    std::to_string(stats.calib_drifts) + " drift(s), " +
                    std::to_string(stats.alerts_fired) + " alert(s), " +
                    std::to_string(stats.promotions) + " promotion(s), " +
                    std::to_string(stats.virtual_end /
                                   common::kMillisecond) +
                    " virtual ms";
  if (!result.ok()) {
    out += " — " + std::to_string(result.violations.size()) +
           " VIOLATION(S)";
  }
  return out;
}

namespace {

void report_failure(const ScenarioResult& result, std::ostream& out) {
  out << "FAILED " << summary_line(result) << "\n";
  out << "  replay: simtest_sweep --seed " << result.seed << "\n";
  out << "  fault schedule:\n" << result.plan;
  for (const auto& violation : result.violations) {
    out << "  violation: " << violation << "\n";
  }
  if (!result.trace_dump.empty()) {
    out << "  trace dump (events + per-job span trees):\n"
        << result.trace_dump << "\n";
  }
  if (!result.flight_dump.empty()) {
    out << "  flight dump (crash forensics from the failing run):\n"
        << result.flight_dump << "\n";
  }
}

/// The calibration-drift alert timeline as comparable strings. Only drift
/// rules qualify: their inputs are pure functions of the seed and the
/// scrape grid, so two runs of the same seed must reproduce them record
/// for record. SLO burn alerts ride queue occupancy, which is the host
/// scheduler's to interleave — deliberately excluded.
std::vector<std::string> drift_timeline(const ScenarioResult& result) {
  std::vector<std::string> timeline;
  for (const auto& alert : result.alerts) {
    if (alert.rule.rfind("calibration_drift", 0) != 0) continue;
    timeline.push_back(alert.rule + "/" + alert.label + " " +
                       to_string(alert.severity) + " @" +
                       std::to_string(alert.fired_at));
  }
  return timeline;
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const auto& part : parts) {
    if (!out.empty()) out += ", ";
    out += part;
  }
  return out.empty() ? "(none)" : out;
}

/// First divergence between two eta-probe transcripts, rendered for the
/// failure report (the full responses are JSON — print only the pair that
/// differs, not every probe).
std::string probe_divergence(const std::vector<std::string>& first,
                             const std::vector<std::string>& second) {
  if (first.size() != second.size()) {
    return std::to_string(first.size()) + " probe(s) vs " +
           std::to_string(second.size());
  }
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (first[i] != second[i]) {
      return "probe " + std::to_string(i) + ": run1 <" + first[i] +
             "> vs run2 <" + second[i] + ">";
    }
  }
  return "(identical)";
}

}  // namespace

SweepOutcome run_sweep(const SweepOptions& options, std::ostream& log) {
  SweepOutcome outcome;
  for (std::size_t i = 0; i < options.seeds; ++i) {
    const std::uint64_t seed = options.first_seed + i;
    ScenarioOptions scenario = scenario_for_seed(seed, options.quick);
    scenario.trace_dump = options.trace;
    if (options.ha) {
      // The HA slice: every seed runs durable + federated and loses its
      // leader at least once, on top of whatever it drew organically.
      scenario.durable = true;
      scenario.journal_v1_start = false;
      scenario.federation = true;
      scenario.faults.leader_kills =
          std::max<std::size_t>(scenario.faults.leader_kills, 1);
    }
    ScenarioResult result = run_scenario(scenario);
    // Double-run determinism: a seed that injected calibration drift is
    // replayed and must fire the identical drift-alert timeline at the
    // identical virtual timestamps — any divergence means wall time or
    // interleaving leaked into the alerting path. Every replay (plus a
    // deterministic quarter of drift-free seeds, so the check covers
    // every schedule shape) also compares the post-scenario eta/explain
    // probe byte for byte.
    const bool replay_for_drift = scenario.observability &&
                                  scenario.faults.calib_drifts > 0;
    if (result.ok() && (replay_for_drift || seed % 4 == 0)) {
      const ScenarioResult replay = run_scenario(scenario);
      if (replay_for_drift) {
        const auto first = drift_timeline(result);
        const auto second = drift_timeline(replay);
        if (first != second) {
          result.violations.push_back(
              "drift-alert timeline not reproducible: run1 [" +
              join(first) + "] vs run2 [" + join(second) + "]");
        }
      }
      if (result.eta_probe != replay.eta_probe) {
        result.violations.push_back(
            "eta probe not bit-identical across replays: " +
            probe_divergence(result.eta_probe, replay.eta_probe));
      }
    }
    ++outcome.ran;
    if (result.ok()) {
      if (options.verbose) log << summary_line(result) << "\n";
      // A single-seed replay with --trace is a debugging session: show
      // the timeline dump even when every invariant held.
      if (options.trace && options.seeds == 1 &&
          !result.trace_dump.empty()) {
        log << "trace dump (events + per-job span trees):\n"
            << result.trace_dump << "\n";
      }
      continue;
    }
    report_failure(result, log);
    outcome.failures.push_back(std::move(result));
  }
  if (!outcome.failures.empty() && !options.artifact_path.empty()) {
    std::ofstream artifact(options.artifact_path, std::ios::app);
    for (const auto& failure : outcome.failures) {
      report_failure(failure, artifact);
    }
  }
  log << "sweep: " << outcome.ran << " seed(s), "
      << outcome.failures.size() << " failure(s)\n";
  return outcome;
}

}  // namespace qcenv::simtest
