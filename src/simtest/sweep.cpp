#include "simtest/sweep.hpp"

#include <fstream>
#include <ostream>

namespace qcenv::simtest {

std::string summary_line(const ScenarioResult& result) {
  const ScenarioStats& stats = result.stats;
  std::string out = "seed " + std::to_string(result.seed) + ": " +
                    std::to_string(stats.submitted) + " jobs (" +
                    std::to_string(stats.completed) + " completed, " +
                    std::to_string(stats.failed) + " failed, " +
                    std::to_string(stats.cancelled) + " cancelled, " +
                    std::to_string(stats.rejected) + " rejected), " +
                    std::to_string(stats.restarts) + " restart(s), " +
                    std::to_string(stats.flaps) + " flap(s), " +
                    std::to_string(stats.disk_faults) + " disk fault(s), " +
                    std::to_string(stats.virtual_end /
                                   common::kMillisecond) +
                    " virtual ms";
  if (!result.ok()) {
    out += " — " + std::to_string(result.violations.size()) +
           " VIOLATION(S)";
  }
  return out;
}

namespace {

void report_failure(const ScenarioResult& result, std::ostream& out) {
  out << "FAILED " << summary_line(result) << "\n";
  out << "  replay: simtest_sweep --seed " << result.seed << "\n";
  out << "  fault schedule:\n" << result.plan;
  for (const auto& violation : result.violations) {
    out << "  violation: " << violation << "\n";
  }
  if (!result.trace_dump.empty()) {
    out << "  trace dump (events + per-job span trees):\n"
        << result.trace_dump << "\n";
  }
}

}  // namespace

SweepOutcome run_sweep(const SweepOptions& options, std::ostream& log) {
  SweepOutcome outcome;
  for (std::size_t i = 0; i < options.seeds; ++i) {
    const std::uint64_t seed = options.first_seed + i;
    ScenarioOptions scenario = scenario_for_seed(seed, options.quick);
    scenario.trace_dump = options.trace;
    ScenarioResult result = run_scenario(scenario);
    ++outcome.ran;
    if (result.ok()) {
      if (options.verbose) log << summary_line(result) << "\n";
      // A single-seed replay with --trace is a debugging session: show
      // the timeline dump even when every invariant held.
      if (options.trace && options.seeds == 1 &&
          !result.trace_dump.empty()) {
        log << "trace dump (events + per-job span trees):\n"
            << result.trace_dump << "\n";
      }
      continue;
    }
    report_failure(result, log);
    outcome.failures.push_back(std::move(result));
  }
  if (!outcome.failures.empty() && !options.artifact_path.empty()) {
    std::ofstream artifact(options.artifact_path, std::ios::app);
    for (const auto& failure : outcome.failures) {
      report_failure(failure, artifact);
    }
  }
  log << "sweep: " << outcome.ran << " seed(s), "
      << outcome.failures.size() << " failure(s)\n";
  return outcome;
}

}  // namespace qcenv::simtest
