// FaultPlan: a seeded, virtual-time schedule of adversities for the
// deterministic simulation harness (see scenario.hpp). One seed expands to
// one plan — QPU flaps, rolling drains, daemon kill-and-restarts, disk
// deaths at arbitrary journal offsets, torn journal tails, compaction
// cycles, tenant submit storms, cancels and session churn — so a failing
// sweep seed replays the exact same schedule from the command line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace qcenv::simtest {

enum class FaultOp {
  kQpuOffline,       // target resource's node goes down (health + starts)
  kQpuOnline,        // target resource recovers
  kDrainResource,    // rolling maintenance: admin-drain target resource
  kResumeResource,
  kDrainAll,         // global dispatch pause (maintenance window)
  kResumeAll,
  kCancelJob,        // cancel a live job (param picks deterministically)
  kCloseSession,     // close target user's session (cancels queued jobs)
  kKillRestart,      // daemon process dies; restarts on the same data dir
  kJournalFailStop,  // the disk under the journal dies after `param` more
                     // writes (journal fail-stops; acked state stays)
  kTornTail,         // next journal write tears after `param` bytes, then
                     // the disk is dead (the classic crash-mid-append)
  kCompact,          // force a snapshot + journal-truncation cycle
  kCompactCrash,     // a compaction whose `param`-th atomic rewrite dies
                     // (0 = the snapshot, 1 = the journal rewrite — the
                     // mid-migration crash when the journal is migrating
                     // formats); a kKillRestart always follows
  kSubmitStorm,      // target user bursts `param` submissions at once
  kCalibrationDrift,  // target resource's calibration starts degrading as
                      // a pure function of virtual time (`param` = drift
                      // rate in 1/1000 per virtual second); the alerting
                      // pipeline's drift detectors must catch it
  kScrapeStall,       // the scrape loop loses every grid deadline for the
                      // next `param` virtual milliseconds (samples lost,
                      // not late)
  kEtaProbe,          // query a live tracked job's eta + explain surface
                      // mid-fault (`param` picks deterministically); the
                      // answers are interleaving-dependent, so this only
                      // asserts the engine survives every queue state
  kPeerPartition,     // the replication link between leader and standby
                      // drops for `param` virtual milliseconds (every pull
                      // fails; the standby must catch up afterwards)
  kTornSegment,       // the next shipped WAL segment arrives torn (short
                      // read + flipped byte); the standby must reject it
                      // and re-request instead of corrupting the mirror
  kLeaderKill,        // the leader dies for good; the hot standby fences
                      // (epoch bump) and promotes on the mirrored dir
                      // (`param` = 1 injects a crash between the fence and
                      // the daemon build, then retries promotion)
};

const char* to_string(FaultOp op) noexcept;

struct FaultEvent {
  common::DurationNs at = 0;  // virtual time from scenario start
  FaultOp op = FaultOp::kQpuOffline;
  /// Resource index (QPU/drain ops) or user index (storm/session ops).
  std::size_t target = 0;
  /// Op-specific parameter (burst size, journal-offset delta, tear bytes,
  /// deterministic cancel pick).
  std::uint64_t param = 0;

  std::string to_string() const;
};

struct FaultPlanOptions {
  std::size_t fleet_size = 2;
  std::size_t users = 3;
  /// Virtual span faults are scheduled across (recoveries land well
  /// before the end so every scenario can quiesce).
  common::DurationNs horizon = 30 * common::kSecond;
  std::size_t flaps = 2;        // offline/online pairs
  std::size_t drains = 1;       // per-resource drain/resume pairs
  bool global_drain = false;    // one full maintenance window
  std::size_t cancels = 3;
  std::size_t session_churns = 1;
  std::size_t restarts = 1;     // clean kill-and-restart cycles
  bool disk_fault = false;      // one fail-stop OR torn tail + restart
  std::size_t compactions = 1;
  /// Compactions that die on one of their atomic rewrites (snapshot or
  /// journal — the latter is the mid-format-migration crash). Each is
  /// followed by a kKillRestart: the next life must find the pre-crash
  /// journal intact and replay it identically.
  std::size_t compact_crashes = 0;
  std::size_t storms = 1;
  /// Probability that any one task_start transiently fails with an I/O
  /// error (exercises mid-dispatch failover, distinct from flaps). Applied
  /// by the scenario's emulator hooks, not as discrete events.
  double brownout_prob = 0.0;
  /// Calibration-drift onsets (at 30-50% of the horizon, so the drift
  /// detectors have a warmed-up baseline before the shift).
  std::size_t calib_drifts = 0;
  /// Scrape-stall windows (the metrics pipeline's own fault mode).
  std::size_t scrape_stalls = 0;
  /// Mid-run eta/explain queries against random live jobs.
  std::size_t eta_probes = 0;
  /// Replication-link partitions between leader and hot standby (ignored
  /// when the scenario runs without federation).
  std::size_t peer_partitions = 0;
  /// Shipped WAL segments delivered torn (short + corrupt).
  std::size_t torn_segments = 0;
  /// Permanent leader deaths followed by standby promotion (a fresh
  /// standby starts mirroring each promoted leader).
  std::size_t leader_kills = 0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // sorted by `at`, stable
  /// Human-readable, replay-friendly schedule (one event per line).
  std::string to_string() const;
};

/// Expands `rng` into a concrete schedule. Guarantees: every kQpuOffline /
/// kDrainResource / kDrainAll has its matching recovery before `horizon`,
/// at most one disk fault per plan, and a disk fault is always followed by
/// a kKillRestart (the journal is dead — only a new life can heal it).
FaultPlan make_fault_plan(common::Rng& rng, const FaultPlanOptions& options);

}  // namespace qcenv::simtest
