#include "simtest/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <tuple>

#include "common/rng.hpp"
#include "common/temp_dir.hpp"
#include "daemon/daemon.hpp"
#include "federation/federation.hpp"
#include "federation/replication.hpp"
#include "federation/standby.hpp"
#include "qrmi/local_emulator.hpp"
#include <cmath>

#include "accounting/usage_ledger.hpp"
#include "store/fault_injector.hpp"
#include "store/recovery.hpp"

#define QCENV_LOG_COMPONENT "simtest"
#include "common/logging.hpp"

namespace qcenv::simtest {

using common::DurationNs;
using common::TimeNs;
using daemon::DaemonJobState;
using daemon::JobClass;

namespace {

/// Tiny 2-qubit analog program — execution cost is irrelevant to the
/// scenarios; shot bookkeeping is everything.
quantum::Payload make_payload(std::uint64_t shots) {
  quantum::Sequence seq(quantum::AtomRegister::linear_chain(2, 6.0));
  seq.add_pulse(quantum::Pulse{quantum::Waveform::constant(200, 2.0),
                               quantum::Waveform::constant(200, 0.0), 0.0});
  return quantum::Payload::from_sequence(seq, shots);
}

const char* partition_for(JobClass cls) {
  switch (cls) {
    case JobClass::kProduction: return "production";
    case JobClass::kTest: return "test";
    case JobClass::kDevelopment: return "dev";
  }
  return "dev";
}

struct Submission {
  DurationNs at = 0;
  std::size_t user = 0;
  JobClass cls = JobClass::kDevelopment;
  std::uint64_t shots = 0;
};

std::vector<Submission> make_workload(common::Rng& rng,
                                      const ScenarioOptions& options) {
  std::vector<Submission> load;
  load.reserve(options.jobs);
  for (std::size_t i = 0; i < options.jobs; ++i) {
    Submission submission;
    submission.at = static_cast<DurationNs>(
        static_cast<double>(options.horizon) * 0.85 * rng.uniform());
    submission.user = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(options.users) - 1));
    const std::size_t cls = rng.discrete({0.2, 0.3, 0.5});
    submission.cls = cls == 0   ? JobClass::kProduction
                     : cls == 1 ? JobClass::kTest
                                : JobClass::kDevelopment;
    submission.shots = static_cast<std::uint64_t>(rng.uniform_int(
        static_cast<std::int64_t>(options.min_shots),
        static_cast<std::int64_t>(options.max_shots)));
    load.push_back(submission);
  }
  std::sort(load.begin(), load.end(),
            [](const Submission& a, const Submission& b) {
              return a.at < b.at;
            });
  return load;
}

/// Semantic equivalence of two recovered states — what a promotion
/// actually restores. Sessions (tokens included), job records, id
/// allocation and the sequence high-water mark must match exactly. The
/// accounting ledger is compared as the LEDGER both sides rebuild through
/// the production restore path (snapshot records, then journal deltas in
/// order): a compacted leader and a full-history mirror hold the same
/// ledger in different on-disk representations (decayed snapshot records
/// vs raw deltas), so the raw lists themselves are not comparable.
/// Rebuilt raw integer totals must match exactly; the decayed figures are
/// the same exponential fold evaluated through different factorings of
/// 2^-dt, so they get one part in 10^9. Returns "" when equivalent, else
/// what diverged.
std::string mirror_mismatch(const store::RecoveredState& leader,
                            const store::RecoveredState& mirror) {
  if (leader.last_seq != mirror.last_seq) {
    return "sequence high-water marks differ";
  }
  if (leader.next_job_id != mirror.next_job_id) {
    return "job id allocation differs (leader next_job_id " +
           std::to_string(leader.next_job_id) + ", mirror " +
           std::to_string(mirror.next_job_id) + ")";
  }
  const auto session_images = [](const store::RecoveredState& state) {
    std::vector<std::string> out;
    out.reserve(state.sessions.size());
    for (auto session : state.sessions) {
      // A restored session is treated as active-now; last_active is
      // bookkeeping a snapshot refreshes but journal replay cannot see.
      session.last_active = 0;
      out.push_back(session.to_json().dump());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  if (session_images(leader) != session_images(mirror)) {
    return "session records differ (tokens/users/classes)";
  }
  const auto job_images = [](const store::RecoveredState& state) {
    std::vector<std::string> out;
    out.reserve(state.jobs.size());
    for (const auto& job : state.jobs) out.push_back(job.to_json().dump());
    std::sort(out.begin(), out.end());
    return out;
  };
  {
    const auto a = job_images(leader);
    const auto b = job_images(mirror);
    if (a != b) {
      std::string detail;
      for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
        const std::string& left = i < a.size() ? a[i] : std::string("<none>");
        const std::string& right = i < b.size() ? b[i] : std::string("<none>");
        if (left != right) {
          detail = " [leader " + left + " vs mirror " + right + "]";
          break;
        }
      }
      return "job records differ" + detail;
    }
  }
  const auto populate = [](accounting::UsageLedger& ledger,
                           const store::RecoveredState& state) {
    ledger.restore(state.usage);
    for (const auto& delta : state.usage_deltas) {
      ledger.charge(delta.user, delta.shots, delta.qpu_ns, delta.jobs,
                    delta.time);
    }
  };
  accounting::UsageLedger leader_ledger;
  accounting::UsageLedger mirror_ledger;
  populate(leader_ledger, leader);
  populate(mirror_ledger, mirror);
  TimeNs as_of = 0;
  for (const auto* state : {&leader, &mirror}) {
    for (const auto& record : state->usage) {
      as_of = std::max(as_of, record.as_of);
    }
    for (const auto& delta : state->usage_deltas) {
      as_of = std::max(as_of, delta.time);
    }
  }
  auto users = leader_ledger.users();
  {
    const auto more = mirror_ledger.users();
    users.insert(users.end(), more.begin(), more.end());
    std::sort(users.begin(), users.end());
    users.erase(std::unique(users.begin(), users.end()), users.end());
  }
  const auto close = [](double a, double b) {
    return std::abs(a - b) <=
           1e-9 * std::max({std::abs(a), std::abs(b), 1.0});
  };
  for (const auto& user : users) {
    const auto a = leader_ledger.usage(user, as_of);
    const auto b = mirror_ledger.usage(user, as_of);
    if (a.raw_shots != b.raw_shots || a.raw_jobs != b.raw_jobs ||
        a.raw_qpu_ns != b.raw_qpu_ns) {
      return "raw ledger totals differ for user " + user;
    }
    if (!close(a.shots, b.shots) ||
        !close(a.qpu_seconds, b.qpu_seconds) || !close(a.jobs, b.jobs)) {
      return "decayed ledger usage differs for user " + user;
    }
  }
  return "";
}

/// Latency/brownout/drift model behind the emulator fault hooks. Hooks
/// fire on dispatch lanes concurrently, and Rng is not thread-safe.
struct EmuModel {
  std::mutex mutex;
  common::Rng rng{0};
  bool latency = false;
  double brownout = 0.0;
  /// Calibration drift (kCalibrationDrift): once drift_onset >= 0, every
  /// target() report degrades — fill_success decays and dephasing grows —
  /// by the current drift_level. The level is advanced ONLY by the
  /// harness, at scrape-grid deadlines, as min(0.6, rate * seconds since
  /// onset) with both endpoints taken from the plan/grid rather than the
  /// live clock: the sampled score series is then bit-identical between
  /// replays, so the drift-alert timeline must be too.
  TimeNs drift_onset = -1;
  double drift_rate = 0.0;
  double drift_level = 0.0;
};

/// The world one scenario lives in: fleet, daemon, clock, disk, tenants,
/// and the per-job expectations the invariants are checked against.
class SimWorld {
 public:
  SimWorld(const ScenarioOptions& options, ScenarioResult& result)
      : options_(options),
        result_(result),
        clock_(0, /*auto_advance=*/true),
        scrape_interval_(options.scrape_interval > 0
                             ? options.scrape_interval
                             : std::max<DurationNs>(common::kMillisecond,
                                                    options.horizon / 128)),
        max_grid_(static_cast<std::uint64_t>(options.horizon /
                                             scrape_interval_)),
        storm_rng_(common::Rng(options.seed).fork(3)) {
    for (std::size_t i = 0; i < options_.fleet_size; ++i) {
      auto emu = qrmi::LocalEmulatorQrmi::create(
                     "emu" + std::to_string(i), "sv")
                     .value();
      auto model = std::make_shared<EmuModel>();
      model->rng = common::Rng(options_.seed).fork(100 + i);
      model->latency = options_.latency;
      model->brownout = options_.faults.brownout_prob;
      qrmi::EmulatorFaultHooks hooks;
      // Always installed: the drift model must be attachable mid-run by a
      // kCalibrationDrift event even when latency/brownout are off. The
      // hook only APPLIES the current level — computing it from the live
      // auto-advancing clock here would smear an interleaving-dependent
      // epsilon into the sampled scores and, near detector thresholds,
      // into the alert timeline itself (pump_scrapes owns the update).
      hooks.mutate_spec = [model](quantum::DeviceSpec& spec) {
        std::scoped_lock lock(model->mutex);
        if (model->drift_level <= 0.0) return;
        spec.calibration.fill_success *= (1.0 - model->drift_level);
        spec.calibration.dephasing_rate += model->drift_level;
      };
      if (model->latency || model->brownout > 0.0) {
        hooks.on_start =
            [model](const quantum::Payload&)
            -> std::optional<common::Error> {
          std::scoped_lock lock(model->mutex);
          if (model->brownout > 0.0 &&
              model->rng.bernoulli(model->brownout)) {
            return common::err::io("injected transient node brownout");
          }
          return std::nullopt;
        };
        hooks.latency = [model](std::uint64_t shots) -> DurationNs {
          std::scoped_lock lock(model->mutex);
          if (!model->latency) return 0;
          // ~1 ms floor plus tail jitter plus per-shot cost, all virtual.
          return common::kMillisecond +
                 common::from_seconds(model->rng.exponential_mean(0.002)) +
                 static_cast<DurationNs>(shots) * 10 * common::kMicrosecond;
        };
      }
      if (options_.plant_shot_loss) {
        // The deliberate bug: silently drop one count from every result.
        hooks.corrupt_result = [](quantum::Samples samples) {
          quantum::Samples corrupted(samples.num_qubits());
          bool dropped = false;
          for (const auto& [bits, count] : samples.counts()) {
            const std::uint64_t keep =
                !dropped && count > 0 ? count - 1 : count;
            dropped = dropped || keep != count;
            if (keep > 0) corrupted.record(bits, keep);
          }
          corrupted.set_metadata(samples.metadata());
          return corrupted;
        };
      }
      emu->set_fault_hooks(std::move(hooks), &clock_);
      emus_.push_back(std::move(emu));
      models_.push_back(std::move(model));
    }
    store::set_fault_injector(&injector_);
    daemon_ = make_daemon();
    for (std::size_t u = 0; u < options_.users; ++u) {
      open_session(u);
    }
    start_standby();
  }

  ~SimWorld() {
    standby_.reset();
    daemon_.reset();
    store::set_fault_injector(nullptr);
  }

  common::ManualClock& clock() { return clock_; }
  daemon::MiddlewareDaemon& daemon() { return *daemon_; }

  bool journal_healthy() const {
    if (disk_dead_) return false;
    auto* store = daemon_->state_store();
    return store == nullptr || !store->journal().io_error().has_value();
  }

  /// Precomputes the scrape-stall windows and decides whether this plan
  /// GUARANTEES a calibration-drift alert (the invariant then demands
  /// one). The guarantee is deliberately conservative: no restart may
  /// reset the detectors mid-run, nothing may hide the drifting
  /// resource's samples (flap or drain), and the grid must hold at least
  /// warmup+2 clean scrapes before onset and 6 after.
  void prepare_observability(const FaultPlan& plan) {
    for (const auto& event : plan.events) {
      if (event.op == FaultOp::kScrapeStall) {
        stall_windows_.emplace_back(
            event.at, event.at + static_cast<DurationNs>(event.param) *
                                     common::kMillisecond);
      }
    }
    if (!options_.observability) return;
    bool restarts = false;
    std::vector<const FaultEvent*> drifts;
    std::vector<bool> hidden(options_.fleet_size, false);
    for (const auto& event : plan.events) {
      switch (event.op) {
        case FaultOp::kKillRestart:
          restarts = true;
          break;
        case FaultOp::kCalibrationDrift:
          drifts.push_back(&event);
          break;
        case FaultOp::kQpuOffline:
        case FaultOp::kDrainResource:
          hidden[event.target % options_.fleet_size] = true;
          break;
        case FaultOp::kDrainAll:
          std::fill(hidden.begin(), hidden.end(), true);
          break;
        default:
          break;
      }
    }
    if (restarts) return;
    for (const auto* drift : drifts) {
      if (hidden[drift->target % options_.fleet_size]) continue;
      std::size_t pre = 0;
      std::size_t post = 0;
      for (std::uint64_t i = 1; i <= max_grid_; ++i) {
        const TimeNs t =
            static_cast<TimeNs>(i) * scrape_interval_;
        if (stalled(t)) continue;
        ++(t < drift->at ? pre : post);
      }
      if (pre >= kDriftWarmup + 2 && post >= 6) {
        expect_drift_alert_ = true;
        break;
      }
    }
  }

  /// Drives every scrape-grid deadline that virtual time has passed, in
  /// order, through the pipeline's deterministic entry point. The grid
  /// index is HARNESS state, not collector state: it survives daemon
  /// restarts (a new life's collector re-anchors on the mid-run clock,
  /// which would skew the grid) and caps at the horizon so quiescence
  /// overshoot cannot mint extra samples.
  void pump_scrapes() {
    pump_replication();
    if (!options_.observability) return;
    const TimeNs now = clock_.now();
    while (grid_idx_ <= max_grid_) {
      const TimeNs t = static_cast<TimeNs>(grid_idx_) * scrape_interval_;
      if (t > now) break;
      // Advance every drifting emulator's degradation level to this grid
      // deadline — grid time in, grid time out, so the scores the scrape
      // below samples are exact functions of the seed.
      for (const auto& model : models_) {
        std::scoped_lock lock(model->mutex);
        if (model->drift_onset < 0 || t < model->drift_onset) continue;
        model->drift_level = std::min(
            0.6, model->drift_rate *
                     common::to_seconds(t - model->drift_onset));
      }
      if (auto* obs = daemon_->observability()) {
        if (stalled(t)) {
          obs->collector().note_missed();
        } else {
          obs->tick_at(t);
        }
      }
      ++grid_idx_;
    }
  }

  /// Runs out the rest of the grid after quiescence so every scenario
  /// evaluates the same number of scrapes regardless of how early the
  /// workload drained.
  void finish_scrapes() {
    if (!options_.observability || max_grid_ == 0) return;
    clock_.advance_to(static_cast<TimeNs>(max_grid_) * scrape_interval_);
    pump_scrapes();
  }

  void submit(std::size_t user, JobClass cls, std::uint64_t shots) {
    daemon::MiddlewareDaemon::SubmitHints hints;
    hints.partition = partition_for(cls);
    auto submitted = daemon_->submit_job(tokens_[user],
                                         make_payload(shots), hints);
    if (submitted.ok()) {
      const std::uint64_t id = submitted.value().id;
      TrackedJob tracked{id, user_name(user), shots, false, std::nullopt};
      // Exercise the prediction the tenant would have seen in the 201
      // body against the live queue (crash coverage only — calibration is
      // asserted by run_eta_probe's paced phase, where lanes keep up with
      // virtual time).
      (void)daemon_->eta().estimate(id);
      tracked_.emplace(id, tracked);
      ++result_.stats.submitted;
      return;
    }
    ++result_.stats.rejected;
    switch (submitted.error().code()) {
      case common::ErrorCode::kResourceExhausted:  // rate/pending limits
      case common::ErrorCode::kUnavailable:        // fleet entirely down
      case common::ErrorCode::kIo:                 // journal fail-stopped
        break;
      case common::ErrorCode::kPermissionDenied:
        // Session lost to a crash that outran its journal event; open a
        // fresh one so this tenant keeps participating.
        open_session(user);
        break;
      default:
        violation("unexpected submit rejection for " + user_name(user) +
                  ": " + submitted.error().to_string());
        break;
    }
  }

  void apply(const FaultEvent& event) {
    switch (event.op) {
      case FaultOp::kQpuOffline:
        ++result_.stats.flaps;
        emu_of(event.target)->set_offline(true);
        break;
      case FaultOp::kQpuOnline:
        emu_of(event.target)->set_offline(false);
        break;
      case FaultOp::kDrainResource:
        (void)daemon_->dispatcher().drain_resource(emu_name(event.target));
        break;
      case FaultOp::kResumeResource:
        (void)daemon_->dispatcher().resume_resource(emu_name(event.target));
        break;
      case FaultOp::kDrainAll:
        daemon_->dispatcher().drain();
        break;
      case FaultOp::kResumeAll:
        daemon_->dispatcher().resume();
        break;
      case FaultOp::kCancelJob:
        cancel_one(event.param);
        break;
      case FaultOp::kCloseSession:
        close_session(event.target % options_.users);
        break;
      case FaultOp::kKillRestart:
        restart();
        break;
      case FaultOp::kJournalFailStop:
        if (daemon_->state_store() == nullptr) break;
        ++result_.stats.disk_faults;
        capture_durable_terminals();
        injector_.fail_journal_writes_after(injector_.journal_writes() +
                                            event.param);
        disk_dead_ = true;
        break;
      case FaultOp::kTornTail:
        if (daemon_->state_store() == nullptr) break;
        ++result_.stats.disk_faults;
        capture_durable_terminals();
        injector_.tear_journal_write_after(injector_.journal_writes(),
                                           event.param);
        disk_dead_ = true;
        break;
      case FaultOp::kCompact:
        if (daemon_->state_store() != nullptr) {
          ++result_.stats.compactions;
          (void)daemon_->state_store()->compact();
        }
        break;
      case FaultOp::kCompactCrash:
        // One atomic rewrite of this compaction dies (param 0 = the
        // snapshot, 1 = the journal rewrite — mid-migration when the
        // journal is re-encoding formats). The compaction aborts, the
        // journal keeps appending, and the plan's guaranteed restart
        // must find the original file intact and replay it.
        if (daemon_->state_store() != nullptr && journal_healthy()) {
          ++result_.stats.compact_crashes;
          injector_.fail_one_atomic_write_after(event.param);
          (void)daemon_->state_store()->compact();
          injector_.heal();
        }
        break;
      case FaultOp::kSubmitStorm: {
        ++result_.stats.storms;
        const std::size_t user = event.target % options_.users;
        for (std::uint64_t i = 0; i < event.param; ++i) {
          submit(user, JobClass::kDevelopment,
                 static_cast<std::uint64_t>(
                     storm_rng_.uniform_int(8, 40)));
        }
        break;
      }
      case FaultOp::kEtaProbe: {
        // Exercise the explainability surface against whatever queue the
        // faults have produced. The answers are interleaving-dependent —
        // only survival is asserted here; the deterministic bit-identity
        // probe runs post-quiescence (run_eta_probe).
        const auto jobs = job_table();
        std::vector<std::uint64_t> ids;
        for (const auto& [id, tracked] : tracked_) {
          if (jobs.count(id) != 0) ids.push_back(id);
        }
        if (ids.empty()) break;
        const std::uint64_t id = ids[event.param % ids.size()];
        (void)daemon_->eta().estimate(id);
        (void)daemon_->eta().explain(id);
        break;
      }
      case FaultOp::kCalibrationDrift: {
        ++result_.stats.calib_drifts;
        auto& model = models_[event.target % models_.size()];
        std::scoped_lock lock(model->mutex);
        // Onset pinned to the PLAN's timestamp, not the clock read (which
        // sits an interleaving-dependent epsilon past it).
        model->drift_onset = event.at;
        model->drift_rate = static_cast<double>(event.param) / 1000.0;
        break;
      }
      case FaultOp::kScrapeStall:
        // The windows themselves were precomputed from the plan
        // (prepare_observability) — pump_scrapes consults them on every
        // grid deadline; the event only counts for the summary line.
        ++result_.stats.scrape_stalls;
        break;
      case FaultOp::kPeerPartition:
        if (standby_ == nullptr) break;
        ++result_.stats.peer_partitions;
        partition_until_ =
            clock_.now() +
            static_cast<DurationNs>(event.param) * common::kMillisecond;
        break;
      case FaultOp::kTornSegment:
        if (repl_source_ == nullptr) break;
        ++result_.stats.torn_segments;
        repl_source_->tear_next_segment();
        break;
      case FaultOp::kLeaderKill:
        leader_kill(event.param == 1);
        break;
    }
  }

  /// Advances virtual time until every tracked job is terminal. The
  /// stall decision is a VIRTUAL-time budget past the last event — a
  /// fixed number of 2 ms advances, identical on a laptop and a loaded
  /// CI runner — so a stalled seed replays as stalled anywhere. A far
  /// larger real-time backstop only guards against true deadlock.
  void drive_to_quiescence() {
    const TimeNs virtual_deadline =
        clock_.now() + 2 * 60 * common::kSecond;
    const auto started = std::chrono::steady_clock::now();
    while (true) {
      const auto jobs = job_table();
      bool pending = false;
      for (const auto& [id, tracked] : tracked_) {
        const auto it = jobs.find(id);
        if (it == jobs.end()) continue;  // GC'd: terminal by definition
        const auto state = it->second.state;
        if (state != DaemonJobState::kCompleted &&
            state != DaemonJobState::kFailed &&
            state != DaemonJobState::kCancelled) {
          pending = true;
          break;
        }
      }
      if (!pending) break;
      if (clock_.now() > virtual_deadline ||
          std::chrono::steady_clock::now() - started >
              std::chrono::seconds(120)) {
        std::string stuck;
        for (const auto& [id, job] : jobs) {
          if (tracked_.count(id) == 0) continue;
          if (job.state == DaemonJobState::kQueued ||
              job.state == DaemonJobState::kRunning) {
            stuck += " job " + std::to_string(id) + "=" +
                     daemon::to_string(job.state) + "@" +
                     (job.resource.empty() ? "<unplaced>" : job.resource);
          }
        }
        violation("scenario stalled: work never quiesced:" + stuck);
        break;
      }
      clock_.advance(2 * common::kMillisecond);
      pump_scrapes();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  InvariantInput gather() {
    InvariantInput input;
    if (options_.gc) (void)daemon_->dispatcher().sweep_terminal();
    input.jobs = job_table();
    for (const auto& [id, tracked] : tracked_) {
      input.tracked.push_back(tracked);
      const auto it = input.jobs.find(id);
      if (it == input.jobs.end()) continue;
      if (it->second.state == DaemonJobState::kCompleted) {
        auto samples = daemon_->dispatcher().result(id);
        if (samples.ok()) {
          input.result_shots[id] = samples.value().total_shots();
        }
      }
      // Explain-partition check: every still-recorded job's wait must
      // decompose into causes that sum to it exactly.
      if (auto report = daemon_->eta().explain(id); report.ok()) {
        DurationNs causes_total = 0;
        for (const auto& cause : report.value().causes) {
          causes_total += cause.duration;
        }
        input.explain_checks.push_back(
            {id, report.value().observed_wait, causes_total});
      }
    }
    input.eta_confidence = daemon_->eta().options().confidence;
    const TimeNs now = clock_.now();
    for (std::size_t u = 0; u < options_.users; ++u) {
      const std::string user = user_name(u);
      input.ledger_raw_shots[user] =
          daemon_->accounting().ledger().usage(user, now).raw_shots;
      input.inflight_shots[user] =
          daemon_->accounting().rate_limiter().inflight_shots(user);
    }
    for (const auto& [_, depth] : daemon_->dispatcher().queue_depths()) {
      input.queue_depth += depth;
    }
    if (telemetry::TraceStore* traces = daemon_->traces()) {
      input.check_traces = true;
      for (const auto& [id, job] : input.jobs) {
        if (job.trace_id == 0) continue;
        if (auto trace = traces->find(job.trace_id)) {
          input.traces.emplace(id, std::move(*trace));
        }
      }
    }
    if (options_.trace_dump) {
      common::Json dump = common::Json::object();
      common::Json events = common::Json::array();
      for (const auto& event : daemon_->events().since(0, 1 << 20)) {
        events.push_back(telemetry::EventLog::to_json(event));
      }
      dump["events"] = std::move(events);
      common::Json traces = common::Json::array();
      for (const auto& [id, trace] : input.traces) {
        traces.push_back(telemetry::TraceStore::to_json(trace));
      }
      dump["traces"] = std::move(traces);
      result_.trace_dump = dump.dump();
    }
    // A journal fail-stop mid-scenario made some daemon life dump its
    // black box to <data_dir>/flight.json; surface the forensics with the
    // result before the temp dir evaporates.
    if (options_.durable) {
      std::ifstream dump_file(data_dir_ + "/flight.json");
      if (!dump_file.is_open() && data_dir_ != dir_.path()) {
        dump_file.open(dir_.path() + "/flight.json");
      }
      if (dump_file) {
        std::ostringstream dump;
        dump << dump_file.rdbuf();
        result_.flight_dump = dump.str();
      }
    }
    input.gc_enabled = options_.gc;
    input.records_count = daemon_->dispatcher().jobs_snapshot().size();
    input.records_cap = options_.gc ? kGcCap : 0;
    input.check_ledger_balance = !options_.gc;
    if (options_.observability) {
      harvest_alerts();
      // Stable fired-order: lane interleaving never reorders records with
      // distinct grid stamps, and ties break on rule/label so two replays
      // serialize identically.
      std::sort(past_alerts_.begin(), past_alerts_.end(),
                [](const telemetry::AlertRecord& a,
                   const telemetry::AlertRecord& b) {
                  return std::tie(a.fired_at, a.rule, a.label) <
                         std::tie(b.fired_at, b.rule, b.label);
                });
      input.observability = true;
      input.alerts = past_alerts_;
      input.scrape_interval = scrape_interval_;
      input.expect_drift_alert = expect_drift_alert_;
      result_.alerts = past_alerts_;
      result_.stats.alerts_fired = past_alerts_.size();
    }
    // Final per-state tally for the sweep's summary line.
    for (const auto& [id, job] : input.jobs) {
      if (tracked_.count(id) == 0) continue;
      if (job.state == DaemonJobState::kCompleted) {
        ++result_.stats.completed;
      } else if (job.state == DaemonJobState::kFailed) {
        ++result_.stats.failed;
      } else if (job.state == DaemonJobState::kCancelled) {
        ++result_.stats.cancelled;
      }
    }
    result_.stats.virtual_end = now;
    return input;
  }

  /// The sweep's bit-identity probe (run AFTER gather — it replaces the
  /// daemon): a fresh, non-durable daemon over the healed fleet, drained
  /// before anything can dispatch, queried at a pinned virtual time. Every
  /// input — job ids, queue order, token-bucket level, the drain event the
  /// explain report attributes the wait to, the TSDB-less fallback batch
  /// latency — is a pure function of the seed, so two runs of one seed
  /// must serialize byte-identical eta and explain responses.
  void run_eta_probe() {
    // Pin far past anything an ok run can have reached: quiescence is
    // budgeted at 2 virtual minutes past its entry, which itself trails
    // the horizon by at most seconds of lane-sleep overshoot. A run that
    // got here later already failed the stall invariant — but check, so a
    // pathological overshoot fails loudly instead of diverging silently.
    const TimeNs probe_time =
        static_cast<TimeNs>(max_grid_) * scrape_interval_ +
        5 * 60 * common::kSecond;
    if (clock_.now() > probe_time) {
      violation("eta probe: virtual clock overshot the deterministic pin");
      return;
    }
    daemon_.reset();
    injector_.heal();
    disk_dead_ = false;
    clock_.advance_to(probe_time);
    daemon_ = make_probe_daemon();
    // Drained before the lanes can touch anything: the queue the
    // estimator simulates stays exactly the submission order below.
    daemon_->dispatcher().drain();
    auto session = daemon_->open_session("eta-probe", JobClass::kTest);
    if (!session.ok()) {
      violation("eta probe: could not open session: " +
                session.error().to_string());
      return;
    }
    common::Rng probe_rng = common::Rng(options_.seed).fork(4);
    const auto count =
        static_cast<std::size_t>(probe_rng.uniform_int(2, 4));
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < count; ++i) {
      const auto shots = static_cast<std::uint64_t>(probe_rng.uniform_int(
          static_cast<std::int64_t>(options_.min_shots),
          static_cast<std::int64_t>(options_.max_shots)));
      const std::int64_t cls_pick = probe_rng.uniform_int(0, 2);
      const JobClass cls = cls_pick == 0   ? JobClass::kProduction
                           : cls_pick == 1 ? JobClass::kTest
                                           : JobClass::kDevelopment;
      daemon::MiddlewareDaemon::SubmitHints hints;
      hints.partition = partition_for(cls);
      auto submitted = daemon_->submit_job(session.value().token,
                                           make_payload(shots), hints);
      if (!submitted.ok()) {
        violation("eta probe: submission rejected: " +
                  submitted.error().to_string());
        return;
      }
      ids.push_back(submitted.value().id);
    }
    // A deterministic wait gives the explain reports something to
    // attribute: 5 virtual seconds of global drain, exactly.
    clock_.advance(5 * common::kSecond);
    for (const std::uint64_t id : ids) {
      auto eta = daemon_->eta().estimate(id);
      auto explain = daemon_->eta().explain(id);
      if (!eta.ok() || !explain.ok()) {
        violation("eta probe: query failed for job " + std::to_string(id));
        return;
      }
      result_.eta_probe.push_back(eta.value().to_json().dump() + "\n" +
                                  explain.value().to_json().dump());
    }
    // Phase 2 — calibration under a PACED clock. The scenario proper
    // fast-forwards virtual time in catch-up jumps with no real sleeps,
    // so lanes starve of CPU while the clock races ahead and every
    // submit-time prediction looks late through no fault of the model.
    // Here the lanes are resumed, a fresh batch is submitted with its
    // predictions recorded, and virtual time advances in small steps
    // with real sleeps in between — the lanes keep up, so actual first
    // dispatches are a fair test of the predicted start upper bounds
    // (checked by the calibration invariant).
    daemon_->dispatcher().resume();
    std::vector<std::uint64_t> paced;
    for (std::size_t i = 0; i < 5; ++i) {
      const auto shots = static_cast<std::uint64_t>(probe_rng.uniform_int(
          static_cast<std::int64_t>(options_.min_shots),
          static_cast<std::int64_t>(options_.max_shots)));
      daemon::MiddlewareDaemon::SubmitHints hints;
      hints.partition = partition_for(JobClass::kTest);
      auto submitted = daemon_->submit_job(session.value().token,
                                           make_payload(shots), hints);
      if (!submitted.ok()) {
        violation("eta probe: paced submission rejected: " +
                  submitted.error().to_string());
        return;
      }
      const std::uint64_t id = submitted.value().id;
      auto eta = daemon_->eta().estimate(id);
      if (!eta.ok()) {
        violation("eta probe: paced estimate failed for job " +
                  std::to_string(id));
        return;
      }
      // A job a lane already picked up reports its actual start
      // (confidence 1.0) — a trivially satisfied sample, kept anyway so
      // the sample count is seed-stable.
      eta_samples_.push_back({id, eta.value().start_latest, 0});
      paced.push_back(id);
    }
    const TimeNs pace_deadline = clock_.now() + 30 * common::kSecond;
    while (true) {
      const auto jobs = job_table();
      bool all_dispatched = true;
      for (std::size_t i = 0; i < paced.size(); ++i) {
        const auto it = jobs.find(paced[i]);
        if (it == jobs.end() || it->second.first_dispatch_time <= 0) {
          all_dispatched = false;
          break;
        }
        eta_samples_[eta_samples_.size() - paced.size() + i]
            .first_dispatch = it->second.first_dispatch_time;
      }
      if (all_dispatched) break;
      if (clock_.now() >= pace_deadline) {
        violation("eta probe: paced jobs not dispatched within 30 "
                  "virtual seconds");
        return;
      }
      clock_.advance(2 * common::kMillisecond);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  const std::vector<InvariantInput::EtaSample>& eta_samples() const {
    return eta_samples_;
  }

  /// End-of-run mirror check for federated seeds whose leader survived:
  /// after a final catch-up, replaying the standby's mirror must recover
  /// exactly what replaying the live leader's disk recovers. Runs after
  /// gather (the daemon is idle) and before the eta probe replaces it.
  void verify_replication() {
    if (standby_ == nullptr || daemon_->state_store() == nullptr) return;
    partition_until_ = -1;
    repl_source_->set_partitioned(false);
    // The leader is idle but alive: its group-commit writer, session
    // expiry sweeps and auto-compaction still run (and still advance
    // virtual time), so a single pull can land between a durable append
    // and the next. Flush-then-drain until the cut is consistent; a real
    // divergence persists through every attempt and is still reported.
    std::string divergence;
    for (int attempt = 0; attempt < 8; ++attempt) {
      // Best effort: a fail-stopped journal still serves (and must still
      // mirror) exactly its durable prefix.
      (void)daemon_->state_store()->flush();
      auto drained = standby_->replicator().catch_up();
      if (!drained.ok()) {
        violation("replication: final catch-up failed: " +
                  drained.error().to_string());
        return;
      }
      divergence = mirror_divergence(data_dir_);
      if (divergence.empty()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    violation("replication: " + divergence);
  }

 private:
  static constexpr std::size_t kGcCap = 12;
  /// Mirrors ObservabilityOptions::drift_warmup (asserted in make_daemon
  /// by setting it explicitly): scrapes the detectors swallow before they
  /// may alarm.
  static constexpr std::size_t kDriftWarmup = 20;

  bool stalled(TimeNs t) const {
    for (const auto& [from, to] : stall_windows_) {
      if (t >= from && t <= to) return true;
    }
    return false;
  }

  /// Folds the current daemon life's alert records (resolved history
  /// first, then still-active) into the cross-life accumulator. Called
  /// right before a kill tears the pipeline down, and once at gather.
  void harvest_alerts() {
    auto* obs = daemon_ != nullptr ? daemon_->observability() : nullptr;
    if (obs == nullptr) return;
    for (const auto& record : obs->alerts().history()) {
      past_alerts_.push_back(record);
    }
    for (const auto& record : obs->alerts().active()) {
      past_alerts_.push_back(record);
    }
  }

  std::string user_name(std::size_t u) const {
    return "u" + std::to_string(u);
  }
  std::string emu_name(std::size_t i) const {
    return "emu" + std::to_string(i % options_.fleet_size);
  }
  std::shared_ptr<qrmi::LocalEmulatorQrmi> emu_of(std::size_t i) {
    return emus_[i % emus_.size()];
  }

  void violation(std::string message) {
    result_.violations.push_back(std::move(message));
  }

  void open_session(std::size_t user) {
    auto session =
        daemon_->open_session(user_name(user), JobClass::kTest);
    if (!session.ok()) {
      violation("could not open session for " + user_name(user) + ": " +
                session.error().to_string());
      return;
    }
    tokens_[user] = session.value().token;
  }

  void close_session(std::size_t user) {
    const auto token = tokens_.find(user);
    if (token == tokens_.end()) return;
    (void)daemon_->close_session(token->second);
    // Queued jobs of that session just went terminal; bind the ones whose
    // cancellation is already durable so a later life cannot revive them.
    if (journal_healthy()) capture_durable_terminals();
    open_session(user);
  }

  void cancel_one(std::uint64_t pick) {
    const auto jobs = job_table();
    std::vector<std::uint64_t> live;
    for (const auto& [id, tracked] : tracked_) {
      const auto it = jobs.find(id);
      if (it == jobs.end()) continue;
      if (it->second.state == DaemonJobState::kQueued ||
          it->second.state == DaemonJobState::kRunning) {
        live.push_back(id);
      }
    }
    if (live.empty()) return;
    const std::uint64_t id = live[pick % live.size()];
    auto status = daemon_->dispatcher().cancel(id);
    if (status.ok() && journal_healthy()) {
      // The ack is durable (kAlways journal): this job must end — and
      // forever stay — cancelled, across any number of restarts.
      tracked_.at(id).must_cancel = true;
    }
  }

  void capture_durable_terminals() {
    const auto jobs = job_table();
    for (auto& [id, tracked] : tracked_) {
      if (tracked.durable_terminal.has_value()) continue;
      const auto it = jobs.find(id);
      if (it == jobs.end()) continue;
      const auto state = it->second.state;
      if (state == DaemonJobState::kCompleted ||
          state == DaemonJobState::kFailed ||
          state == DaemonJobState::kCancelled) {
        tracked.durable_terminal = state;
      }
    }
  }

  void restart() {
    if (daemon_->state_store() == nullptr) return;  // nothing to recover
    ++result_.stats.restarts;
    if (journal_healthy()) capture_durable_terminals();
    // The pipeline dies with the process but its alert record is the
    // operator's, not the daemon's: harvest it before the kill so the
    // invariants see the full cross-life timeline.
    harvest_alerts();
    // Teardown stands in for the kill: with a dead disk the final flushes
    // fail and everything after the fail point is simply gone — exactly
    // the on-disk image a crash would leave.
    daemon_.reset();
    injector_.heal();
    disk_dead_ = false;
    daemon_ = make_daemon();
    // Durably-terminal jobs must come back exactly as they died.
    const auto jobs = job_table();
    for (const auto& [id, tracked] : tracked_) {
      if (!tracked.durable_terminal.has_value()) continue;
      const auto it = jobs.find(id);
      if (it == jobs.end()) {
        if (!options_.gc) {
          violation("job " + std::to_string(id) +
                    " lost across restart despite a durable terminal "
                    "state");
        }
        continue;
      }
      if (it->second.state != *tracked.durable_terminal) {
        violation("job " + std::to_string(id) +
                  " changed state across restart: " +
                  daemon::to_string(*tracked.durable_terminal) + " -> " +
                  daemon::to_string(it->second.state));
      }
    }
    // Session tokens normally survive; ones lost to the dead journal are
    // reopened so their tenants keep submitting.
    for (std::size_t u = 0; u < options_.users; ++u) {
      const auto token = tokens_.find(u);
      if (token == tokens_.end() ||
          !daemon_->sessions().authenticate(token->second).ok()) {
        open_session(u);
      }
    }
  }

  /// (Re)creates the hot standby: a fresh mirror dir under ha_dir_, a
  /// file source over the CURRENT leader dir, and a StandbyDaemon whose
  /// factory re-points the harness at the mirror when it promotes. The
  /// harness drives every pull itself (poll_thread=false) so replication
  /// advances only with virtual time.
  void start_standby() {
    if (!options_.federation || !options_.durable) return;
    ++standby_gen_;
    standby_dir_ =
        ha_dir_.path() + "/standby" + std::to_string(standby_gen_);
    std::error_code ec;
    std::filesystem::create_directories(standby_dir_, ec);
    if (ec) {
      violation("could not create standby dir: " + ec.message());
      return;
    }
    repl_source_ =
        std::make_unique<federation::FileReplicationSource>(data_dir_);
    federation::StandbyOptions standby_options;
    standby_options.data_dir = standby_dir_;
    standby_options.poll_thread = false;
    standby_ = std::make_unique<federation::StandbyDaemon>(
        standby_options, repl_source_.get(),
        [this](const std::string& dir)
            -> common::Result<std::unique_ptr<daemon::MiddlewareDaemon>> {
          data_dir_ = dir;
          return make_daemon();
        },
        &clock_, nullptr, nullptr);
  }

  /// One replication pull against the leader's files, honouring any
  /// active partition window. Rate-limited to the scrape grid so the
  /// quiescence loop's 2 ms advances don't re-scan the journal file on
  /// every step.
  void pump_replication() {
    if (standby_ == nullptr) return;
    const TimeNs now = clock_.now();
    repl_source_->set_partitioned(now < partition_until_);
    if (last_repl_poll_ >= 0 && now - last_repl_poll_ < scrape_interval_) {
      return;
    }
    last_repl_poll_ = now;
    (void)standby_->poll_once();
  }

  /// Replays a data dir through the production recovery path. Pure read;
  /// nothing running is touched.
  common::Result<store::RecoveredState> replay_dir(
      const std::string& dir) const {
    return store::RecoveryReplayer::replay(dir + "/journal.log",
                                           dir + "/snapshot.json");
  }

  /// Mirror equivalence probe: replaying the standby's mirror must
  /// recover the same state as replaying the leader's own disk — the
  /// "no-crash run" a restart of that leader would have seen. Returns ""
  /// when equivalent, else what diverged.
  std::string mirror_divergence(const std::string& leader_dir) {
    auto leader = replay_dir(leader_dir);
    auto mirror = replay_dir(standby_dir_);
    if (!leader.ok() || !mirror.ok()) {
      return "replay failed: " + (!leader.ok()
                                      ? leader.error().to_string()
                                      : mirror.error().to_string());
    }
    const std::string mismatch =
        mirror_mismatch(leader.value(), mirror.value());
    if (mismatch.empty()) return "";
    return "standby mirror diverged from the leader's durable state: " +
           mismatch + " (leader last_seq " +
           std::to_string(leader.value().last_seq) + ", mirror last_seq " +
           std::to_string(mirror.value().last_seq) + ")";
  }

  void check_mirror_equivalence(const std::string& leader_dir,
                                const std::string& what) {
    const std::string divergence = mirror_divergence(leader_dir);
    if (!divergence.empty()) violation(what + ": " + divergence);
  }

  /// The leader dies for good. The standby drains whatever the surviving
  /// disk can still serve, proves its mirror equals the dead leader's
  /// durable state, fences the epoch and promotes; the promoted daemon
  /// replaces the dead one for the rest of the scenario and a fresh
  /// standby starts mirroring the new leader. With `crash_mid_promotion`
  /// the standby dies between the fence and the daemon build, and the
  /// retried promotion must find the fence durable and bump the epoch
  /// again.
  void leader_kill(bool crash_mid_promotion) {
    if (standby_ == nullptr || daemon_->state_store() == nullptr) return;
    ++result_.stats.leader_kills;
    if (journal_healthy()) capture_durable_terminals();
    harvest_alerts();
    const std::string dead_dir = data_dir_;
    // Teardown stands in for the kill (same rule as restart()); the dead
    // leader's disk survives it, which is exactly what the final drain
    // and the equivalence check read.
    daemon_.reset();
    injector_.heal();
    disk_dead_ = false;
    // A link partition cannot outlive the leader process: the drain runs
    // straight off the surviving disk.
    partition_until_ = -1;
    repl_source_->set_partitioned(false);
    auto drained = standby_->replicator().catch_up();
    if (!drained.ok()) {
      violation("leader kill: final drain failed: " +
                drained.error().to_string());
    }
    check_mirror_equivalence(dead_dir, "leader kill");
    const std::uint64_t epoch_before = standby_->epoch();
    if (crash_mid_promotion) {
      bool crashed = false;
      standby_->set_promotion_crash_hook(
          [&crashed]() -> common::Status {
            if (crashed) return common::Status::ok_status();
            crashed = true;
            return common::err::io("injected crash mid-promotion");
          });
      auto first = standby_->promote();
      if (first.ok()) {
        violation("leader kill: mid-promotion crash hook never fired");
      }
      auto fenced = federation::read_epoch(standby_dir_);
      if (!fenced.ok() || fenced.value() <= epoch_before) {
        violation("leader kill: epoch fence not durable before the "
                  "mid-promotion crash");
      }
    }
    auto promoted = standby_->promote();
    if (!promoted.ok()) {
      violation("leader kill: promotion failed: " +
                promoted.error().to_string());
      // Keep the scenario alive on the old dir so quiescence still runs.
      data_dir_ = dead_dir;
      standby_.reset();
      repl_source_.reset();
      daemon_ = make_daemon();
      return;
    }
    const std::uint64_t epoch_after = standby_->epoch();
    if (epoch_after <= epoch_before ||
        (crash_mid_promotion && epoch_after < epoch_before + 2)) {
      violation("leader kill: promotion epochs did not strictly "
                "increase (" +
                std::to_string(epoch_before) + " -> " +
                std::to_string(epoch_after) + ")");
    }
    ++result_.stats.promotions;
    daemon_ = standby_->release_daemon();
    standby_.reset();
    repl_source_.reset();
    // Promotion restores exactly what a restart of the dead leader would
    // have: durably-terminal jobs unchanged, session tokens intact.
    const auto jobs = job_table();
    for (const auto& [id, tracked] : tracked_) {
      if (!tracked.durable_terminal.has_value()) continue;
      const auto it = jobs.find(id);
      if (it == jobs.end()) {
        if (!options_.gc) {
          violation("job " + std::to_string(id) +
                    " lost across promotion despite a durable terminal "
                    "state");
        }
        continue;
      }
      if (it->second.state != *tracked.durable_terminal) {
        violation("job " + std::to_string(id) +
                  " changed state across promotion: " +
                  daemon::to_string(*tracked.durable_terminal) + " -> " +
                  daemon::to_string(it->second.state));
      }
    }
    for (std::size_t u = 0; u < options_.users; ++u) {
      const auto token = tokens_.find(u);
      if (token == tokens_.end() ||
          !daemon_->sessions().authenticate(token->second).ok()) {
        open_session(u);
      }
    }
    start_standby();
  }

  std::map<std::uint64_t, daemon::DaemonJob> job_table() const {
    std::map<std::uint64_t, daemon::DaemonJob> out;
    for (const auto& job : daemon_->dispatcher().jobs_snapshot()) {
      out.emplace(job.id, job);
    }
    return out;
  }

  std::unique_ptr<daemon::MiddlewareDaemon> make_daemon() {
    daemon::DaemonOptions options;
    options.admin_key = "simtest";
    options.queue_policy.non_production_batch_shots = options_.batch_shots;
    options.queue_policy.submit_shards = options_.submit_shards;
    // Probe cadence scaled to the scenario horizon so flapped resources
    // re-probe (in virtual time) well before quiescence.
    options.broker.probe_interval = common::kSecond;
    options.broker.initial_backoff = 100 * common::kMillisecond;
    options.broker.max_backoff = 2 * common::kSecond;
    for (std::size_t u = 0; u < options_.users; ++u) {
      // Descending shares: u0 the best-funded tenant, the tail shares 10.
      const double shares = u == 0 ? 50.0 : u == 1 ? 30.0 : u == 2 ? 20.0
                                                                   : 10.0;
      options.accounting.fair_share.user_shares[user_name(u)] = {"sim",
                                                                 shares};
    }
    if (options_.rate_limits) {
      options.accounting.rate_limit.submit_per_sec = 25.0;
      options.accounting.rate_limit.submit_burst = 6.0;
      options.accounting.rate_limit.max_inflight_shots =
          options_.max_shots * 64;
    }
    if (options_.durable) {
      // data_dir_ starts as the scenario's own temp dir and re-points at
      // the standby's mirror when a leader kill promotes it.
      options.store.data_dir = data_dir_;
      options.store.journal.sync = store::SyncMode::kAlways;
      // Compaction is a scheduled fault event, not a background race.
      options.store.compact_every_events = 0;
      // First life of a migration scenario writes the legacy JSON-lines
      // format; every later life runs with the v2 default and must read,
      // append to, and (on kCompact) transparently migrate the v1 file.
      if (options_.journal_v1_start && lives_ == 0) {
        options.store.journal.format = store::JournalFormat::kJsonV1;
      }
    }
    if (options_.gc) options.store.terminal_job_cap = kGcCap;
    // Wide start-window slack for the in-scenario estimates (crash
    // coverage only — the step loop fast-forwards the clock, so these
    // predictions are never held to account; run_eta_probe's paced phase
    // owns calibration).
    options.telemetry.eta.start_slack = options_.horizon / 2;
    // Tracing stays on (the production default): the invariants verify
    // every terminal job's span tree, and the store is sized so no trace
    // the scenario can generate — including storm rejections — is ever
    // evicted mid-run.
    options.telemetry.trace_capacity = 1 << 16;
    options.telemetry.event_capacity = 1 << 14;
    // The live metrics pipeline under simulation: no scrape thread (the
    // harness owns the grid via tick_at), catch-up scrapes every missed
    // deadline, and burn windows sized in grid ticks so SLO evaluation is
    // meaningful at any seed's horizon.
    auto& obs = options.telemetry.observability;
    obs.enabled = options_.observability;
    if (options_.observability) {
      obs.scrape_thread = false;
      obs.scrape_all_overdue = true;
      obs.scrape_interval = scrape_interval_;
      obs.slo_short_window = 4 * scrape_interval_;
      obs.slo_long_window = 16 * scrape_interval_;
      obs.drift_warmup = kDriftWarmup;
    }
    qrmi::ResourceRegistry fleet;
    for (std::size_t i = 0; i < emus_.size(); ++i) {
      fleet.add(emu_name(i), emus_[i]);
    }
    ++lives_;
    auto daemon = std::make_unique<daemon::MiddlewareDaemon>(
        options, fleet, nullptr, &clock_);
    // Idle lanes re-check queues every 0.5 ms of real time: recovery from
    // flaps is bounded by microseconds, not the production 20 ms tick.
    daemon->dispatcher().set_idle_tick(common::kMillisecond / 2);
    return daemon;
  }

  /// A daemon whose every observable is seed-pure: no durable store (a
  /// replayed journal's record order is interleaving-dependent), no
  /// observability (an empty TSDB pins the eta engine to its fallback
  /// batch latency), same queue topology as the scenario proper.
  std::unique_ptr<daemon::MiddlewareDaemon> make_probe_daemon() {
    daemon::DaemonOptions options;
    options.admin_key = "simtest";
    options.queue_policy.non_production_batch_shots = options_.batch_shots;
    options.queue_policy.submit_shards = options_.submit_shards;
    if (options_.rate_limits) {
      options.accounting.rate_limit.submit_per_sec = 25.0;
      options.accounting.rate_limit.submit_burst = 6.0;
    }
    options.telemetry.observability.enabled = false;
    qrmi::ResourceRegistry fleet;
    for (std::size_t i = 0; i < emus_.size(); ++i) {
      fleet.add(emu_name(i), emus_[i]);
    }
    auto daemon = std::make_unique<daemon::MiddlewareDaemon>(
        options, fleet, nullptr, &clock_);
    // Same fast idle tick as the scenario daemon: the paced calibration
    // phase relies on lanes noticing queued work within microseconds of
    // real time.
    daemon->dispatcher().set_idle_tick(common::kMillisecond / 2);
    return daemon;
  }

  const ScenarioOptions& options_;
  ScenarioResult& result_;
  common::ManualClock clock_;
  /// Scrape grid, owned by the harness (see pump_scrapes).
  DurationNs scrape_interval_ = 0;
  std::uint64_t grid_idx_ = 1;
  std::uint64_t max_grid_ = 0;
  std::vector<std::pair<TimeNs, TimeNs>> stall_windows_;
  std::vector<telemetry::AlertRecord> past_alerts_;
  bool expect_drift_alert_ = false;
  common::TempDir dir_{"qcenv-simtest-"};
  /// The live leader's store dir (dir_ until a promotion re-points it).
  std::string data_dir_ = dir_.path();
  /// Standby mirror dirs live OUTSIDE the leader dir (a mirror inside it
  /// would recursively ship itself).
  common::TempDir ha_dir_{"qcenv-simtest-ha-"};
  std::unique_ptr<federation::FileReplicationSource> repl_source_;
  std::unique_ptr<federation::StandbyDaemon> standby_;
  std::string standby_dir_;
  std::size_t standby_gen_ = 0;
  TimeNs partition_until_ = -1;
  TimeNs last_repl_poll_ = -1;
  store::CountingFaultInjector injector_;
  bool disk_dead_ = false;
  std::size_t lives_ = 0;  // daemon incarnations (1 = the first boot)
  std::vector<std::shared_ptr<qrmi::LocalEmulatorQrmi>> emus_;
  std::vector<std::shared_ptr<EmuModel>> models_;
  std::unique_ptr<daemon::MiddlewareDaemon> daemon_;
  std::map<std::size_t, std::string> tokens_;
  std::map<std::uint64_t, TrackedJob> tracked_;
  /// Paced-probe calibration samples (see run_eta_probe phase 2).
  std::vector<InvariantInput::EtaSample> eta_samples_;
  common::Rng storm_rng_;
};

}  // namespace

ScenarioResult run_scenario(const ScenarioOptions& options) {
  ScenarioResult result;
  result.seed = options.seed;

  common::Rng root(options.seed);
  common::Rng fault_rng = root.fork(1);
  common::Rng load_rng = root.fork(2);

  FaultPlanOptions fault_options = options.faults;
  fault_options.fleet_size = options.fleet_size;
  fault_options.users = options.users;
  fault_options.horizon = options.horizon;
  if (!options.durable) {
    fault_options.restarts = 0;
    fault_options.disk_fault = false;
    fault_options.compactions = 0;
  }
  if (!options.durable || !options.federation) {
    fault_options.peer_partitions = 0;
    fault_options.torn_segments = 0;
    fault_options.leader_kills = 0;
  }
  const FaultPlan plan = make_fault_plan(fault_rng, fault_options);
  result.plan = plan.to_string();
  const std::vector<Submission> load = make_workload(load_rng, options);

  // One timeline: submissions and faults interleaved by virtual time.
  struct Step {
    DurationNs at;
    bool is_fault;
    std::size_t index;
  };
  std::vector<Step> timeline;
  timeline.reserve(load.size() + plan.events.size());
  for (std::size_t i = 0; i < load.size(); ++i) {
    timeline.push_back({load[i].at, false, i});
  }
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    timeline.push_back({plan.events[i].at, true, i});
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const Step& a, const Step& b) { return a.at < b.at; });

  SimWorld world(options, result);
  world.prepare_observability(plan);
  for (const auto& step : timeline) {
    // Catch-up jump (lanes may already have nudged virtual time past the
    // step through their poll sleeps — events then fire back-to-back, in
    // order, which preserves the schedule's semantics).
    world.clock().advance_to(step.at);
    // Grid deadlines the jump passed fire before the step itself: a
    // scrape scheduled at or before t observes the world as of t.
    world.pump_scrapes();
    if (step.is_fault) {
      world.apply(plan.events[step.index]);
    } else {
      const Submission& submission = load[step.index];
      world.submit(submission.user, submission.cls, submission.shots);
    }
  }
  world.drive_to_quiescence();
  world.finish_scrapes();
  auto input = world.gather();
  // The mirror check needs the idle post-gather daemon; the probe below
  // replaces it.
  world.verify_replication();
  // The probe replaces the scenario daemon, so it must run after gather;
  // its calibration samples feed the invariant check below.
  world.run_eta_probe();
  input.eta_samples = world.eta_samples();
  auto violations = check_invariants(input);
  result.violations.insert(result.violations.end(), violations.begin(),
                           violations.end());
  return result;
}

ScenarioOptions scenario_for_seed(std::uint64_t seed, bool quick) {
  common::Rng rng(seed ^ 0xC0FFEE5EEDull);
  ScenarioOptions options;
  options.seed = seed;
  options.fleet_size =
      static_cast<std::size_t>(rng.uniform_int(1, 3));
  options.users = static_cast<std::size_t>(rng.uniform_int(2, 4));
  options.jobs = static_cast<std::size_t>(
      quick ? rng.uniform_int(10, 18) : rng.uniform_int(18, 40));
  options.min_shots = 20;
  options.max_shots =
      static_cast<std::uint64_t>(quick ? 100 : rng.uniform_int(100, 240));
  const std::int64_t batch = rng.uniform_int(0, 2);
  options.batch_shots = batch == 0 ? 8 : batch == 1 ? 16 : 32;
  options.durable = rng.bernoulli(0.75);
  options.gc = rng.bernoulli(0.2);
  options.latency = rng.bernoulli(0.3);
  options.rate_limits = rng.bernoulli(0.8);
  options.horizon = static_cast<DurationNs>(
      rng.uniform_int(20, 40) * common::kSecond);
  options.faults.flaps = static_cast<std::size_t>(rng.uniform_int(1, 3));
  options.faults.drains =
      static_cast<std::size_t>(rng.uniform_int(0, 1));
  options.faults.global_drain = rng.bernoulli(0.25);
  options.faults.cancels =
      static_cast<std::size_t>(rng.uniform_int(1, 4));
  options.faults.session_churns =
      static_cast<std::size_t>(rng.uniform_int(0, 1));
  options.faults.restarts = options.durable
                                ? static_cast<std::size_t>(
                                      rng.uniform_int(0, 2))
                                : 0;
  options.faults.disk_fault = options.durable && rng.bernoulli(0.35);
  options.faults.compactions = options.durable
                                   ? static_cast<std::size_t>(
                                         rng.uniform_int(0, 2))
                                   : 0;
  options.faults.storms =
      static_cast<std::size_t>(rng.uniform_int(0, 2));
  options.faults.brownout_prob = rng.bernoulli(0.3) ? 0.01 : 0.0;
  // Shard topology is part of the seed (1 = the unsharded layout), so
  // every invariant is exercised against every topology.
  options.submit_shards = std::size_t{1}
                          << static_cast<std::size_t>(rng.uniform_int(0, 3));
  // Format-migration lives: start on a v1 journal, restart into v2, and
  // guarantee at least one compaction so the migration actually runs;
  // sometimes crash a compaction mid-rewrite.
  options.journal_v1_start = options.durable && rng.bernoulli(0.35);
  if (options.journal_v1_start) {
    options.faults.compactions = std::max<std::size_t>(
        options.faults.compactions, 1);
    options.faults.restarts = std::max<std::size_t>(
        options.faults.restarts, 1);
  }
  options.faults.compact_crashes =
      options.durable && rng.bernoulli(0.25) ? 1 : 0;
  // Metrics-pipeline faults: a calibration drift on roughly a third of
  // seeds (the invariant demands an alert only when the plan guarantees
  // one — see SimWorld::prepare_observability), a scrape stall on a
  // fifth. The grid interval derives from the horizon (~128 scrapes).
  options.faults.calib_drifts = rng.bernoulli(0.35) ? 1 : 0;
  options.faults.scrape_stalls = rng.bernoulli(0.2) ? 1 : 0;
  // Mid-run explainability queries (drawn last: earlier derivations stay
  // identical to pre-eta sweep generations, so seeds replay unchanged).
  options.faults.eta_probes =
      static_cast<std::size_t>(rng.uniform_int(0, 2));
  // Federated HA seeds (drawn after everything older, same stability
  // rule): a hot standby mirrors the leader via journal shipping, under
  // link partitions, torn shipped segments and permanent leader kills
  // with fenced promotion.
  options.federation = options.durable && rng.bernoulli(0.4);
  if (options.federation) {
    // The shipping protocol is v2-only; format-migration seeds run
    // unfederated (the forced compactions/restarts drawn above remain).
    options.journal_v1_start = false;
    options.faults.peer_partitions = rng.bernoulli(0.5) ? 1 : 0;
    options.faults.torn_segments = rng.bernoulli(0.5) ? 1 : 0;
    options.faults.leader_kills = rng.bernoulli(0.5) ? 1 : 0;
  }
  return options;
}

}  // namespace qcenv::simtest
