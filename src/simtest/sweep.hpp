// Seed sweep: runs N seeded scenarios back to back and reports every
// failure with its seed and expanded fault schedule, so any red sweep is
// one `simtest_sweep --seed <N>` away from a local replay. CI runs 200
// quick seeds per push and a larger sweep nightly; every future PR gets a
// regression sweep over crash/flap/tenant-storm scenarios for free.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "simtest/scenario.hpp"

namespace qcenv::simtest {

struct SweepOptions {
  std::uint64_t first_seed = 1;
  std::size_t seeds = 200;
  /// Smaller workloads per seed (the CI budget); nightly runs without.
  bool quick = true;
  /// Log every seed's summary line, not just failures.
  bool verbose = false;
  /// When non-empty, failing seeds + schedules are appended here (CI
  /// uploads the file as a build artifact).
  std::string artifact_path;
  /// Dump each failing seed's structured-event log and per-job traces
  /// (JSON) alongside its fault schedule — `simtest_sweep --trace`.
  bool trace = false;
  /// Force every seed onto the federated/hot-standby path (durable store,
  /// journal shipping, at least one leader kill with fenced promotion) —
  /// the CI HA slice. Normal sweeps still cover HA on the ~40% of durable
  /// seeds that draw it organically.
  bool ha = false;
};

struct SweepOutcome {
  std::size_t ran = 0;
  std::vector<ScenarioResult> failures;
  bool ok() const { return failures.empty(); }
};

/// Runs the sweep, streaming progress to `log`.
SweepOutcome run_sweep(const SweepOptions& options, std::ostream& log);

/// One-line scenario summary ("seed 17: 14 jobs, 12 completed, ...").
std::string summary_line(const ScenarioResult& result);

}  // namespace qcenv::simtest
