#include "simtest/fault_plan.hpp"

#include <algorithm>
#include <limits>

namespace qcenv::simtest {

using common::DurationNs;

const char* to_string(FaultOp op) noexcept {
  switch (op) {
    case FaultOp::kQpuOffline: return "qpu_offline";
    case FaultOp::kQpuOnline: return "qpu_online";
    case FaultOp::kDrainResource: return "drain_resource";
    case FaultOp::kResumeResource: return "resume_resource";
    case FaultOp::kDrainAll: return "drain_all";
    case FaultOp::kResumeAll: return "resume_all";
    case FaultOp::kCancelJob: return "cancel_job";
    case FaultOp::kCloseSession: return "close_session";
    case FaultOp::kKillRestart: return "kill_restart";
    case FaultOp::kJournalFailStop: return "journal_fail_stop";
    case FaultOp::kTornTail: return "torn_tail";
    case FaultOp::kCompact: return "compact";
    case FaultOp::kCompactCrash: return "compact_crash";
    case FaultOp::kSubmitStorm: return "submit_storm";
    case FaultOp::kCalibrationDrift: return "calibration_drift";
    case FaultOp::kScrapeStall: return "scrape_stall";
    case FaultOp::kEtaProbe: return "eta_probe";
    case FaultOp::kPeerPartition: return "peer_partition";
    case FaultOp::kTornSegment: return "torn_segment";
    case FaultOp::kLeaderKill: return "leader_kill";
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  std::string out = "t=+";
  out += std::to_string(at / common::kMillisecond);
  out += "ms ";
  out += simtest::to_string(op);
  switch (op) {
    case FaultOp::kQpuOffline:
    case FaultOp::kQpuOnline:
    case FaultOp::kDrainResource:
    case FaultOp::kResumeResource:
      out += " emu" + std::to_string(target);
      break;
    case FaultOp::kCloseSession:
    case FaultOp::kSubmitStorm:
      out += " user" + std::to_string(target);
      if (op == FaultOp::kSubmitStorm) {
        out += " burst=" + std::to_string(param);
      }
      break;
    case FaultOp::kJournalFailStop:
      out += " after+" + std::to_string(param) + " writes";
      break;
    case FaultOp::kTornTail:
      out += " keep=" + std::to_string(param) + "B";
      break;
    case FaultOp::kCancelJob:
    case FaultOp::kEtaProbe:
      out += " pick=" + std::to_string(param);
      break;
    case FaultOp::kCompactCrash:
      out += " atomic_write=" + std::to_string(param);
      break;
    case FaultOp::kCalibrationDrift:
      out += " emu" + std::to_string(target) + " rate=" +
             std::to_string(param) + "/1000 per s";
      break;
    case FaultOp::kScrapeStall:
    case FaultOp::kPeerPartition:
      out += " for=" + std::to_string(param) + "ms";
      break;
    case FaultOp::kLeaderKill:
      if (param == 1) out += " crash_mid_promotion";
      break;
    default:
      break;
  }
  return out;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& event : events) {
    out += "  ";
    out += event.to_string();
    out += '\n';
  }
  if (out.empty()) out = "  (no faults)\n";
  return out;
}

FaultPlan make_fault_plan(common::Rng& rng,
                          const FaultPlanOptions& options) {
  FaultPlan plan;
  const double horizon = static_cast<double>(options.horizon);
  // Virtual timestamp at `frac` of the horizon.
  const auto at = [&](double lo, double hi) {
    return static_cast<DurationNs>(horizon * rng.uniform(lo, hi));
  };
  const auto pick_resource = [&] {
    return static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(options.fleet_size) - 1));
  };
  const auto pick_user = [&] {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(options.users) - 1));
  };

  for (std::size_t i = 0; i < options.flaps; ++i) {
    const std::size_t target = pick_resource();
    const DurationNs start = at(0.05, 0.65);
    // Outage length: usually short, occasionally a large fraction of the
    // run, never past 90% of the horizon (the fleet must heal to drain
    // the queue before quiescence).
    DurationNs down = static_cast<DurationNs>(
        horizon * std::min(rng.exponential_mean(0.08), 0.25));
    plan.events.push_back({start, FaultOp::kQpuOffline, target, 0});
    plan.events.push_back({start + down, FaultOp::kQpuOnline, target, 0});
  }
  // Rolling maintenance only makes sense with a peer to take the load.
  if (options.fleet_size > 1) {
    for (std::size_t i = 0; i < options.drains; ++i) {
      const std::size_t target = pick_resource();
      const DurationNs start = at(0.1, 0.6);
      const DurationNs window =
          static_cast<DurationNs>(horizon * rng.uniform(0.05, 0.2));
      plan.events.push_back({start, FaultOp::kDrainResource, target, 0});
      plan.events.push_back(
          {start + window, FaultOp::kResumeResource, target, 0});
    }
  }
  if (options.global_drain) {
    const DurationNs start = at(0.2, 0.5);
    const DurationNs window =
        static_cast<DurationNs>(horizon * rng.uniform(0.03, 0.12));
    plan.events.push_back({start, FaultOp::kDrainAll, 0, 0});
    plan.events.push_back({start + window, FaultOp::kResumeAll, 0, 0});
  }
  for (std::size_t i = 0; i < options.cancels; ++i) {
    plan.events.push_back({at(0.1, 0.85), FaultOp::kCancelJob, 0,
                           static_cast<std::uint64_t>(rng.uniform_int(
                               0, std::numeric_limits<std::int64_t>::max()))});
  }
  for (std::size_t i = 0; i < options.session_churns; ++i) {
    plan.events.push_back({at(0.15, 0.7), FaultOp::kCloseSession,
                           pick_user(), 0});
  }
  for (std::size_t i = 0; i < options.storms; ++i) {
    plan.events.push_back(
        {at(0.1, 0.75), FaultOp::kSubmitStorm, pick_user(),
         static_cast<std::uint64_t>(rng.uniform_int(8, 20))});
  }
  for (std::size_t i = 0; i < options.calib_drifts; ++i) {
    // Onset at 30-50% of the horizon: the drift detectors' warmup window
    // (~20 scrapes at the sweep's grid) completes on the stable baseline
    // first, and plenty of post-onset scrapes remain to alarm on.
    plan.events.push_back(
        {at(0.3, 0.5), FaultOp::kCalibrationDrift, pick_resource(),
         static_cast<std::uint64_t>(rng.uniform_int(25, 80))});
  }
  for (std::size_t i = 0; i < options.scrape_stalls; ++i) {
    plan.events.push_back(
        {at(0.2, 0.6), FaultOp::kScrapeStall, 0,
         static_cast<std::uint64_t>(rng.uniform_int(500, 3000))});
  }
  for (std::size_t i = 0; i < options.compactions; ++i) {
    plan.events.push_back({at(0.3, 0.9), FaultOp::kCompact, 0, 0});
  }
  for (std::size_t i = 0; i < options.compact_crashes; ++i) {
    // param picks WHICH atomic rewrite of the compaction dies: 0 is the
    // snapshot, 1 the journal rewrite (mid-migration when formats
    // differ). The guaranteed restart checks the pre-crash image.
    const DurationNs when = at(0.25, 0.7);
    plan.events.push_back(
        {when, FaultOp::kCompactCrash, 0,
         static_cast<std::uint64_t>(rng.uniform_int(0, 1))});
    plan.events.push_back(
        {when + static_cast<DurationNs>(horizon * rng.uniform(0.02, 0.08)),
         FaultOp::kKillRestart, 0, 0});
  }
  for (std::size_t i = 0; i < options.restarts; ++i) {
    plan.events.push_back({at(0.2, 0.85), FaultOp::kKillRestart, 0, 0});
  }
  if (options.disk_fault) {
    // The disk dies at an arbitrary journal offset (a small delta past
    // wherever the journal happens to be when the event fires), sometimes
    // tearing the line it was mid-way through; a restart must follow —
    // only a new life reopens the journal.
    const DurationNs when = at(0.3, 0.7);
    if (rng.bernoulli(0.5)) {
      plan.events.push_back(
          {when, FaultOp::kJournalFailStop, 0,
           static_cast<std::uint64_t>(rng.uniform_int(0, 6))});
    } else {
      plan.events.push_back(
          {when, FaultOp::kTornTail, 0,
           static_cast<std::uint64_t>(rng.uniform_int(1, 40))});
    }
    plan.events.push_back(
        {when + static_cast<DurationNs>(horizon * rng.uniform(0.03, 0.1)),
         FaultOp::kKillRestart, 0, 0});
  }

  // Drawn LAST so every schedule above is byte-identical to plans built
  // before eta probes existed (seed stability across sweep generations).
  for (std::size_t i = 0; i < options.eta_probes; ++i) {
    plan.events.push_back({at(0.1, 0.8), FaultOp::kEtaProbe, 0,
                           static_cast<std::uint64_t>(rng.uniform_int(
                               0, std::numeric_limits<std::int64_t>::max()))});
  }
  // HA ops, also appended after everything older (same stability rule).
  for (std::size_t i = 0; i < options.peer_partitions; ++i) {
    plan.events.push_back(
        {at(0.15, 0.6), FaultOp::kPeerPartition, 0,
         static_cast<std::uint64_t>(rng.uniform_int(300, 3000))});
  }
  for (std::size_t i = 0; i < options.torn_segments; ++i) {
    plan.events.push_back({at(0.2, 0.7), FaultOp::kTornSegment, 0, 0});
  }
  for (std::size_t i = 0; i < options.leader_kills; ++i) {
    // Late enough that real state exists to fail over; param==1 crashes
    // the standby between the epoch fence and the daemon build, and the
    // harness retries promotion (epochs must strictly increase).
    plan.events.push_back({at(0.35, 0.7), FaultOp::kLeaderKill, 0,
                           rng.bernoulli(0.5) ? std::uint64_t{1}
                                              : std::uint64_t{0}});
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace qcenv::simtest
