#include "qrmi/qrmi.hpp"

#include <thread>

namespace qcenv::qrmi {

const char* to_string(ResourceType type) noexcept {
  switch (type) {
    case ResourceType::kLocalEmulator: return "local-emulator";
    case ResourceType::kDirectAccess: return "direct-access";
    case ResourceType::kCloudQpu: return "cloud-qpu";
    case ResourceType::kCloudEmulator: return "cloud-emulator";
  }
  return "?";
}

common::Result<ResourceType> resource_type_from_string(const std::string& s) {
  if (s == "local-emulator") return ResourceType::kLocalEmulator;
  if (s == "direct-access") return ResourceType::kDirectAccess;
  if (s == "cloud-qpu") return ResourceType::kCloudQpu;
  if (s == "cloud-emulator") return ResourceType::kCloudEmulator;
  return common::err::invalid_argument("unknown QRMI resource type: " + s);
}

const char* to_string(TaskStatus status) noexcept {
  switch (status) {
    case TaskStatus::kQueued: return "queued";
    case TaskStatus::kRunning: return "running";
    case TaskStatus::kCompleted: return "completed";
    case TaskStatus::kFailed: return "failed";
    case TaskStatus::kCancelled: return "cancelled";
  }
  return "?";
}

common::Result<quantum::Samples> Qrmi::run_sync(
    const quantum::Payload& payload, common::DurationNs poll_interval,
    common::Clock* clock) {
  auto task = task_start(payload);
  if (!task.ok()) return task.error();
  const std::string& id = task.value();
  while (true) {
    auto status = task_status(id);
    if (!status.ok()) {
      // Best-effort cancel so a task we can no longer observe does not keep
      // consuming the resource (the caller will re-dispatch elsewhere).
      (void)task_stop(id);
      return status.error();
    }
    if (is_terminal(status.value())) break;
    if (clock != nullptr) {
      clock->sleep_for(poll_interval);
      // A virtual clock may return instantly (auto-advancing manual
      // clocks do): hand the core to the worker actually running the
      // task instead of spinning on task_status.
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(poll_interval));
    }
  }
  return task_result(id);
}

}  // namespace qcenv::qrmi
