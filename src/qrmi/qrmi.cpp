#include "qrmi/qrmi.hpp"

#include <chrono>
#include <thread>

namespace qcenv::qrmi {

const char* to_string(ResourceType type) noexcept {
  switch (type) {
    case ResourceType::kLocalEmulator: return "local-emulator";
    case ResourceType::kDirectAccess: return "direct-access";
    case ResourceType::kCloudQpu: return "cloud-qpu";
    case ResourceType::kCloudEmulator: return "cloud-emulator";
  }
  return "?";
}

common::Result<ResourceType> resource_type_from_string(const std::string& s) {
  if (s == "local-emulator") return ResourceType::kLocalEmulator;
  if (s == "direct-access") return ResourceType::kDirectAccess;
  if (s == "cloud-qpu") return ResourceType::kCloudQpu;
  if (s == "cloud-emulator") return ResourceType::kCloudEmulator;
  return common::err::invalid_argument("unknown QRMI resource type: " + s);
}

const char* to_string(TaskStatus status) noexcept {
  switch (status) {
    case TaskStatus::kQueued: return "queued";
    case TaskStatus::kRunning: return "running";
    case TaskStatus::kCompleted: return "completed";
    case TaskStatus::kFailed: return "failed";
    case TaskStatus::kCancelled: return "cancelled";
  }
  return "?";
}

namespace {
common::TimeNs run_sync_now(const common::Clock* clock) {
  if (clock != nullptr) return clock->now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

common::Result<quantum::Samples> Qrmi::run_sync(
    const quantum::Payload& payload, common::DurationNs poll_interval,
    common::Clock* clock, RunStats* stats) {
  auto task = task_start(payload);
  if (!task.ok()) return task.error();
  const std::string& id = task.value();
  if (stats != nullptr) stats->poll_start = run_sync_now(clock);
  while (true) {
    auto status = task_status(id);
    if (stats != nullptr) {
      ++stats->polls;
      stats->poll_end = run_sync_now(clock);
    }
    if (!status.ok()) {
      // Best-effort cancel so a task we can no longer observe does not keep
      // consuming the resource (the caller will re-dispatch elsewhere).
      (void)task_stop(id);
      if (stats != nullptr) stats->result_end = stats->poll_end;
      return status.error();
    }
    if (is_terminal(status.value())) break;
    if (clock != nullptr) {
      clock->sleep_for(poll_interval);
      // A virtual clock may return instantly (auto-advancing manual
      // clocks do): hand the core to the worker actually running the
      // task instead of spinning on task_status.
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(poll_interval));
    }
  }
  auto result = task_result(id);
  if (stats != nullptr) stats->result_end = run_sync_now(clock);
  return result;
}

}  // namespace qcenv::qrmi
