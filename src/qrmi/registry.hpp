// Resource registry: names -> QRMI instances.
//
// This is the substrate of the paper's `--qpu=<resource>` switch: all
// resources (local emulators, cloud endpoints, the on-prem QPU) are looked
// up by name through one registry. Emulator and cloud resources can be
// declared in configuration (QRMI is "configured through environment
// variables", §3.4); direct-access resources are registered by the hosting
// site's daemon, which owns the device objects.
//
// Config schema (keys relative to a prefix, default "QRMI_"):
//   QRMI_RESOURCES=frontend-emu,cloud-emu         # comma-separated names
//   QRMI_<NAME>_TYPE=local-emulator|cloud-qpu|cloud-emulator
//   QRMI_<NAME>_ENGINE=sv|mps|mps:<chi>|mps-mock  # local-emulator only
//   QRMI_<NAME>_SEED=<int>                        # local-emulator only
//   QRMI_<NAME>_PORT=<port>                       # cloud types
//   QRMI_<NAME>_API_KEY=<key>                     # cloud types
// <NAME> is the resource name uppercased with '-' replaced by '_'.
// Errors name the offending resource and config key.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "qrmi/qrmi.hpp"

namespace qcenv::qrmi {

class ResourceRegistry {
 public:
  /// Registers (or replaces) a named resource. Replacement keeps the
  /// original registration position.
  void add(const std::string& name, QrmiPtr resource);

  common::Result<QrmiPtr> lookup(const std::string& name) const;
  bool contains(const std::string& name) const;
  /// Names in registration order (== QRMI_RESOURCES declaration order when
  /// loaded from config); consumers like the broker fleet preserve it, so
  /// the first declared resource is the daemon's "primary".
  std::vector<std::string> names() const;
  std::size_t size() const { return resources_.size(); }

  /// Instantiates every resource declared in `config` (see schema above).
  /// Stops at the first invalid declaration.
  common::Status load_from_config(const common::Config& config,
                                  const std::string& prefix = "QRMI_");

 private:
  std::map<std::string, QrmiPtr> resources_;
  std::vector<std::string> order_;  // registration order for names()
};

/// "frontend-emu" -> "FRONTEND_EMU" (for config key derivation).
std::string config_key_name(const std::string& resource_name);

}  // namespace qcenv::qrmi
