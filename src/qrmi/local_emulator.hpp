// QRMI resource type "local-emulator": the paper's extension of QRMI to
// locally running emulators. Tasks execute on a worker thread so the
// interface behaves asynchronously like the other resource types.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/clock.hpp"
#include "emulator/backend.hpp"
#include "qrmi/qrmi.hpp"

namespace qcenv::qrmi {

/// Injection hooks for the simulation harness (src/simtest) and fault
/// tests: per-task start failures (node brownouts between the broker's
/// health probes), virtual-time execution latency, and — strictly for
/// proving that invariant sweeps catch real bugs — result corruption.
/// All hooks are optional; unset hooks cost nothing on the task path.
struct EmulatorFaultHooks {
  /// Consulted at task_start; a returned error fails the start with that
  /// error (kUnavailable/kIo/kTimeout trigger the dispatcher's failover
  /// path, anything else its spec-rejection path).
  std::function<std::optional<common::Error>(const quantum::Payload&)>
      on_start;
  /// Virtual execution time for a task of `shots` shots. With a clock
  /// installed via set_fault_hooks the task reports kRunning until
  /// clock->now() passes start + latency — so batch durations (and the
  /// QPU time the accounting ledger charges) follow injected virtual
  /// time, never the host's scheduling noise.
  std::function<common::DurationNs(std::uint64_t shots)> latency;
  /// Applied to completed samples on fetch. Used ONLY to plant deliberate
  /// invariant violations (e.g. silently dropping shots) and prove the
  /// simtest sweep detects them.
  std::function<quantum::Samples(quantum::Samples)> corrupt_result;
  /// Applied to the DeviceSpec returned by target(). Drives calibration
  /// drift in simulation: the harness degrades calibration fields as a pure
  /// function of virtual time so drift alerts replay deterministically.
  std::function<void(quantum::DeviceSpec&)> mutate_spec;
};

class LocalEmulatorQrmi final
    : public Qrmi,
      public std::enable_shared_from_this<LocalEmulatorQrmi> {
 public:
  /// `backend_kind` as accepted by make_emulator_backend ("sv", "mps",
  /// "mps:<chi>", "mps-mock").
  static common::Result<std::shared_ptr<LocalEmulatorQrmi>> create(
      std::string resource_id, const std::string& backend_kind,
      emulator::RunOptions run_options = {});

  std::string resource_id() const override { return resource_id_; }
  ResourceType type() const override { return ResourceType::kLocalEmulator; }
  common::Result<bool> is_accessible() override { return !offline_.load(); }

  /// Ops/test hook: simulates the node hosting this emulator going down.
  /// While offline, is_accessible() reports false and task_start() fails
  /// with kUnavailable; tasks already running are allowed to finish.
  void set_offline(bool offline) { offline_.store(offline); }
  bool offline() const { return offline_.load(); }

  /// Installs (or, with an empty struct, clears) the fault hooks. `clock`
  /// is required for the latency hook (virtual completion gating) and may
  /// be null otherwise. Thread-safe; applies to tasks started afterwards.
  void set_fault_hooks(EmulatorFaultHooks hooks,
                       common::Clock* clock = nullptr);

  common::Result<std::string> acquire() override;
  common::Status release(const std::string& token) override;

  common::Result<std::string> task_start(
      const quantum::Payload& payload) override;
  common::Result<TaskStatus> task_status(const std::string& task_id) override;
  common::Result<quantum::Samples> task_result(
      const std::string& task_id) override;
  common::Status task_stop(const std::string& task_id) override;

  common::Result<quantum::DeviceSpec> target() override;
  common::Json metadata() override;

 private:
  LocalEmulatorQrmi(std::string resource_id, std::string backend_kind,
                    std::unique_ptr<emulator::Backend> backend,
                    emulator::RunOptions run_options);

  struct Task {
    TaskStatus status = TaskStatus::kQueued;
    std::optional<quantum::Samples> samples;
    std::optional<common::Error> error;
    std::future<void> completion;
    /// Virtual completion gate (latency hook): while the injected clock
    /// reads earlier than this, a finished task still reports kRunning.
    common::TimeNs ready_at = 0;
  };

  /// True once `task`'s virtual completion gate has passed (always true
  /// without a latency clock). Caller must hold mutex_.
  bool ready_locked(const Task& task) const;

  std::string resource_id_;
  std::string backend_kind_;
  std::unique_ptr<emulator::Backend> backend_;
  emulator::RunOptions run_options_;
  std::atomic<std::uint64_t> next_task_{1};
  std::atomic<std::uint64_t> seed_counter_{1};
  std::atomic<bool> offline_{false};

  std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Task>> tasks_;
  EmulatorFaultHooks fault_hooks_;
  common::Clock* fault_clock_ = nullptr;
};

}  // namespace qcenv::qrmi
