// QRMI resource type "local-emulator": the paper's extension of QRMI to
// locally running emulators. Tasks execute on a worker thread so the
// interface behaves asynchronously like the other resource types.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "emulator/backend.hpp"
#include "qrmi/qrmi.hpp"

namespace qcenv::qrmi {

class LocalEmulatorQrmi final
    : public Qrmi,
      public std::enable_shared_from_this<LocalEmulatorQrmi> {
 public:
  /// `backend_kind` as accepted by make_emulator_backend ("sv", "mps",
  /// "mps:<chi>", "mps-mock").
  static common::Result<std::shared_ptr<LocalEmulatorQrmi>> create(
      std::string resource_id, const std::string& backend_kind,
      emulator::RunOptions run_options = {});

  std::string resource_id() const override { return resource_id_; }
  ResourceType type() const override { return ResourceType::kLocalEmulator; }
  common::Result<bool> is_accessible() override { return !offline_.load(); }

  /// Ops/test hook: simulates the node hosting this emulator going down.
  /// While offline, is_accessible() reports false and task_start() fails
  /// with kUnavailable; tasks already running are allowed to finish.
  void set_offline(bool offline) { offline_.store(offline); }
  bool offline() const { return offline_.load(); }

  common::Result<std::string> acquire() override;
  common::Status release(const std::string& token) override;

  common::Result<std::string> task_start(
      const quantum::Payload& payload) override;
  common::Result<TaskStatus> task_status(const std::string& task_id) override;
  common::Result<quantum::Samples> task_result(
      const std::string& task_id) override;
  common::Status task_stop(const std::string& task_id) override;

  common::Result<quantum::DeviceSpec> target() override;
  common::Json metadata() override;

 private:
  LocalEmulatorQrmi(std::string resource_id, std::string backend_kind,
                    std::unique_ptr<emulator::Backend> backend,
                    emulator::RunOptions run_options);

  struct Task {
    TaskStatus status = TaskStatus::kQueued;
    std::optional<quantum::Samples> samples;
    std::optional<common::Error> error;
    std::future<void> completion;
  };

  std::string resource_id_;
  std::string backend_kind_;
  std::unique_ptr<emulator::Backend> backend_;
  emulator::RunOptions run_options_;
  std::atomic<std::uint64_t> next_task_{1};
  std::atomic<std::uint64_t> seed_counter_{1};
  std::atomic<bool> offline_{false};

  std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Task>> tasks_;
};

}  // namespace qcenv::qrmi
