// QRMI — Quantum Resource Management Interface (after Sitdikov et al.,
// arXiv:2506.10052, the interface the paper builds its runtime on).
//
// A Qrmi instance represents one quantum resource. The lifecycle is:
//   acquire() -> token        exclusive or shared lease on the resource
//   task_start(payload)       submit; returns an opaque task id
//   task_status(id)           poll
//   task_result(id)           fetch samples once completed
//   task_stop(id)             cancel
//   release(token)
// target() returns the current device specification (with live calibration)
// so programs can be validated at the point of execution.
//
// The paper's contribution we reproduce here: *local emulators are QRMI
// resources too* (LocalEmulatorQrmi), so development, HPC emulation and QPU
// execution share one interface and programs move between them without
// source changes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"
#include "quantum/device.hpp"
#include "quantum/payload.hpp"
#include "quantum/samples.hpp"

namespace qcenv::qrmi {

enum class ResourceType {
  kLocalEmulator,  // in-process emulator (developer laptop / HPC node)
  kDirectAccess,   // on-prem QPU behind the vendor controller
  kCloudQpu,       // QPU reached through a cloud API
  kCloudEmulator,  // managed emulator reached through a cloud API
};

const char* to_string(ResourceType type) noexcept;
common::Result<ResourceType> resource_type_from_string(const std::string& s);

enum class TaskStatus { kQueued, kRunning, kCompleted, kFailed, kCancelled };

const char* to_string(TaskStatus status) noexcept;

/// True for states in which the task will make no further progress.
constexpr bool is_terminal(TaskStatus status) noexcept {
  return status == TaskStatus::kCompleted || status == TaskStatus::kFailed ||
         status == TaskStatus::kCancelled;
}

class Qrmi {
 public:
  virtual ~Qrmi() = default;

  virtual std::string resource_id() const = 0;
  virtual ResourceType type() const = 0;

  /// Whether the resource is reachable and operational right now.
  virtual common::Result<bool> is_accessible() = 0;

  /// Leases the resource. Direct-access resources are exclusive; emulators
  /// and cloud resources grant freely.
  virtual common::Result<std::string> acquire() = 0;
  virtual common::Status release(const std::string& token) = 0;

  virtual common::Result<std::string> task_start(
      const quantum::Payload& payload) = 0;
  virtual common::Result<TaskStatus> task_status(
      const std::string& task_id) = 0;
  virtual common::Result<quantum::Samples> task_result(
      const std::string& task_id) = 0;
  virtual common::Status task_stop(const std::string& task_id) = 0;

  /// Current device specification (embedding the live calibration snapshot).
  virtual common::Result<quantum::DeviceSpec> target() = 0;

  /// Implementation-defined details (engine, endpoint, limits).
  virtual common::Json metadata() = 0;

  /// Timing breakdown of one run_sync() call, for tracing: the poll loop
  /// and result fetch become child spans of the dispatcher's qrmi_execute
  /// stage. Timestamps come from the caller's clock when one is provided
  /// (virtual-time deterministic), else from the wall clock.
  struct RunStats {
    common::TimeNs poll_start = 0;    // after task_start returned
    common::TimeNs poll_end = 0;      // last task_status observation
    common::TimeNs result_end = 0;    // after task_result returned
    std::uint64_t polls = 0;          // task_status calls issued
  };

  /// Convenience: start, poll until terminal, and return the result.
  /// `poll_interval` applies to asynchronous resource types. When `clock`
  /// is provided the poll pacing goes through it instead of a raw
  /// std::this_thread sleep — identical under WallClock, and the seam
  /// that lets virtual-time harnesses drive dispatch with no real sleeps.
  /// `stats`, when non-null, receives the per-phase timing breakdown.
  common::Result<quantum::Samples> run_sync(
      const quantum::Payload& payload,
      common::DurationNs poll_interval = 20 * common::kMillisecond,
      common::Clock* clock = nullptr, RunStats* stats = nullptr);
};

using QrmiPtr = std::shared_ptr<Qrmi>;

}  // namespace qcenv::qrmi
