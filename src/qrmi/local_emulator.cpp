#include "qrmi/local_emulator.hpp"

#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace qcenv::qrmi {

using common::Result;
using common::Status;
using quantum::Payload;
using quantum::Samples;

Result<std::shared_ptr<LocalEmulatorQrmi>> LocalEmulatorQrmi::create(
    std::string resource_id, const std::string& backend_kind,
    emulator::RunOptions run_options) {
  auto backend = emulator::make_emulator_backend(backend_kind);
  if (!backend.ok()) return backend.error();
  return std::shared_ptr<LocalEmulatorQrmi>(new LocalEmulatorQrmi(
      std::move(resource_id), backend_kind, std::move(backend).value(),
      run_options));
}

LocalEmulatorQrmi::LocalEmulatorQrmi(std::string resource_id,
                                     std::string backend_kind,
                                     std::unique_ptr<emulator::Backend> backend,
                                     emulator::RunOptions run_options)
    : resource_id_(std::move(resource_id)),
      backend_kind_(std::move(backend_kind)),
      backend_(std::move(backend)),
      run_options_(run_options) {}

Result<std::string> LocalEmulatorQrmi::acquire() {
  // Emulators grant unlimited shared leases.
  return std::string("emu-lease-") + common::random_token(8);
}

Status LocalEmulatorQrmi::release(const std::string&) {
  return Status::ok_status();
}

void LocalEmulatorQrmi::set_fault_hooks(EmulatorFaultHooks hooks,
                                        common::Clock* clock) {
  std::scoped_lock lock(mutex_);
  fault_hooks_ = std::move(hooks);
  fault_clock_ = clock;
}

bool LocalEmulatorQrmi::ready_locked(const Task& task) const {
  return fault_clock_ == nullptr || task.ready_at <= 0 ||
         fault_clock_->now() >= task.ready_at;
}

Result<std::string> LocalEmulatorQrmi::task_start(const Payload& payload) {
  if (offline_.load()) {
    return common::err::unavailable("resource '" + resource_id_ +
                                    "' is offline");
  }
  std::function<std::optional<common::Error>(const quantum::Payload&)>
      on_start;
  common::DurationNs latency = 0;
  {
    std::scoped_lock lock(mutex_);
    on_start = fault_hooks_.on_start;
    if (fault_hooks_.latency && fault_clock_ != nullptr) {
      latency = fault_hooks_.latency(payload.shots());
    }
  }
  if (on_start) {
    if (auto injected = on_start(payload); injected.has_value()) {
      return *injected;
    }
  }
  const std::string id =
      "local-" + std::to_string(next_task_.fetch_add(1));
  auto task = std::make_shared<Task>();
  task->status = TaskStatus::kRunning;
  {
    std::scoped_lock lock(mutex_);
    tasks_[id] = task;
    if (latency > 0 && fault_clock_ != nullptr) {
      task->ready_at = fault_clock_->now() + latency;
    }
  }
  emulator::RunOptions options = run_options_;
  // Each task gets a distinct seed so repeated runs differ like hardware,
  // while the resource-level seed keeps whole experiments reproducible.
  options.seed =
      run_options_.seed ^ (seed_counter_.fetch_add(1) * 0x9E3779B9ull);
  // Both captures are weak on purpose. The future below lives inside the
  // Task, and a packaged_task's shared state keeps its callable alive, so a
  // strong Task capture would create a Task -> future -> callable -> Task
  // cycle that leaks every completed task. And the pool is process-wide, so
  // a strong (or raw `this`) resource capture would let a queued job run
  // against a destroyed resource; locking `self` first keeps backend_ and
  // mutex_ alive for the duration of the job.
  task->completion = common::default_pool().submit(
      [self = weak_from_this(), weak = std::weak_ptr<Task>(task), payload,
       options] {
        const auto resource = self.lock();
        if (!resource) return;  // resource torn down while the job was queued
        auto outcome = resource->backend_->run(payload, options);
        const auto task = weak.lock();
        if (!task) return;
        std::scoped_lock lock(resource->mutex_);
        if (outcome.ok()) {
          task->samples = std::move(outcome).value();
          task->status = TaskStatus::kCompleted;
        } else {
          task->error = outcome.error();
          task->status = TaskStatus::kFailed;
        }
      });
  return id;
}

Result<TaskStatus> LocalEmulatorQrmi::task_status(const std::string& task_id) {
  std::scoped_lock lock(mutex_);
  const auto it = tasks_.find(task_id);
  if (it == tasks_.end()) {
    return common::err::not_found("unknown task: " + task_id);
  }
  // A finished task behind its virtual completion gate is still "running"
  // from the caller's point of view: injected latency in virtual time.
  if (is_terminal(it->second->status) && !ready_locked(*it->second)) {
    return TaskStatus::kRunning;
  }
  return it->second->status;
}

Result<Samples> LocalEmulatorQrmi::task_result(const std::string& task_id) {
  std::shared_ptr<Task> task;
  {
    std::scoped_lock lock(mutex_);
    const auto it = tasks_.find(task_id);
    if (it == tasks_.end()) {
      return common::err::not_found("unknown task: " + task_id);
    }
    task = it->second;
  }
  if (task->completion.valid()) task->completion.wait();
  std::scoped_lock lock(mutex_);
  switch (task->status) {
    case TaskStatus::kCompleted:
      if (fault_hooks_.corrupt_result) {
        return fault_hooks_.corrupt_result(*task->samples);
      }
      return *task->samples;
    case TaskStatus::kFailed: return *task->error;
    case TaskStatus::kCancelled:
      return common::err::cancelled("task cancelled: " + task_id);
    default:
      return common::err::failed_precondition("task still running: " +
                                              task_id);
  }
}

Status LocalEmulatorQrmi::task_stop(const std::string& task_id) {
  // Emulator tasks are short; treat stop of a known task as best-effort.
  std::scoped_lock lock(mutex_);
  const auto it = tasks_.find(task_id);
  if (it == tasks_.end()) {
    return common::err::not_found("unknown task: " + task_id);
  }
  if (it->second->status == TaskStatus::kQueued) {
    it->second->status = TaskStatus::kCancelled;
  }
  return Status::ok_status();
}

Result<quantum::DeviceSpec> LocalEmulatorQrmi::target() {
  quantum::DeviceSpec spec = backend_->spec();
  std::scoped_lock lock(mutex_);
  if (fault_hooks_.mutate_spec) fault_hooks_.mutate_spec(spec);
  return spec;
}

common::Json LocalEmulatorQrmi::metadata() {
  common::Json meta = common::Json::object();
  meta["resource_id"] = resource_id_;
  meta["type"] = to_string(type());
  meta["engine"] = backend_kind_;
  meta["backend"] = backend_->name();
  return meta;
}

}  // namespace qcenv::qrmi
