// QRMI resource type "direct-access": an on-prem QPU behind the vendor
// controller. Leases are exclusive — the middleware daemon holds the lease
// and multiplexes users on top (the paper's second scheduling layer).
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "qpu/controller.hpp"
#include "qrmi/qrmi.hpp"

namespace qcenv::qrmi {

class DirectQpuQrmi final : public Qrmi {
 public:
  /// `controller` and its device must outlive this resource.
  DirectQpuQrmi(std::string resource_id, qpu::QpuDevice* device,
                qpu::QpuController* controller);

  std::string resource_id() const override { return resource_id_; }
  ResourceType type() const override { return ResourceType::kDirectAccess; }
  common::Result<bool> is_accessible() override { return true; }

  common::Result<std::string> acquire() override;
  common::Status release(const std::string& token) override;

  common::Result<std::string> task_start(
      const quantum::Payload& payload) override;
  common::Result<TaskStatus> task_status(const std::string& task_id) override;
  common::Result<quantum::Samples> task_result(
      const std::string& task_id) override;
  common::Status task_stop(const std::string& task_id) override;

  common::Result<quantum::DeviceSpec> target() override;
  common::Json metadata() override;

 private:
  common::Result<common::TaskId> decode(const std::string& task_id) const;

  std::string resource_id_;
  qpu::QpuDevice* device_;
  qpu::QpuController* controller_;

  std::mutex mutex_;
  std::optional<std::string> lease_;  // exclusive access token
};

}  // namespace qcenv::qrmi
