#include "qrmi/registry.hpp"

#include <cctype>

#include "common/strings.hpp"
#include "qrmi/cloud_client.hpp"
#include "qrmi/local_emulator.hpp"

namespace qcenv::qrmi {

using common::Result;
using common::Status;

void ResourceRegistry::add(const std::string& name, QrmiPtr resource) {
  if (resources_.count(name) == 0) order_.push_back(name);
  resources_[name] = std::move(resource);
}

Result<QrmiPtr> ResourceRegistry::lookup(const std::string& name) const {
  const auto it = resources_.find(name);
  if (it == resources_.end()) {
    if (resources_.empty()) {
      return common::err::not_found(
          "unknown QRMI resource '" + name +
          "': the registry is empty — declare resources via QRMI_RESOURCES "
          "or ResourceRegistry::add()");
    }
    return common::err::not_found(
        "unknown QRMI resource '" + name + "'; available: " +
        common::join(names(), ", "));
  }
  return it->second;
}

bool ResourceRegistry::contains(const std::string& name) const {
  return resources_.count(name) > 0;
}

std::vector<std::string> ResourceRegistry::names() const { return order_; }

std::string config_key_name(const std::string& resource_name) {
  std::string out;
  out.reserve(resource_name.size());
  for (const char c : resource_name) {
    out += (c == '-') ? '_'
                      : static_cast<char>(std::toupper(
                            static_cast<unsigned char>(c)));
  }
  return out;
}

Status ResourceRegistry::load_from_config(const common::Config& config,
                                          const std::string& prefix) {
  const auto declared = config.get(prefix + "RESOURCES");
  if (!declared.has_value()) return Status::ok_status();  // nothing declared
  for (const auto& raw_name : common::split(*declared, ',')) {
    const std::string name(common::trim(raw_name));
    if (name.empty()) continue;
    const std::string key_base = prefix + config_key_name(name) + "_";
    // Every error below names the offending resource and config key so a
    // user can fix their environment without reading this code.
    auto type_text = config.require(key_base + "TYPE");
    if (!type_text.ok()) {
      return common::err::invalid_argument(
          "resource '" + name + "': missing config key " + key_base +
          "TYPE (expected local-emulator, cloud-qpu or cloud-emulator)");
    }
    auto type = resource_type_from_string(type_text.value());
    if (!type.ok()) {
      return common::err::invalid_argument(
          "resource '" + name + "' (" + key_base + "TYPE=" +
          type_text.value() + "): " + type.error().message());
    }

    switch (type.value()) {
      case ResourceType::kLocalEmulator: {
        const std::string engine =
            config.get_or(key_base + "ENGINE", "sv");
        emulator::RunOptions options;
        options.seed = static_cast<std::uint64_t>(
            config.get_int_or(key_base + "SEED", 1234));
        auto resource = LocalEmulatorQrmi::create(name, engine, options);
        if (!resource.ok()) {
          return common::err::invalid_argument(
              "resource '" + name + "' (" + key_base + "ENGINE=" + engine +
              "): " + resource.error().message());
        }
        add(name, std::move(resource).value());
        break;
      }
      case ResourceType::kCloudQpu:
      case ResourceType::kCloudEmulator: {
        const long long port = config.get_int_or(key_base + "PORT", 0);
        if (port <= 0 || port > 65535) {
          return common::err::invalid_argument(
              "resource '" + name + "': config key " + key_base +
              "PORT must be a port in [1, 65535], got '" +
              config.get_or(key_base + "PORT", "<unset>") + "'");
        }
        const std::string api_key =
            config.get_or(key_base + "API_KEY", "dev-key");
        add(name, std::make_shared<CloudQrmi>(
                      name, type.value(),
                      static_cast<std::uint16_t>(port), api_key));
        break;
      }
      case ResourceType::kDirectAccess:
        return common::err::invalid_argument(
            "resource '" + name + "' (" + key_base +
            "TYPE=direct-access): direct-access resources are registered "
            "by the hosting site's daemon, not from user configuration");
    }
  }
  return Status::ok_status();
}

}  // namespace qcenv::qrmi
