/* QRMI C ABI — the flat interface the real QRMI exposes to SDKs written in
 * other languages (the reference implementation is Rust with C bindings;
 * paper ref [23]). Wraps qcenv::qrmi::Qrmi instances registered in a
 * ResourceRegistry.
 *
 * Conventions:
 *  - All functions return QRMI_OK (0) or a negative error code.
 *  - Strings returned through out-parameters are heap-allocated; free them
 *    with qrmi_string_free.
 *  - Handles are opaque; release with qrmi_close.
 */
#ifndef QCENV_QRMI_C_H_
#define QCENV_QRMI_C_H_

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct qrmi_handle qrmi_handle;

enum {
  QRMI_OK = 0,
  QRMI_ERR_NOT_FOUND = -1,
  QRMI_ERR_INVALID = -2,
  QRMI_ERR_UNAVAILABLE = -3,
  QRMI_ERR_PERMISSION = -4,
  QRMI_ERR_INTERNAL = -5,
  QRMI_ERR_CANCELLED = -6,
};

/* Task status values mirrored from qrmi::TaskStatus. */
enum {
  QRMI_TASK_QUEUED = 0,
  QRMI_TASK_RUNNING = 1,
  QRMI_TASK_COMPLETED = 2,
  QRMI_TASK_FAILED = 3,
  QRMI_TASK_CANCELLED = 4,
};

/* Opens a resource by name from the process-wide registry (see
 * qrmi_c_register below). */
int qrmi_open(const char* resource_id, qrmi_handle** out_handle);
void qrmi_close(qrmi_handle* handle);

/* 1 if the resource is reachable, 0 otherwise. */
int qrmi_is_accessible(qrmi_handle* handle, int* out_accessible);

/* Lease management; *out_token must be freed with qrmi_string_free. */
int qrmi_acquire(qrmi_handle* handle, char** out_token);
int qrmi_release(qrmi_handle* handle, const char* token);

/* Starts a task from a serialized payload (JSON, quantum::Payload format).
 * *out_task_id must be freed with qrmi_string_free. */
int qrmi_task_start(qrmi_handle* handle, const char* payload_json,
                    char** out_task_id);
int qrmi_task_status(qrmi_handle* handle, const char* task_id,
                     int* out_status);
/* Serialized Samples JSON; free with qrmi_string_free. */
int qrmi_task_result(qrmi_handle* handle, const char* task_id,
                     char** out_samples_json);
int qrmi_task_stop(qrmi_handle* handle, const char* task_id);

/* Current device spec as JSON; free with qrmi_string_free. */
int qrmi_target(qrmi_handle* handle, char** out_spec_json);

void qrmi_string_free(char* text);

#ifdef __cplusplus
}  /* extern "C" */

/* C++ side: installs the registry the C ABI resolves names against. */
namespace qcenv::qrmi {
class ResourceRegistry;
/* The registry must outlive all open handles. Pass nullptr to clear. */
void qrmi_c_register(const ResourceRegistry* registry);
}  // namespace qcenv::qrmi
#endif

#endif  /* QCENV_QRMI_C_H_ */
