#include "qrmi/cloud_client.hpp"

#include "common/strings.hpp"

namespace qcenv::qrmi {

using common::Json;
using common::Result;
using common::Status;
using net::HttpResponse;
using quantum::Samples;

CloudQrmi::CloudQrmi(std::string resource_id, ResourceType type,
                     std::uint16_t port, std::string api_key)
    : resource_id_(std::move(resource_id)), type_(type), client_(port),
      port_(port) {
  client_.set_default_header("Authorization", "Bearer " + api_key);
}

Result<Json> CloudQrmi::expect_json(Result<HttpResponse> response,
                                    int expected_status) {
  if (!response.ok()) {
    return common::err::unavailable("cloud endpoint unreachable: " +
                                    response.error().message());
  }
  auto body = Json::parse(response.value().body);
  if (response.value().status != expected_status) {
    const std::string detail =
        body.ok() && body.value().contains("error")
            ? body.value().at_or_null("error").as_string()
            : response.value().body;
    const int status = response.value().status;
    if (status == 404) return common::err::not_found(detail);
    if (status == 401 || status == 403) {
      return common::err::permission_denied(detail);
    }
    if (status == 409) return common::err::failed_precondition(detail);
    if (status == 410) return common::err::cancelled(detail);
    if (status == 429) return common::err::resource_exhausted(detail);
    return common::err::protocol("cloud API returned " +
                                 std::to_string(status) + ": " + detail);
  }
  if (!body.ok()) return body.error();
  return body;
}

Result<bool> CloudQrmi::is_accessible() {
  auto response = client_.get("/api/v1/health");
  return response.ok() && response.value().status == 200;
}

Result<std::string> CloudQrmi::acquire() {
  // Cloud access is authorized by the API key; leases are nominal.
  return std::string("cloud-lease-") + common::random_token(8);
}

Status CloudQrmi::release(const std::string&) { return Status::ok_status(); }

Result<std::string> CloudQrmi::task_start(const quantum::Payload& payload) {
  auto body = expect_json(client_.post("/api/v1/jobs", payload.serialize()),
                          201);
  if (!body.ok()) return body.error();
  return body.value().get_string("id");
}

Result<TaskStatus> CloudQrmi::task_status(const std::string& task_id) {
  auto body = expect_json(client_.get("/api/v1/jobs/" + task_id), 200);
  if (!body.ok()) return body.error();
  auto status = body.value().get_string("status");
  if (!status.ok()) return status.error();
  const std::string& s = status.value();
  if (s == "queued") return TaskStatus::kQueued;
  if (s == "running") return TaskStatus::kRunning;
  if (s == "completed") return TaskStatus::kCompleted;
  if (s == "failed") return TaskStatus::kFailed;
  if (s == "cancelled") return TaskStatus::kCancelled;
  return common::err::protocol("unknown cloud task status: " + s);
}

Result<Samples> CloudQrmi::task_result(const std::string& task_id) {
  auto body =
      expect_json(client_.get("/api/v1/jobs/" + task_id + "/result"), 200);
  if (!body.ok()) return body.error();
  return Samples::from_json(body.value());
}

Status CloudQrmi::task_stop(const std::string& task_id) {
  auto body = expect_json(client_.del("/api/v1/jobs/" + task_id), 200);
  if (!body.ok()) return body.error();
  return Status::ok_status();
}

Result<quantum::DeviceSpec> CloudQrmi::target() {
  auto body = expect_json(client_.get("/api/v1/device"), 200);
  if (!body.ok()) return body.error();
  return quantum::DeviceSpec::from_json(body.value());
}

Json CloudQrmi::metadata() {
  Json meta = Json::object();
  meta["resource_id"] = resource_id_;
  meta["type"] = to_string(type_);
  meta["endpoint"] = "127.0.0.1:" + std::to_string(port_);
  return meta;
}

}  // namespace qcenv::qrmi
