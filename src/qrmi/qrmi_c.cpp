#include "qrmi/qrmi_c.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "qrmi/registry.hpp"

namespace {

const qcenv::qrmi::ResourceRegistry* g_registry = nullptr;
std::mutex g_mutex;

int code_for(const qcenv::common::Error& error) {
  using qcenv::common::ErrorCode;
  switch (error.code()) {
    case ErrorCode::kNotFound: return QRMI_ERR_NOT_FOUND;
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kProtocol:
    case ErrorCode::kFailedPrecondition:
      return QRMI_ERR_INVALID;
    case ErrorCode::kUnavailable:
    case ErrorCode::kTimeout:
    case ErrorCode::kResourceExhausted:
      return QRMI_ERR_UNAVAILABLE;
    case ErrorCode::kPermissionDenied: return QRMI_ERR_PERMISSION;
    case ErrorCode::kCancelled: return QRMI_ERR_CANCELLED;
    default: return QRMI_ERR_INTERNAL;
  }
}

char* dup_string(const std::string& text) {
  char* out = static_cast<char*>(std::malloc(text.size() + 1));
  if (out != nullptr) std::memcpy(out, text.c_str(), text.size() + 1);
  return out;
}

}  // namespace

struct qrmi_handle {
  qcenv::qrmi::QrmiPtr resource;
};

namespace qcenv::qrmi {
void qrmi_c_register(const ResourceRegistry* registry) {
  std::scoped_lock lock(g_mutex);
  g_registry = registry;
}
}  // namespace qcenv::qrmi

extern "C" {

int qrmi_open(const char* resource_id, qrmi_handle** out_handle) {
  if (resource_id == nullptr || out_handle == nullptr) return QRMI_ERR_INVALID;
  std::scoped_lock lock(g_mutex);
  if (g_registry == nullptr) return QRMI_ERR_UNAVAILABLE;
  auto resource = g_registry->lookup(resource_id);
  if (!resource.ok()) return code_for(resource.error());
  *out_handle = new qrmi_handle{std::move(resource).value()};
  return QRMI_OK;
}

void qrmi_close(qrmi_handle* handle) { delete handle; }

int qrmi_is_accessible(qrmi_handle* handle, int* out_accessible) {
  if (handle == nullptr || out_accessible == nullptr) return QRMI_ERR_INVALID;
  auto accessible = handle->resource->is_accessible();
  if (!accessible.ok()) return code_for(accessible.error());
  *out_accessible = accessible.value() ? 1 : 0;
  return QRMI_OK;
}

int qrmi_acquire(qrmi_handle* handle, char** out_token) {
  if (handle == nullptr || out_token == nullptr) return QRMI_ERR_INVALID;
  auto token = handle->resource->acquire();
  if (!token.ok()) return code_for(token.error());
  *out_token = dup_string(token.value());
  return *out_token != nullptr ? QRMI_OK : QRMI_ERR_INTERNAL;
}

int qrmi_release(qrmi_handle* handle, const char* token) {
  if (handle == nullptr || token == nullptr) return QRMI_ERR_INVALID;
  auto status = handle->resource->release(token);
  return status.ok() ? QRMI_OK : code_for(status.error());
}

int qrmi_task_start(qrmi_handle* handle, const char* payload_json,
                    char** out_task_id) {
  if (handle == nullptr || payload_json == nullptr || out_task_id == nullptr) {
    return QRMI_ERR_INVALID;
  }
  auto payload = qcenv::quantum::Payload::deserialize(payload_json);
  if (!payload.ok()) return code_for(payload.error());
  auto task = handle->resource->task_start(payload.value());
  if (!task.ok()) return code_for(task.error());
  *out_task_id = dup_string(task.value());
  return *out_task_id != nullptr ? QRMI_OK : QRMI_ERR_INTERNAL;
}

int qrmi_task_status(qrmi_handle* handle, const char* task_id,
                     int* out_status) {
  if (handle == nullptr || task_id == nullptr || out_status == nullptr) {
    return QRMI_ERR_INVALID;
  }
  auto status = handle->resource->task_status(task_id);
  if (!status.ok()) return code_for(status.error());
  *out_status = static_cast<int>(status.value());
  return QRMI_OK;
}

int qrmi_task_result(qrmi_handle* handle, const char* task_id,
                     char** out_samples_json) {
  if (handle == nullptr || task_id == nullptr ||
      out_samples_json == nullptr) {
    return QRMI_ERR_INVALID;
  }
  auto samples = handle->resource->task_result(task_id);
  if (!samples.ok()) return code_for(samples.error());
  *out_samples_json = dup_string(samples.value().to_json().dump());
  return *out_samples_json != nullptr ? QRMI_OK : QRMI_ERR_INTERNAL;
}

int qrmi_task_stop(qrmi_handle* handle, const char* task_id) {
  if (handle == nullptr || task_id == nullptr) return QRMI_ERR_INVALID;
  auto status = handle->resource->task_stop(task_id);
  return status.ok() ? QRMI_OK : code_for(status.error());
}

int qrmi_target(qrmi_handle* handle, char** out_spec_json) {
  if (handle == nullptr || out_spec_json == nullptr) return QRMI_ERR_INVALID;
  auto spec = handle->resource->target();
  if (!spec.ok()) return code_for(spec.error());
  *out_spec_json = dup_string(spec.value().to_json().dump());
  return *out_spec_json != nullptr ? QRMI_OK : QRMI_ERR_INTERNAL;
}

void qrmi_string_free(char* text) { std::free(text); }

}  // extern "C"
