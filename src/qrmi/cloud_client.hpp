// QRMI resource types "cloud-qpu" / "cloud-emulator": a REST client against
// the vendor cloud API (src/cloud). Network failures surface as
// kUnavailable so the runtime can retry or fall back.
#pragma once

#include <string>

#include "net/http_client.hpp"
#include "qrmi/qrmi.hpp"

namespace qcenv::qrmi {

class CloudQrmi final : public Qrmi {
 public:
  CloudQrmi(std::string resource_id, ResourceType type, std::uint16_t port,
            std::string api_key);

  std::string resource_id() const override { return resource_id_; }
  ResourceType type() const override { return type_; }
  common::Result<bool> is_accessible() override;

  common::Result<std::string> acquire() override;
  common::Status release(const std::string& token) override;

  common::Result<std::string> task_start(
      const quantum::Payload& payload) override;
  common::Result<TaskStatus> task_status(const std::string& task_id) override;
  common::Result<quantum::Samples> task_result(
      const std::string& task_id) override;
  common::Status task_stop(const std::string& task_id) override;

  common::Result<quantum::DeviceSpec> target() override;
  common::Json metadata() override;

 private:
  common::Result<common::Json> expect_json(
      common::Result<net::HttpResponse> response, int expected_status);

  std::string resource_id_;
  ResourceType type_;
  net::HttpClient client_;
  std::uint16_t port_;
};

}  // namespace qcenv::qrmi
