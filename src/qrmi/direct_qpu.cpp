#include "qrmi/direct_qpu.hpp"

#include <cstdlib>

#include "common/strings.hpp"

namespace qcenv::qrmi {

using common::Result;
using common::Status;
using common::TaskId;
using quantum::Samples;

DirectQpuQrmi::DirectQpuQrmi(std::string resource_id, qpu::QpuDevice* device,
                             qpu::QpuController* controller)
    : resource_id_(std::move(resource_id)),
      device_(device),
      controller_(controller) {}

Result<std::string> DirectQpuQrmi::acquire() {
  std::scoped_lock lock(mutex_);
  if (lease_.has_value()) {
    return common::err::resource_exhausted(
        "resource '" + resource_id_ + "' is exclusively leased");
  }
  lease_ = "qpu-lease-" + common::random_token(8);
  return *lease_;
}

Status DirectQpuQrmi::release(const std::string& token) {
  std::scoped_lock lock(mutex_);
  if (!lease_.has_value() || *lease_ != token) {
    return common::err::permission_denied("unknown lease token");
  }
  lease_.reset();
  return Status::ok_status();
}

Result<TaskId> DirectQpuQrmi::decode(const std::string& task_id) const {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(task_id.c_str(), &end, 10);
  if (end == task_id.c_str() || *end != '\0' || value == 0) {
    return common::err::invalid_argument("malformed task id: " + task_id);
  }
  return TaskId(value);
}

Result<std::string> DirectQpuQrmi::task_start(
    const quantum::Payload& payload) {
  const TaskId id = controller_->submit(payload);
  return id.to_string();
}

Result<TaskStatus> DirectQpuQrmi::task_status(const std::string& task_id) {
  auto id = decode(task_id);
  if (!id.ok()) return id.error();
  auto state = controller_->status(id.value());
  if (!state.ok()) return state.error();
  switch (state.value()) {
    case qpu::TaskState::kQueued: return TaskStatus::kQueued;
    case qpu::TaskState::kRunning: return TaskStatus::kRunning;
    case qpu::TaskState::kDone: return TaskStatus::kCompleted;
    case qpu::TaskState::kFailed: return TaskStatus::kFailed;
    case qpu::TaskState::kCancelled: return TaskStatus::kCancelled;
  }
  return common::err::internal("unreachable task state");
}

Result<Samples> DirectQpuQrmi::task_result(const std::string& task_id) {
  auto id = decode(task_id);
  if (!id.ok()) return id.error();
  return controller_->result(id.value());
}

Status DirectQpuQrmi::task_stop(const std::string& task_id) {
  auto id = decode(task_id);
  if (!id.ok()) return id.error();
  return controller_->cancel(id.value());
}

Result<quantum::DeviceSpec> DirectQpuQrmi::target() { return device_->spec(); }

common::Json DirectQpuQrmi::metadata() {
  common::Json meta = common::Json::object();
  meta["resource_id"] = resource_id_;
  meta["type"] = to_string(type());
  meta["device"] = device_->options().spec.name;
  meta["shot_rate_hz"] = device_->options().spec.shot_rate_hz;
  meta["queue_depth"] = static_cast<long long>(controller_->queue_depth());
  return meta;
}

}  // namespace qcenv::qrmi
