// Readout-error mitigation: a "third-party component ... integrated at the
// runtime layer" (paper §1/§2.5 — error-mitigation services plug into the
// stack through interoperable APIs rather than the vendor stack).
//
// Model: each qubit has an independent confusion matrix built from the
// calibration snapshot the job ran with —
//     A = [ P(read 0|0)  P(read 0|1) ] = [ 1-p01   p10  ]
//         [ P(read 1|0)  P(read 1|1) ]   [ p01    1-p10 ]
// Measured distributions are (tensor A) * true; mitigation applies the
// tensored inverse. The calibration arrives with the job results (the
// paper's per-job metadata), so mitigation needs no extra service calls.
#pragma once

#include <vector>

#include "common/result.hpp"
#include "quantum/device.hpp"
#include "quantum/observable.hpp"
#include "quantum/samples.hpp"

namespace qcenv::mitigation {

class ReadoutMitigator {
 public:
  /// Uniform per-qubit error rates from a calibration snapshot.
  explicit ReadoutMitigator(const quantum::CalibrationSnapshot& calibration)
      : ReadoutMitigator(calibration.readout_p01, calibration.readout_p10) {}

  ReadoutMitigator(double p01, double p10);

  /// Builds a mitigator from the calibration embedded in a job's result
  /// metadata — the paper's per-job-metadata path. Errors when the samples
  /// carry no calibration.
  static common::Result<ReadoutMitigator> from_metadata(
      const quantum::Samples& samples);

  double p01() const noexcept { return p01_; }
  double p10() const noexcept { return p10_; }

  /// Full-distribution mitigation (dense 2^n inversion, n <= max_qubits).
  /// Returns the mitigated probability per basis state (indexing: bit q of
  /// the state = qubit q), clipped to >= 0 and renormalized.
  common::Result<std::vector<double>> mitigate_distribution(
      const quantum::Samples& samples, std::size_t max_qubits = 16) const;

  /// Mitigated samples: the clipped distribution resampled into integer
  /// counts of the same total (deterministic largest-remainder rounding).
  common::Result<quantum::Samples> mitigate(
      const quantum::Samples& samples, std::size_t max_qubits = 16) const;

  /// Closed-form mitigation of <Z_q>:
  /// <Z>_true = (<Z>_meas - (p10 - p01)) / (1 - p01 - p10).
  double mitigate_z_expectation(const quantum::Samples& samples,
                                std::size_t qubit) const;

  /// Diagonal-observable mitigation via the mitigated distribution.
  common::Result<double> mitigate_observable(
      const quantum::Samples& samples,
      const quantum::Observable& observable) const;

 private:
  double p01_;
  double p10_;
  // Inverse confusion matrix entries (row-major 2x2).
  double inv_[4];
};

}  // namespace qcenv::mitigation
