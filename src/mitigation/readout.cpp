#include "mitigation/readout.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qcenv::mitigation {

using common::Result;
using quantum::Samples;

ReadoutMitigator::ReadoutMitigator(double p01, double p10)
    : p01_(std::clamp(p01, 0.0, 0.49)), p10_(std::clamp(p10, 0.0, 0.49)) {
  // A = [[1-p01, p10], [p01, 1-p10]], det = 1 - p01 - p10 > 0 after clamp.
  const double det = 1.0 - p01_ - p10_;
  inv_[0] = (1.0 - p10_) / det;
  inv_[1] = -p10_ / det;
  inv_[2] = -p01_ / det;
  inv_[3] = (1.0 - p01_) / det;
}

Result<ReadoutMitigator> ReadoutMitigator::from_metadata(
    const Samples& samples) {
  const common::Json& calibration =
      samples.metadata().at_or_null("calibration");
  if (!calibration.is_object()) {
    return common::err::not_found(
        "samples carry no calibration metadata; run through a QPU or pass "
        "rates explicitly");
  }
  auto snap = quantum::CalibrationSnapshot::from_json(calibration);
  if (!snap.ok()) return snap.error();
  return ReadoutMitigator(snap.value());
}

Result<std::vector<double>> ReadoutMitigator::mitigate_distribution(
    const Samples& samples, std::size_t max_qubits) const {
  const std::size_t n = samples.num_qubits();
  if (n == 0 || samples.total_shots() == 0) {
    return common::err::invalid_argument("empty samples");
  }
  if (n > max_qubits) {
    return common::err::resource_exhausted(
        "dense mitigation limited to " + std::to_string(max_qubits) +
        " qubits; use mitigate_z_expectation for wide registers");
  }
  const std::size_t dim = std::size_t{1} << n;
  std::vector<double> p(dim, 0.0);
  for (const auto& [bits, count] : samples.counts()) {
    std::size_t state = 0;
    for (std::size_t q = 0; q < bits.size() && q < n; ++q) {
      if (bits[q] == '1') state |= (std::size_t{1} << q);
    }
    p[state] += static_cast<double>(count) /
                static_cast<double>(samples.total_shots());
  }
  // Apply inv(A) qubit-wise, like a single-qubit gate on a real vector.
  for (std::size_t q = 0; q < n; ++q) {
    const std::size_t bit = std::size_t{1} << q;
    for (std::size_t base = 0; base < dim; ++base) {
      if (base & bit) continue;
      const double v0 = p[base];
      const double v1 = p[base | bit];
      p[base] = inv_[0] * v0 + inv_[1] * v1;
      p[base | bit] = inv_[2] * v0 + inv_[3] * v1;
    }
  }
  // Quasi-probabilities: clip negatives, renormalize.
  for (double& v : p) v = std::max(v, 0.0);
  const double total = std::accumulate(p.begin(), p.end(), 0.0);
  if (total > 0) {
    for (double& v : p) v /= total;
  }
  return p;
}

Result<Samples> ReadoutMitigator::mitigate(const Samples& samples,
                                           std::size_t max_qubits) const {
  auto distribution = mitigate_distribution(samples, max_qubits);
  if (!distribution.ok()) return distribution.error();
  const std::size_t n = samples.num_qubits();
  const std::uint64_t shots = samples.total_shots();
  const auto& p = distribution.value();

  // Largest-remainder rounding keeps the total shot count exact.
  std::vector<std::pair<double, std::size_t>> remainders;
  std::vector<std::uint64_t> counts(p.size(), 0);
  std::uint64_t assigned = 0;
  for (std::size_t s = 0; s < p.size(); ++s) {
    const double exact = p[s] * static_cast<double>(shots);
    counts[s] = static_cast<std::uint64_t>(exact);
    assigned += counts[s];
    remainders.emplace_back(exact - std::floor(exact), s);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t i = 0; assigned < shots && i < remainders.size(); ++i) {
    ++counts[remainders[i].second];
    ++assigned;
  }

  Samples out(n);
  for (std::size_t s = 0; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    std::string bits(n, '0');
    for (std::size_t q = 0; q < n; ++q) {
      if (s & (std::size_t{1} << q)) bits[q] = '1';
    }
    out.record(bits, counts[s]);
  }
  common::Json meta = samples.metadata();
  meta["readout_mitigated"] = true;
  out.set_metadata(std::move(meta));
  return out;
}

double ReadoutMitigator::mitigate_z_expectation(const Samples& samples,
                                                std::size_t qubit) const {
  const double measured = samples.z_expectation(qubit);
  const double det = 1.0 - p01_ - p10_;
  // <Z>_meas = (1 - p01 - p10) <Z>_true + (p10 - p01).
  return std::clamp((measured - (p10_ - p01_)) / det, -1.0, 1.0);
}

Result<double> ReadoutMitigator::mitigate_observable(
    const Samples& samples, const quantum::Observable& observable) const {
  if (!observable.is_diagonal()) {
    return common::err::failed_precondition(
        "readout mitigation applies to diagonal observables");
  }
  auto distribution = mitigate_distribution(samples);
  if (!distribution.ok()) return distribution.error();
  const auto& p = distribution.value();
  double total = 0;
  for (const auto& term : observable.terms()) {
    std::size_t zmask = 0;
    for (std::size_t q = 0; q < term.paulis.size(); ++q) {
      if (term.paulis[q] == 'Z') zmask |= (std::size_t{1} << q);
    }
    double acc = 0;
    for (std::size_t s = 0; s < p.size(); ++s) {
      const bool odd = (std::popcount(s & zmask) & 1) != 0;
      acc += (odd ? -1.0 : 1.0) * p[s];
    }
    total += term.coefficient * acc;
  }
  return total;
}

}  // namespace qcenv::mitigation
