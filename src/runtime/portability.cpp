#include "runtime/portability.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace qcenv::runtime {

std::size_t ValidationReport::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(issues.begin(), issues.end(), [](const auto& issue) {
        return issue.kind == ValidationIssue::Kind::kError;
      }));
}

std::size_t ValidationReport::warning_count() const {
  return issues.size() - error_count();
}

std::string ValidationReport::to_string() const {
  std::string out = common::format(
      "validation against '%s': %s (fidelity %.3f, %zu errors, %zu warnings)",
      device.c_str(), compatible ? "COMPATIBLE" : "INCOMPATIBLE",
      device_fidelity, error_count(), warning_count());
  for (const auto& issue : issues) {
    out += "\n  [";
    out += issue.kind == ValidationIssue::Kind::kError ? "error" : "warn";
    out += "] " + issue.message;
  }
  return out;
}

ValidationReport validate_payload(const quantum::Payload& payload,
                                  const quantum::DeviceSpec& spec,
                                  common::TimeNs now,
                                  const ValidationThresholds& thresholds) {
  ValidationReport report;
  report.device = spec.name;
  report.program_hash = payload.program_hash();
  report.device_fidelity = spec.calibration.fidelity_estimate();

  // Hard device-limit checks.
  if (payload.kind() == quantum::PayloadKind::kAnalog) {
    auto sequence = payload.sequence();
    if (!sequence.ok()) {
      report.issues.push_back(
          {ValidationIssue::Kind::kError, sequence.error().to_string()});
    } else {
      auto status = spec.validate(sequence.value());
      if (!status.ok()) {
        report.issues.push_back(
            {ValidationIssue::Kind::kError, status.error().message()});
      }
    }
  } else {
    auto circuit = payload.circuit();
    if (!circuit.ok()) {
      report.issues.push_back(
          {ValidationIssue::Kind::kError, circuit.error().to_string()});
    } else {
      auto status = spec.validate(circuit.value());
      if (!status.ok()) {
        report.issues.push_back(
            {ValidationIssue::Kind::kError, status.error().message()});
      }
    }
  }

  // Soft calibration checks: the temporal dimension of portability.
  if (report.device_fidelity < thresholds.min_fidelity) {
    report.issues.push_back(
        {ValidationIssue::Kind::kWarning,
         common::format("device quality estimate %.3f below threshold %.3f "
                        "- results may be degraded",
                        report.device_fidelity, thresholds.min_fidelity)});
  }
  const common::DurationNs age = now - spec.calibration.timestamp_ns;
  if (spec.calibration.timestamp_ns > 0 &&
      age > thresholds.max_calibration_age) {
    report.issues.push_back(
        {ValidationIssue::Kind::kWarning,
         common::format("calibration snapshot is %.1f h old; refetch device "
                        "specs before production runs",
                        common::to_seconds(age) / 3600.0)});
  }

  report.compatible = report.error_count() == 0;
  return report;
}

}  // namespace qcenv::runtime
