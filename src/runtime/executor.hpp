// HybridExecutor: drives hybrid quantum-classical loops through a
// HybridRuntime — the variational pattern the paper's workload taxonomy
// calls "balanced QC-CC". Classical post-processing overlaps with the next
// quantum submission where the algorithm allows.
#pragma once

#include <functional>
#include <vector>

#include "quantum/payload.hpp"
#include "quantum/samples.hpp"
#include "runtime/runtime.hpp"

namespace qcenv::runtime {

/// Builds the payload for a given parameter vector.
using ParametricProgram =
    std::function<quantum::Payload(const std::vector<double>&)>;
/// Scores one execution (lower is better, e.g. energy).
using CostFunction = std::function<double(const quantum::Samples&)>;
/// Proposes the next parameters from evaluation history; empty = stop.
using ParameterStrategy = std::function<std::vector<double>(
    const std::vector<std::vector<double>>& params,
    const std::vector<double>& costs)>;

struct IterationResult {
  std::vector<double> parameters;
  double cost = 0;
  quantum::Samples samples;
};

struct LoopResult {
  std::vector<IterationResult> iterations;
  std::size_t best_index = 0;

  const IterationResult& best() const { return iterations[best_index]; }
};

class HybridExecutor {
 public:
  explicit HybridExecutor(HybridRuntime* runtime) : runtime_(runtime) {}

  /// Runs the optimization loop: program(params) -> runtime -> cost(samples)
  /// -> strategy proposes next params. Stops when the strategy returns an
  /// empty vector or `max_iterations` is reached.
  common::Result<LoopResult> optimize(const ParametricProgram& program,
                                      const CostFunction& cost,
                                      const ParameterStrategy& strategy,
                                      std::vector<double> initial,
                                      std::size_t max_iterations = 50);

  /// One-shot evaluation.
  common::Result<IterationResult> evaluate(const ParametricProgram& program,
                                           const CostFunction& cost,
                                           const std::vector<double>& params);

 private:
  HybridRuntime* runtime_;
};

}  // namespace qcenv::runtime
