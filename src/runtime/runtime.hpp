// HybridRuntime: the user-facing execution layer (§3.1).
//
// One API, three execution paths chosen purely by configuration — never by
// source changes (the Figure 1 goal):
//   * local:   `--qpu=<resource>` resolved against a ResourceRegistry
//              (laptop emulators, cloud endpoints),
//   * daemon:  jobs travel through the middleware daemon's REST API with a
//              user session (the HPC path),
// Configuration keys (read from env/Config per §3.4):
//   QCENV_QPU          resource name (same as --qpu=)
//   QRMI_DAEMON_PORT   middleware daemon endpoint (set by the SPANK plugin)
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/config.hpp"
#include "daemon/queue_core.hpp"
#include "net/http_client.hpp"
#include "qrmi/registry.hpp"
#include "runtime/portability.hpp"

namespace qcenv::runtime {

struct RuntimeOptions {
  std::string resource;  // --qpu=<resource>; empty = from config QCENV_QPU
  std::string user = "developer";
  daemon::JobClass job_class = daemon::JobClass::kDevelopment;
  /// Slurm partition name forwarded to the daemon ("the daemon retrieves
  /// the job's priority from Slurm").
  std::string partition;
  common::DurationNs poll_interval = 20 * common::kMillisecond;
};

/// Opaque handle to a submitted job.
struct JobHandle {
  std::string id;
};

class HybridRuntime {
 public:
  /// Local mode: execute directly on a registry resource.
  static common::Result<std::unique_ptr<HybridRuntime>> connect_local(
      const qrmi::ResourceRegistry* registry, RuntimeOptions options,
      const common::Config& config = {});

  /// Daemon mode: open a session against the middleware REST API.
  static common::Result<std::unique_ptr<HybridRuntime>> connect_daemon(
      std::uint16_t port, RuntimeOptions options);

  ~HybridRuntime();

  /// Current device specification (live calibration included).
  common::Result<quantum::DeviceSpec> device();

  /// Re-validates a program against the *current* device state.
  common::Result<ValidationReport> validate(const quantum::Payload& payload);

  common::Result<JobHandle> submit(const quantum::Payload& payload);
  common::Result<quantum::Samples> wait(const JobHandle& handle);
  common::Status cancel(const JobHandle& handle);

  /// submit + wait.
  common::Result<quantum::Samples> run(const quantum::Payload& payload);

  /// "local" or "daemon"; the resource/backend actually in use.
  std::string mode() const;
  std::string resource_name() const;

 private:
  struct LocalDriver {
    qrmi::QrmiPtr resource;
  };
  struct DaemonDriver {
    std::unique_ptr<net::HttpClient> client;
    std::string token;
  };

  HybridRuntime(RuntimeOptions options) : options_(std::move(options)) {}

  RuntimeOptions options_;
  std::optional<LocalDriver> local_;
  std::optional<DaemonDriver> daemon_;
};

/// Resolves the target resource name: explicit option > config QCENV_QPU >
/// config QRMI_RESOURCE_ID.
common::Result<std::string> resolve_resource_name(
    const RuntimeOptions& options, const common::Config& config);

}  // namespace qcenv::runtime
