#include "runtime/executor.hpp"

namespace qcenv::runtime {

using common::Result;

Result<IterationResult> HybridExecutor::evaluate(
    const ParametricProgram& program, const CostFunction& cost,
    const std::vector<double>& params) {
  auto samples = runtime_->run(program(params));
  if (!samples.ok()) return samples.error();
  IterationResult result;
  result.parameters = params;
  result.samples = std::move(samples).value();
  result.cost = cost(result.samples);
  return result;
}

Result<LoopResult> HybridExecutor::optimize(const ParametricProgram& program,
                                            const CostFunction& cost,
                                            const ParameterStrategy& strategy,
                                            std::vector<double> initial,
                                            std::size_t max_iterations) {
  LoopResult loop;
  std::vector<std::vector<double>> history_params;
  std::vector<double> history_costs;

  std::vector<double> params = std::move(initial);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    auto result = evaluate(program, cost, params);
    if (!result.ok()) return result.error();
    history_params.push_back(result.value().parameters);
    history_costs.push_back(result.value().cost);
    if (loop.iterations.empty() ||
        result.value().cost < loop.iterations[loop.best_index].cost) {
      loop.best_index = loop.iterations.size();
    }
    loop.iterations.push_back(std::move(result).value());

    params = strategy(history_params, history_costs);
    if (params.empty()) break;
  }
  if (loop.iterations.empty()) {
    return common::err::failed_precondition("optimizer produced no iterations");
  }
  return loop;
}

}  // namespace qcenv::runtime
