// Portability validation: "ensuring program validity at the point of
// execution" (§2.1). A program developed yesterday against cached device
// specs is re-validated against the *current* spec (with live calibration)
// before running, and the report explains what changed.
#pragma once

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "quantum/device.hpp"
#include "quantum/payload.hpp"

namespace qcenv::runtime {

struct ValidationIssue {
  enum class Kind { kError, kWarning };
  Kind kind = Kind::kError;
  std::string message;
};

struct ValidationReport {
  bool compatible = false;   // no errors (warnings allowed)
  std::string device;
  double device_fidelity = 1.0;
  std::uint64_t program_hash = 0;
  std::vector<ValidationIssue> issues;

  std::size_t error_count() const;
  std::size_t warning_count() const;
  std::string to_string() const;
};

struct ValidationThresholds {
  /// Warn when the device quality estimate is below this.
  double min_fidelity = 0.7;
  /// Warn when calibration data is older than this (ns).
  common::DurationNs max_calibration_age = 3600 * common::kSecond;
};

/// Validates the payload against a device spec, producing a structured
/// report instead of a single pass/fail.
ValidationReport validate_payload(const quantum::Payload& payload,
                                  const quantum::DeviceSpec& spec,
                                  common::TimeNs now,
                                  const ValidationThresholds& thresholds = {});

}  // namespace qcenv::runtime
