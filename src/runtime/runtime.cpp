#include "runtime/runtime.hpp"

#include <thread>

#include "common/strings.hpp"

#define QCENV_LOG_COMPONENT "runtime"
#include "common/logging.hpp"

namespace qcenv::runtime {

using common::Json;
using common::Result;
using common::Status;
using quantum::Payload;
using quantum::Samples;

Result<std::string> resolve_resource_name(const RuntimeOptions& options,
                                          const common::Config& config) {
  if (!options.resource.empty()) return options.resource;
  if (auto v = config.get("QCENV_QPU")) return *v;
  if (auto v = config.get("QRMI_RESOURCE_ID")) return *v;
  return common::err::invalid_argument(
      "no target resource: pass --qpu=<resource> or set QCENV_QPU");
}

Result<std::unique_ptr<HybridRuntime>> HybridRuntime::connect_local(
    const qrmi::ResourceRegistry* registry, RuntimeOptions options,
    const common::Config& config) {
  auto name = resolve_resource_name(options, config);
  if (!name.ok()) return name.error();
  auto resource = registry->lookup(name.value());
  if (!resource.ok()) return resource.error();
  options.resource = name.value();
  auto runtime =
      std::unique_ptr<HybridRuntime>(new HybridRuntime(std::move(options)));
  runtime->local_ = LocalDriver{std::move(resource).value()};
  return runtime;
}

Result<std::unique_ptr<HybridRuntime>> HybridRuntime::connect_daemon(
    std::uint16_t port, RuntimeOptions options) {
  auto client = std::make_unique<net::HttpClient>(port);
  Json body = Json::object();
  body["user"] = options.user;
  body["class"] = daemon::to_string(options.job_class);
  auto response = client->post("/v1/sessions", body.dump());
  if (!response.ok()) {
    return common::err::unavailable("cannot reach middleware daemon: " +
                                    response.error().message());
  }
  if (response.value().status != 201) {
    return common::err::permission_denied("session rejected: " +
                                          response.value().body);
  }
  auto parsed = Json::parse(response.value().body);
  if (!parsed.ok()) return parsed.error();
  auto token = parsed.value().get_string("token");
  if (!token.ok()) return token.error();

  auto runtime =
      std::unique_ptr<HybridRuntime>(new HybridRuntime(std::move(options)));
  DaemonDriver driver;
  driver.client = std::move(client);
  driver.token = token.value();
  driver.client->set_default_header("X-Session-Token", driver.token);
  runtime->daemon_ = std::move(driver);
  return runtime;
}

HybridRuntime::~HybridRuntime() {
  if (daemon_.has_value()) {
    (void)daemon_->client->del("/v1/sessions");  // best-effort close
  }
}

std::string HybridRuntime::mode() const {
  return local_.has_value() ? "local" : "daemon";
}

std::string HybridRuntime::resource_name() const {
  if (local_.has_value()) return local_->resource->resource_id();
  return "daemon:" + std::to_string(daemon_->client->port());
}

Result<quantum::DeviceSpec> HybridRuntime::device() {
  if (local_.has_value()) return local_->resource->target();
  auto response = daemon_->client->get("/v1/device");
  if (!response.ok()) return response.error();
  if (response.value().status != 200) {
    return common::err::unavailable("device query failed: " +
                                    response.value().body);
  }
  auto json = Json::parse(response.value().body);
  if (!json.ok()) return json.error();
  return quantum::DeviceSpec::from_json(json.value());
}

Result<ValidationReport> HybridRuntime::validate(const Payload& payload) {
  auto spec = device();
  if (!spec.ok()) return spec.error();
  const auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  return validate_payload(payload, spec.value(), now);
}

Result<JobHandle> HybridRuntime::submit(const Payload& payload) {
  if (local_.has_value()) {
    auto task = local_->resource->task_start(payload);
    if (!task.ok()) return task.error();
    return JobHandle{task.value()};
  }
  Json body = Json::object();
  body["payload"] = payload.to_json();
  if (!options_.partition.empty()) body["partition"] = options_.partition;
  auto response = daemon_->client->post("/v1/jobs", body.dump());
  if (!response.ok()) return response.error();
  if (response.value().status != 201) {
    auto parsed = Json::parse(response.value().body);
    const std::string detail =
        parsed.ok() && parsed.value().contains("error")
            ? parsed.value().at_or_null("error").as_string()
            : response.value().body;
    if (response.value().status == 400 || response.value().status == 409) {
      return common::err::invalid_argument("job rejected: " + detail);
    }
    return common::err::unavailable("job submission failed: " + detail);
  }
  auto parsed = Json::parse(response.value().body);
  if (!parsed.ok()) return parsed.error();
  auto id = parsed.value().get_int("job_id");
  if (!id.ok()) return id.error();
  return JobHandle{std::to_string(id.value())};
}

Result<Samples> HybridRuntime::wait(const JobHandle& handle) {
  if (local_.has_value()) {
    // Poll the QRMI resource.
    while (true) {
      auto status = local_->resource->task_status(handle.id);
      if (!status.ok()) return status.error();
      if (qrmi::is_terminal(status.value())) break;
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(options_.poll_interval));
    }
    return local_->resource->task_result(handle.id);
  }
  while (true) {
    auto response = daemon_->client->get("/v1/jobs/" + handle.id);
    if (!response.ok()) return response.error();
    auto parsed = Json::parse(response.value().body);
    if (!parsed.ok()) return parsed.error();
    auto state = parsed.value().get_string("state");
    if (!state.ok()) return state.error();
    if (state.value() == "completed") break;
    if (state.value() == "failed") {
      return common::err::internal(
          "job failed: " +
          parsed.value().at_or_null("error").as_string());
    }
    if (state.value() == "cancelled") {
      return common::err::cancelled("job was cancelled");
    }
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.poll_interval));
  }
  auto response = daemon_->client->get("/v1/jobs/" + handle.id + "/result");
  if (!response.ok()) return response.error();
  if (response.value().status != 200) {
    return common::err::unavailable("result fetch failed: " +
                                    response.value().body);
  }
  auto parsed = Json::parse(response.value().body);
  if (!parsed.ok()) return parsed.error();
  return Samples::from_json(parsed.value());
}

Status HybridRuntime::cancel(const JobHandle& handle) {
  if (local_.has_value()) return local_->resource->task_stop(handle.id);
  auto response = daemon_->client->del("/v1/jobs/" + handle.id);
  if (!response.ok()) return response.error();
  if (response.value().status != 200) {
    return common::err::failed_precondition("cancel failed: " +
                                            response.value().body);
  }
  return Status::ok_status();
}

Result<Samples> HybridRuntime::run(const Payload& payload) {
  auto handle = submit(payload);
  if (!handle.ok()) return handle.error();
  return wait(handle.value());
}

}  // namespace qcenv::runtime
