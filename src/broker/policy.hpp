// Fleet scheduling policies for the multi-QPU resource broker.
//
// The paper treats local emulators, HPC emulators and QPUs as interchangeable
// QRMI resources; once a site runs more than one of them, every job needs a
// placement decision. Three policies cover the spectrum explored by related
// work (multi-QPU scheduling, arXiv:2508.16297; calibration-aware hybrid
// scheduling, arXiv:2505.19267):
//   round_robin        spread jobs evenly regardless of state
//   least_loaded       place on the resource with the fewest bound jobs
//   calibration_aware  place on the resource whose live device spec scores
//                      best (fidelity, capacity, shot rate)
#pragma once

#include <string>

#include "common/result.hpp"
#include "quantum/device.hpp"

namespace qcenv::broker {

enum class SchedulingPolicy { kRoundRobin, kLeastLoaded, kCalibrationAware };

const char* to_string(SchedulingPolicy policy) noexcept;
common::Result<SchedulingPolicy> policy_from_string(const std::string& text);

/// Placement score in (0, 1] for calibration-aware scheduling. Dominated by
/// the live calibration fidelity, with capacity (qubit count) and speed
/// (shot rate) as secondary terms so a pristine-but-tiny device does not
/// always beat a large production machine.
double calibration_score(const quantum::DeviceSpec& spec);

}  // namespace qcenv::broker
