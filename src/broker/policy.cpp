#include "broker/policy.hpp"

#include <algorithm>

namespace qcenv::broker {

const char* to_string(SchedulingPolicy policy) noexcept {
  switch (policy) {
    case SchedulingPolicy::kRoundRobin: return "round_robin";
    case SchedulingPolicy::kLeastLoaded: return "least_loaded";
    case SchedulingPolicy::kCalibrationAware: return "calibration_aware";
  }
  return "?";
}

common::Result<SchedulingPolicy> policy_from_string(const std::string& text) {
  if (text == "round_robin") return SchedulingPolicy::kRoundRobin;
  if (text == "least_loaded") return SchedulingPolicy::kLeastLoaded;
  if (text == "calibration_aware") return SchedulingPolicy::kCalibrationAware;
  return common::err::invalid_argument(
      "unknown broker policy '" + text +
      "'; expected round_robin, least_loaded or calibration_aware");
}

double calibration_score(const quantum::DeviceSpec& spec) {
  const double fidelity = spec.calibration.fidelity_estimate();
  const double capacity =
      std::min(1.0, static_cast<double>(spec.max_qubits) / 64.0);
  const double speed = std::min(1.0, spec.shot_rate_hz / 100.0);
  return 0.7 * fidelity + 0.2 * capacity + 0.1 * speed;
}

}  // namespace qcenv::broker
