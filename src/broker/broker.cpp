#include "broker/broker.hpp"

#include <algorithm>

#include "common/strings.hpp"

#define QCENV_LOG_COMPONENT "broker"
#include "common/logging.hpp"

namespace qcenv::broker {

using common::Result;
using common::Status;

common::Json ResourceStatus::to_json() const {
  common::Json out = common::Json::object();
  out["name"] = name;
  out["type"] = qrmi::to_string(type);
  out["healthy"] = healthy;
  out["draining"] = draining;
  out["bound_jobs"] = static_cast<long long>(bound_jobs);
  out["inflight_batches"] = static_cast<long long>(inflight_batches);
  out["batches_done"] = static_cast<long long>(batches_done);
  out["shots_done"] = static_cast<long long>(shots_done);
  out["failures"] = static_cast<long long>(failures);
  out["score"] = score;
  if (!advisory.empty()) out["advisory"] = advisory;
  return out;
}

ResourceBroker::ResourceBroker(BrokerOptions options, common::Clock* clock,
                               telemetry::MetricsRegistry* metrics)
    : options_(options), clock_(clock), metrics_(metrics) {}

Status ResourceBroker::add(const std::string& name, qrmi::QrmiPtr resource) {
  if (name.empty()) {
    return common::err::invalid_argument("resource name must not be empty");
  }
  if (resource == nullptr) {
    return common::err::invalid_argument("resource '" + name + "' is null");
  }
  {
    std::scoped_lock lock(mutex_);
    if (fleet_.count(name) > 0) {
      return common::err::already_exists("resource '" + name +
                                         "' is already in the fleet");
    }
    Managed managed;
    managed.resource = resource;
    managed.status.name = name;
    managed.status.type = resource->type();
    managed.backoff = options_.initial_backoff;
    order_.push_back(name);
    fleet_.emplace(name, std::move(managed));
  }
  // Initial probe (outside the lock) settles health and the score.
  (void)probe(name);
  return Status::ok_status();
}

Status ResourceBroker::add_all(const qrmi::ResourceRegistry& registry) {
  for (const auto& name : registry.names()) {
    auto resource = registry.lookup(name);
    if (!resource.ok()) return resource.error();
    QCENV_RETURN_IF_ERROR(add(name, std::move(resource).value()));
  }
  return Status::ok_status();
}

std::size_t ResourceBroker::size() const {
  std::scoped_lock lock(mutex_);
  return fleet_.size();
}

std::vector<std::string> ResourceBroker::names() const {
  std::scoped_lock lock(mutex_);
  return order_;
}

Result<qrmi::QrmiPtr> ResourceBroker::resource(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  if (it == fleet_.end()) return unknown_locked(name);
  return it->second.resource;
}

common::Error ResourceBroker::unknown_locked(const std::string& name) const {
  return common::err::not_found("unknown fleet resource '" + name +
                                "'; available: " +
                                common::join(order_, ", "));
}

std::string ResourceBroker::fleet_summary_locked() const {
  std::vector<std::string> parts;
  parts.reserve(order_.size());
  for (const auto& name : order_) {
    const Managed& managed = fleet_.at(name);
    const char* state = !managed.status.healthy ? "down"
                        : managed.status.draining ? "draining"
                                                  : "up";
    parts.push_back(name + "=" + state);
  }
  return common::join(parts, ", ");
}

void ResourceBroker::log_transition_locked(const char* kind,
                                           const std::string& name,
                                           telemetry::Severity severity) {
  if (events_ == nullptr) return;
  // The message is exactly the resource name: eta.cpp's outage sweep
  // parses these events back into per-resource availability intervals.
  events_->log(clock_->now(), severity, kind, name);
}

void ResourceBroker::set_health_gauge_locked(const Managed& managed) {
  if (metrics_ == nullptr) return;
  metrics_
      ->gauge("broker_resource_healthy",
              {{"resource", managed.status.name}},
              "1 when the fleet resource passes its accessibility probe")
      .set(managed.status.healthy ? 1.0 : 0.0);
}

void ResourceBroker::set_inflight_gauge_locked(const Managed& managed) {
  if (metrics_ == nullptr) return;
  metrics_
      ->gauge("broker_resource_inflight",
              {{"resource", managed.status.name}},
              "batches currently executing on the resource")
      .set(static_cast<double>(managed.status.inflight_batches));
}

Result<std::string> ResourceBroker::pick(const PlacementRequest& request) {
  std::scoped_lock lock(mutex_);
  if (fleet_.empty()) {
    return common::err::failed_precondition("the broker fleet is empty");
  }

  const bool pinned =
      !request.resource_hint.empty() && request.resource_hint != request.exclude;
  if (pinned) {
    const auto it = fleet_.find(request.resource_hint);
    if (it == fleet_.end()) return unknown_locked(request.resource_hint);
    Managed& managed = it->second;
    if (!managed.status.healthy || managed.status.draining) {
      return common::err::unavailable(
          "resource '" + request.resource_hint + "' is " +
          (managed.status.draining ? "draining" : "unhealthy") +
          " (fleet: " + fleet_summary_locked() + ")");
    }
    ++managed.status.bound_jobs;
    return request.resource_hint;
  }

  std::vector<Managed*> candidates;
  candidates.reserve(order_.size());
  for (const auto& name : order_) {
    Managed& managed = fleet_.at(name);
    if (name == request.exclude) continue;
    if (!managed.status.healthy || managed.status.draining) continue;
    candidates.push_back(&managed);
  }
  if (candidates.empty()) {
    return common::err::unavailable(
        "no healthy QRMI resource available (fleet: " +
        fleet_summary_locked() + ")");
  }

  Managed* chosen = nullptr;
  switch (request.policy.value_or(options_.default_policy)) {
    case SchedulingPolicy::kRoundRobin:
      chosen = candidates[round_robin_cursor_++ % candidates.size()];
      break;
    case SchedulingPolicy::kLeastLoaded:
      chosen = *std::min_element(
          candidates.begin(), candidates.end(),
          [](const Managed* a, const Managed* b) {
            if (a->status.bound_jobs != b->status.bound_jobs) {
              return a->status.bound_jobs < b->status.bound_jobs;
            }
            return a->status.shots_done < b->status.shots_done;
          });
      break;
    case SchedulingPolicy::kCalibrationAware:
      chosen = *std::max_element(candidates.begin(), candidates.end(),
                                 [](const Managed* a, const Managed* b) {
                                   return a->status.score < b->status.score;
                                 });
      break;
  }
  ++chosen->status.bound_jobs;
  return chosen->status.name;
}

void ResourceBroker::unbind(const std::string& name) {
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  if (it == fleet_.end()) return;
  if (it->second.status.bound_jobs > 0) --it->second.status.bound_jobs;
}

void ResourceBroker::on_dispatch(const std::string& name,
                                 std::uint64_t shots) {
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  if (it == fleet_.end()) return;
  ++it->second.status.inflight_batches;
  set_inflight_gauge_locked(it->second);
  if (metrics_ != nullptr) {
    metrics_
        ->counter("broker_shots_dispatched_total", {{"resource", name}},
                  "shots handed to the resource")
        .increment(static_cast<double>(shots));
  }
}

void ResourceBroker::on_success(const std::string& name, std::uint64_t shots) {
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  if (it == fleet_.end()) return;
  Managed& managed = it->second;
  if (managed.status.inflight_batches > 0) --managed.status.inflight_batches;
  ++managed.status.batches_done;
  managed.status.shots_done += shots;
  // A completed batch is positive evidence: reset the failure backoff.
  managed.backoff = options_.initial_backoff;
  set_inflight_gauge_locked(managed);
  if (metrics_ != nullptr) {
    metrics_
        ->counter("broker_batches_completed_total", {{"resource", name}},
                  "batches completed on the resource")
        .increment();
  }
}

void ResourceBroker::on_failure(const std::string& name,
                                const common::Error& error) {
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  if (it == fleet_.end()) return;
  Managed& managed = it->second;
  if (managed.status.inflight_batches > 0) --managed.status.inflight_batches;
  ++managed.status.failures;
  if (managed.status.healthy) {
    log_transition_locked("resource_down", name, telemetry::Severity::kWarn);
  }
  managed.status.healthy = false;
  managed.next_probe = clock_->now() + managed.backoff;
  managed.backoff = std::min(managed.backoff * 2, options_.max_backoff);
  set_health_gauge_locked(managed);
  set_inflight_gauge_locked(managed);
  if (metrics_ != nullptr) {
    metrics_
        ->counter("broker_failures_total", {{"resource", name}},
                  "batch executions that failed on the resource")
        .increment();
  }
  QCENV_LOG(Warn) << "resource " << name
                  << " marked unhealthy: " << error.to_string();
}

void ResourceBroker::on_rejected(const std::string& name) {
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  if (it == fleet_.end()) return;
  Managed& managed = it->second;
  if (managed.status.inflight_batches > 0) --managed.status.inflight_batches;
  set_inflight_gauge_locked(managed);
}

bool ResourceBroker::probe(const std::string& name) {
  qrmi::QrmiPtr resource;
  {
    std::scoped_lock lock(mutex_);
    const auto it = fleet_.find(name);
    if (it == fleet_.end()) return false;
    resource = it->second.resource;
    // Provisional re-arm so concurrent callers do not stampede the probe.
    it->second.next_probe = clock_->now() + options_.probe_interval;
  }
  auto accessible = resource->is_accessible();
  const bool up = accessible.ok() && accessible.value();
  double score = 0.0;
  if (up) {
    auto spec = resource->target();
    if (spec.ok()) score = calibration_score(spec.value());
  }
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  if (it == fleet_.end()) return false;
  Managed& managed = it->second;
  const bool was_healthy = managed.status.healthy;
  managed.status.healthy = up;
  if (up) {
    managed.status.score = score;
    managed.backoff = options_.initial_backoff;
    managed.next_probe = clock_->now() + options_.probe_interval;
    if (!was_healthy) {
      QCENV_LOG(Info) << "resource " << name << " recovered";
      log_transition_locked("resource_up", name, telemetry::Severity::kInfo);
    }
  } else {
    if (was_healthy) {
      log_transition_locked("resource_down", name,
                            telemetry::Severity::kWarn);
    }
    managed.next_probe = clock_->now() + managed.backoff;
    managed.backoff = std::min(managed.backoff * 2, options_.max_backoff);
  }
  set_health_gauge_locked(managed);
  return up;
}

bool ResourceBroker::check_health(const std::string& name) {
  {
    std::scoped_lock lock(mutex_);
    const auto it = fleet_.find(name);
    if (it == fleet_.end()) return false;
    if (clock_->now() < it->second.next_probe) {
      return it->second.status.healthy;
    }
  }
  return probe(name);
}

bool ResourceBroker::healthy(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  return it != fleet_.end() && it->second.status.healthy;
}

Status ResourceBroker::drain(const std::string& name) {
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  if (it == fleet_.end()) return unknown_locked(name);
  if (!it->second.status.draining) {
    log_transition_locked("resource_drain", name,
                          telemetry::Severity::kInfo);
  }
  it->second.status.draining = true;
  return Status::ok_status();
}

Status ResourceBroker::resume(const std::string& name) {
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  if (it == fleet_.end()) return unknown_locked(name);
  if (it->second.status.draining) {
    log_transition_locked("resource_resume", name,
                          telemetry::Severity::kInfo);
  }
  it->second.status.draining = false;
  return Status::ok_status();
}

bool ResourceBroker::draining(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  return it != fleet_.end() && it->second.status.draining;
}

std::vector<ResourceStatus> ResourceBroker::snapshot() const {
  std::scoped_lock lock(mutex_);
  std::vector<ResourceStatus> out;
  out.reserve(order_.size());
  for (const auto& name : order_) out.push_back(fleet_.at(name).status);
  return out;
}

common::Json ResourceBroker::FleetSummary::to_json() const {
  common::Json out = common::Json::object();
  out["total"] = static_cast<long long>(total);
  out["healthy"] = static_cast<long long>(healthy);
  out["draining"] = static_cast<long long>(draining);
  out["bound_jobs"] = static_cast<long long>(bound_jobs);
  out["inflight_batches"] = static_cast<long long>(inflight_batches);
  out["mean_score"] = mean_score;
  common::Json classes = common::Json::object();
  for (const auto& [name, score] : class_scores) classes[name] = score;
  out["class_scores"] = std::move(classes);
  return out;
}

ResourceBroker::FleetSummary ResourceBroker::summarize() const {
  FleetSummary summary;
  std::map<std::string, std::pair<double, std::size_t>> by_class;
  std::scoped_lock lock(mutex_);
  for (const auto& name : order_) {
    const ResourceStatus& status = fleet_.at(name).status;
    ++summary.total;
    summary.bound_jobs += status.bound_jobs;
    summary.inflight_batches += status.inflight_batches;
    if (status.draining) ++summary.draining;
    if (status.healthy && !status.draining) {
      ++summary.healthy;
      summary.mean_score += status.score;
      auto& [sum, count] = by_class[qrmi::to_string(status.type)];
      sum += status.score;
      ++count;
    }
  }
  if (summary.healthy > 0) {
    summary.mean_score /= static_cast<double>(summary.healthy);
  }
  for (const auto& [name, acc] : by_class) {
    summary.class_scores[name] = acc.first / static_cast<double>(acc.second);
  }
  return summary;
}

std::map<std::string, double> ResourceBroker::sample_scores() {
  // Collect targets outside the lock (a slow endpoint must not stall the
  // fleet), then fold the scores back in. Every resource is asked, not
  // just cached-healthy ones: the health flag lags reality by up to a
  // probe interval, and a dead endpoint excludes itself by failing
  // target().
  std::vector<std::pair<std::string, qrmi::QrmiPtr>> fleet;
  {
    std::scoped_lock lock(mutex_);
    for (const auto& name : order_) {
      fleet.emplace_back(name, fleet_.at(name).resource);
    }
  }
  std::map<std::string, double> scores;
  for (const auto& [name, resource] : fleet) {
    auto spec = resource->target();
    if (spec.ok()) scores[name] = calibration_score(spec.value());
  }
  std::scoped_lock lock(mutex_);
  for (const auto& [name, score] : scores) {
    const auto it = fleet_.find(name);
    if (it == fleet_.end()) continue;
    it->second.status.score = score;
    if (metrics_ != nullptr) {
      metrics_
          ->gauge("broker_resource_score", {{"resource", name}},
                  "calibration score at the last scrape")
          .set(score);
    }
  }
  return scores;
}

void ResourceBroker::advise(const std::string& name,
                            const std::string& reason) {
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  if (it == fleet_.end()) return;
  it->second.status.advisory = reason;
  if (metrics_ != nullptr) {
    metrics_
        ->counter("broker_advisories_total", {{"resource", name}},
                  "advisories attached by the alerting pipeline")
        .increment();
  }
  QCENV_LOG(Warn) << "resource " << name << " advisory: " << reason;
}

void ResourceBroker::clear_advisory(const std::string& name) {
  std::scoped_lock lock(mutex_);
  const auto it = fleet_.find(name);
  if (it == fleet_.end()) return;
  it->second.status.advisory.clear();
}

}  // namespace qcenv::broker
