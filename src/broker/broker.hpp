// ResourceBroker: fleet management over QRMI resources.
//
// One broker owns a set of named QRMI resources (usually seeded from a
// ResourceRegistry) and answers the question the single-resource daemon
// never had to ask: *which* backend should run the next job? It tracks
//   - health: cached is_accessible() probes, re-checked on an exponential
//     backoff after failures so a dead endpoint is not hammered,
//   - load: jobs currently bound to each resource and batches in flight,
//   - quality: a calibration score refreshed from target() on each probe,
// and routes placements through pluggable SchedulingPolicy values. Dispatch
// lanes report per-batch outcomes back (on_dispatch/on_success/on_failure)
// which keeps the load and health views live and feeds per-resource
// telemetry gauges and counters.
//
// Thread safety: all public methods are safe to call concurrently. Probes
// and target() fetches run outside the broker lock, so a slow endpoint can
// not stall placement decisions for the rest of the fleet.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "broker/policy.hpp"
#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"
#include "qrmi/qrmi.hpp"
#include "qrmi/registry.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"

namespace qcenv::broker {

struct BrokerOptions {
  SchedulingPolicy default_policy = SchedulingPolicy::kLeastLoaded;
  /// How often a healthy resource is re-probed (and its score refreshed).
  common::DurationNs probe_interval = 5 * common::kSecond;
  /// Backoff before the first re-probe of a failed resource; doubles on
  /// every further failure up to max_backoff.
  common::DurationNs initial_backoff = 250 * common::kMillisecond;
  common::DurationNs max_backoff = 30 * common::kSecond;
};

/// Point-in-time view of one fleet member (the /v1/resources payload).
struct ResourceStatus {
  std::string name;
  qrmi::ResourceType type = qrmi::ResourceType::kLocalEmulator;
  bool healthy = true;
  bool draining = false;
  std::size_t bound_jobs = 0;        // jobs currently placed on the resource
  std::size_t inflight_batches = 0;  // batches executing right now
  std::uint64_t batches_done = 0;
  std::uint64_t shots_done = 0;
  std::uint64_t failures = 0;
  double score = 0.0;  // calibration_score at the last refresh
  /// Operator advisory attached by the alerting pipeline (e.g. a critical
  /// calibration-drift alert). Groundwork for calibration-aware routing:
  /// surfaced in /v1/resources, no placement change yet.
  std::string advisory;

  common::Json to_json() const;
};

class ResourceBroker {
 public:
  ResourceBroker(BrokerOptions options, common::Clock* clock,
                 telemetry::MetricsRegistry* metrics);

  /// Registers a resource; probes it once (synchronously — a dead cloud
  /// endpoint delays add() by one connect timeout, the price of a
  /// deterministic initial health/score view) and computes its initial
  /// score. Errors on duplicate names. Resources added after a Dispatcher
  /// was built on this broker get no dispatch lane until a new Dispatcher
  /// is created.
  common::Status add(const std::string& name, qrmi::QrmiPtr resource);
  /// Registers every resource of `registry` under its registry name.
  common::Status add_all(const qrmi::ResourceRegistry& registry);

  std::size_t size() const;
  /// Names in registration order (the round-robin cycle order).
  std::vector<std::string> names() const;
  common::Result<qrmi::QrmiPtr> resource(const std::string& name) const;
  SchedulingPolicy default_policy() const {
    return options_.default_policy;
  }

  struct PlacementRequest {
    /// Policy override for this placement (nullopt = broker default).
    std::optional<SchedulingPolicy> policy;
    /// Pin to a named resource; placement fails if it cannot take jobs.
    std::string resource_hint;
    /// Resource to avoid, e.g. the one that just failed (failover repick).
    /// A matching resource_hint is ignored rather than honoured.
    std::string exclude;
  };

  /// Chooses a healthy, non-draining resource and binds one job to it.
  /// Every successful pick must be paired with unbind() when the job leaves
  /// the resource (terminal state or failover reassignment).
  common::Result<std::string> pick(const PlacementRequest& request = {});
  void unbind(const std::string& name);

  // Per-batch accounting, called by dispatch lanes.
  void on_dispatch(const std::string& name, std::uint64_t shots);
  void on_success(const std::string& name, std::uint64_t shots);
  /// Marks the resource unhealthy and arms the probe backoff.
  void on_failure(const std::string& name, const common::Error& error);
  /// The batch was rejected (bad payload) but the resource itself is fine:
  /// releases the in-flight slot without touching health.
  void on_rejected(const std::string& name);

  /// Health with lazy re-probe: returns the cached flag until the probe
  /// interval (healthy) or current backoff (unhealthy) elapses, then calls
  /// is_accessible() and refreshes the calibration score.
  bool check_health(const std::string& name);
  /// Cached health flag only — never probes.
  bool healthy(const std::string& name) const;

  common::Status drain(const std::string& name);
  common::Status resume(const std::string& name);
  bool draining(const std::string& name) const;

  std::vector<ResourceStatus> snapshot() const;

  /// Aggregate fleet capacity/health — what a federated peer daemon needs
  /// to decide whether to route a submission here (GET /admin/federation
  /// advertises this verbatim).
  struct FleetSummary {
    std::size_t total = 0;
    std::size_t healthy = 0;  ///< healthy AND not draining
    std::size_t draining = 0;
    std::size_t bound_jobs = 0;
    std::size_t inflight_batches = 0;
    /// Mean calibration score over the healthy, non-draining resources
    /// (0 when none qualify).
    double mean_score = 0.0;
    /// Same mean broken out by resource class (qrmi type name), so a
    /// federated router can match a job's class preference.
    std::map<std::string, double> class_scores;

    common::Json to_json() const;
  };
  FleetSummary summarize() const;

  /// Refreshes every resource's calibration score from target() right now
  /// (the scrape-loop entry point: probe-driven refreshes are
  /// interleaving-dependent, a scrape wants scores as-of the deadline).
  /// Every registered resource is asked — the cached health flag lags
  /// reality by up to a probe interval, and an actually-dead endpoint
  /// drops out on its own by failing target(). Returns name -> score for
  /// the resources that answered.
  std::map<std::string, double> sample_scores();

  /// Attaches/clears an operator advisory on a resource (drift alerts).
  void advise(const std::string& name, const std::string& reason);
  void clear_advisory(const std::string& name);

  /// Structured-event sink for availability transitions: resource_down /
  /// resource_up / resource_drain / resource_resume events whose message
  /// is exactly the resource name. The ETA engine replays them to compute
  /// a job's drain/outage wait overlap. Must be set before any resource
  /// can transition (i.e. right after construction) and outlive the
  /// broker; nullptr (the default) disables.
  void set_event_log(telemetry::EventLog* events) { events_ = events; }

 private:
  struct Managed {
    qrmi::QrmiPtr resource;
    ResourceStatus status;
    common::TimeNs next_probe = 0;
    common::DurationNs backoff = 0;
  };

  /// One-line fleet summary ("emu0=up, emu1=down, emu2=draining").
  std::string fleet_summary_locked() const;
  /// not_found error for a name absent from the fleet, listing what exists.
  common::Error unknown_locked(const std::string& name) const;
  void set_health_gauge_locked(const Managed& managed);
  void set_inflight_gauge_locked(const Managed& managed);
  /// Probes `name` outside the lock and folds the outcome back in.
  bool probe(const std::string& name);

  /// Logs an availability transition (caller holds mutex_; the event
  /// log's own lock is a leaf).
  void log_transition_locked(const char* kind, const std::string& name,
                             telemetry::Severity severity);

  BrokerOptions options_;
  common::Clock* clock_;
  telemetry::MetricsRegistry* metrics_;
  telemetry::EventLog* events_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<std::string> order_;
  std::map<std::string, Managed> fleet_;
  std::uint64_t round_robin_cursor_ = 0;
};

}  // namespace qcenv::broker
