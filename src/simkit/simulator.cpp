#include "simkit/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace qcenv::simkit {

std::uint64_t Simulator::schedule_at(TimeNs at, EventFn fn) {
  if (at < now_) at = now_;
  const std::uint64_t id = next_id_++;
  events_.push(Event{at, next_seq_++, id, std::move(fn)});
  ++live_events_;
  return id;
}

bool Simulator::cancel(std::uint64_t event_id) {
  // The priority queue cannot delete arbitrary entries; tombstone instead.
  // Tombstones are rare (cancellations are uncommon) so linear scan is fine.
  if (std::find(cancelled_.begin(), cancelled_.end(), event_id) !=
      cancelled_.end()) {
    return false;
  }
  if (event_id == 0 || event_id >= next_id_) return false;
  cancelled_.push_back(event_id);
  if (live_events_ > 0) --live_events_;
  return true;
}

bool Simulator::step() {
  while (!events_.empty()) {
    Event ev = events_.top();
    events_.pop();
    const auto it =
        std::find(cancelled_.begin(), cancelled_.end(), ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;  // tombstoned
    }
    assert(ev.at >= now_ && "event time went backwards");
    now_ = ev.at;
    --live_events_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run(TimeNs until) {
  std::size_t executed = 0;
  while (!events_.empty()) {
    // Peek through tombstones to find the next live event time.
    if (events_.top().at > until) break;
    if (step()) ++executed;
  }
  if (now_ < until && until != std::numeric_limits<TimeNs>::max()) {
    now_ = until;
  }
  return executed;
}

void SimClock::sleep_for(DurationNs) {
  assert(false &&
         "SimClock::sleep_for called: simulation code must use "
         "Simulator::schedule_after, not blocking sleeps");
}

}  // namespace qcenv::simkit
