// Discrete-event simulation engine. Scheduler cores (slurmlite and the
// daemon's second-level scheduler) are deterministic state machines; this
// engine advances them in virtual time so multi-hour cluster scenarios run
// in milliseconds while exercising the same code as the live daemon.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "common/clock.hpp"

namespace qcenv::simkit {

using common::DurationNs;
using common::TimeNs;

/// Callback executed when its event fires. Events scheduled at the same time
/// fire in scheduling order (stable sequence number tie-break), which makes
/// runs reproducible.
using EventFn = std::function<void()>;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `at` (clamped to now()).
  /// Returns an id usable with cancel().
  std::uint64_t schedule_at(TimeNs at, EventFn fn);

  /// Schedules `fn` to run `delay` from now.
  std::uint64_t schedule_after(DurationNs delay, EventFn fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Cancels a pending event; returns false if already fired or unknown.
  bool cancel(std::uint64_t event_id);

  /// Runs until the event queue is empty or `until` is reached
  /// (whichever comes first). Returns the number of events executed.
  std::size_t run(TimeNs until = std::numeric_limits<TimeNs>::max());

  /// Executes exactly one event if available; returns false when idle.
  bool step();

  bool empty() const { return live_events_ == 0; }
  std::size_t pending() const { return live_events_; }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t seq;
    std::uint64_t id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  // Cancelled ids are tombstoned; events check membership before firing.
  std::vector<std::uint64_t> cancelled_;
};

/// Clock adapter exposing simulator virtual time through common::Clock
/// (read-only; sleep_for is invalid inside an event callback and asserts).
class SimClock final : public common::Clock {
 public:
  explicit SimClock(const Simulator& sim) : sim_(sim) {}
  TimeNs now() const override { return sim_.now(); }
  void sleep_for(DurationNs) override;  // asserts: use schedule_after instead

 private:
  const Simulator& sim_;
};

}  // namespace qcenv::simkit
