#include "sdk/qgate.hpp"

#include <numbers>

namespace qcenv::sdk::qgate {

using common::Result;
using quantum::Circuit;
using quantum::Gate;
using quantum::GateKind;

namespace {
constexpr double kPi = std::numbers::pi;

/// H up to global phase: apply RZ(pi) then RY(pi/2).
void emit_h(Circuit& out, std::size_t q) {
  out.rz(q, kPi);
  out.ry(q, kPi / 2.0);
}

void emit_native_1q(Circuit& out, const Gate& gate) {
  const std::size_t q = gate.qubits[0];
  switch (gate.kind) {
    case GateKind::kI: break;
    case GateKind::kX: out.rx(q, kPi); break;
    case GateKind::kY: out.ry(q, kPi); break;
    case GateKind::kZ: out.rz(q, kPi); break;
    case GateKind::kH: emit_h(out, q); break;
    case GateKind::kS: out.rz(q, kPi / 2.0); break;
    case GateKind::kSdg: out.rz(q, -kPi / 2.0); break;
    case GateKind::kT: out.rz(q, kPi / 4.0); break;
    case GateKind::kTdg: out.rz(q, -kPi / 4.0); break;
    case GateKind::kRx: out.rx(q, gate.param); break;
    case GateKind::kRy: out.ry(q, gate.param); break;
    case GateKind::kRz: out.rz(q, gate.param); break;
    case GateKind::kPhase: out.rz(q, gate.param); break;
    default: break;
  }
}

/// CX(control, target) = (I x H) CZ (I x H) on the target.
void emit_cx(Circuit& out, std::size_t control, std::size_t target) {
  emit_h(out, target);
  out.cz(control, target);
  emit_h(out, target);
}
}  // namespace

bool is_native(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kRx:
    case GateKind::kRy:
    case GateKind::kRz:
    case GateKind::kCz:
      return true;
    default:
      return false;
  }
}

Result<Circuit> transpile(const Circuit& circuit) {
  QCENV_RETURN_IF_ERROR(circuit.validate());
  Circuit out(circuit.num_qubits());
  for (const Gate& gate : circuit.gates()) {
    switch (gate.kind) {
      case GateKind::kCz:
        out.cz(gate.qubits[0], gate.qubits[1]);
        break;
      case GateKind::kCx:
        emit_cx(out, gate.qubits[0], gate.qubits[1]);
        break;
      case GateKind::kSwap:
        emit_cx(out, gate.qubits[0], gate.qubits[1]);
        emit_cx(out, gate.qubits[1], gate.qubits[0]);
        emit_cx(out, gate.qubits[0], gate.qubits[1]);
        break;
      default:
        emit_native_1q(out, gate);
        break;
    }
  }
  return out;
}

TranspileStats stats(const Circuit& input, const Circuit& output) {
  TranspileStats out;
  out.input_gates = input.size();
  out.output_gates = output.size();
  out.two_qubit_gates = output.two_qubit_gate_count();
  return out;
}

Result<quantum::Payload> to_payload(const Circuit& circuit,
                                    std::uint64_t shots, bool native_only) {
  Circuit lowered = circuit;
  if (native_only) {
    auto transpiled = transpile(circuit);
    if (!transpiled.ok()) return transpiled.error();
    lowered = std::move(transpiled).value();
  } else {
    QCENV_RETURN_IF_ERROR(circuit.validate());
  }
  quantum::Payload payload = quantum::Payload::from_circuit(lowered, shots);
  payload.metadata()["sdk"] = "qgate";
  payload.metadata()["transpiled"] = native_only;
  return payload;
}

Circuit ghz(std::size_t n) {
  Circuit circuit(n);
  if (n == 0) return circuit;
  circuit.h(0);
  for (std::size_t q = 0; q + 1 < n; ++q) circuit.cx(q, q + 1);
  return circuit;
}

Circuit qaoa_maxcut(
    std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    const std::vector<double>& gammas, const std::vector<double>& betas) {
  Circuit circuit(n);
  for (std::size_t q = 0; q < n; ++q) circuit.h(q);
  const std::size_t layers = std::min(gammas.size(), betas.size());
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (const auto& [a, b] : edges) {
      // exp(-i gamma Z_a Z_b) = CX(a,b) RZ(2 gamma on b) CX(a,b).
      circuit.cx(a, b);
      circuit.rz(b, 2.0 * gammas[layer]);
      circuit.cx(a, b);
    }
    for (std::size_t q = 0; q < n; ++q) circuit.rx(q, 2.0 * betas[layer]);
  }
  return circuit;
}

}  // namespace qcenv::sdk::qgate
