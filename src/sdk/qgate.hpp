// "qgate" SDK: a Qiskit-style gate-circuit front-end with a transpiler to
// the native gate set {RX, RY, RZ, CZ} of the simulated digital backend.
#pragma once

#include "common/result.hpp"
#include "quantum/circuit.hpp"
#include "quantum/payload.hpp"

namespace qcenv::sdk::qgate {

/// Native gates after transpilation.
bool is_native(quantum::GateKind kind) noexcept;

/// Rewrites a circuit into the native set. Unitary-equivalent up to global
/// phase (verified by tests). H, S, T, X, Y, Z, PHASE become rotations;
/// CX/SWAP decompose over CZ with basis changes.
common::Result<quantum::Circuit> transpile(const quantum::Circuit& circuit);

/// Counts used by transpilation reports.
struct TranspileStats {
  std::size_t input_gates = 0;
  std::size_t output_gates = 0;
  std::size_t two_qubit_gates = 0;
};
TranspileStats stats(const quantum::Circuit& input,
                     const quantum::Circuit& output);

/// Wraps a circuit as a payload (transpiling when `native_only`).
common::Result<quantum::Payload> to_payload(const quantum::Circuit& circuit,
                                            std::uint64_t shots,
                                            bool native_only = false);

// -- Ready-made circuit generators used by examples and benches ------------

/// GHZ state preparation on n qubits.
quantum::Circuit ghz(std::size_t n);

/// One QAOA-like layer for MaxCut on the given edges:
/// cost layer exp(-i gamma Z Z) per edge + mixer RX(2 beta).
quantum::Circuit qaoa_maxcut(std::size_t n,
                             const std::vector<std::pair<std::size_t, std::size_t>>& edges,
                             const std::vector<double>& gammas,
                             const std::vector<double>& betas);

}  // namespace qcenv::sdk::qgate
