#include "sdk/kernelq.hpp"

namespace qcenv::sdk::kernelq {

using common::Result;

Result<quantum::Payload> Kernel::to_payload(std::uint64_t shots) const {
  QCENV_RETURN_IF_ERROR(circuit_.validate());
  quantum::Payload payload = quantum::Payload::from_circuit(circuit_, shots);
  payload.metadata()["sdk"] = "kernelq";
  return payload;
}

Result<quantum::Samples> sample(const Kernel& kernel, std::uint64_t shots,
                                qrmi::Qrmi& resource) {
  auto payload = kernel.to_payload(shots);
  if (!payload.ok()) return payload.error();
  return resource.run_sync(payload.value());
}

Result<double> observe(const Kernel& kernel,
                       const quantum::Observable& observable,
                       std::uint64_t shots, qrmi::Qrmi& resource) {
  if (!observable.is_diagonal()) {
    return common::err::invalid_argument(
        "observe() needs a diagonal (I/Z) observable; rotate the basis in "
        "the kernel for X/Y terms");
  }
  auto samples = sample(kernel, shots, resource);
  if (!samples.ok()) return samples.error();
  return observable.expectation_from_samples(samples.value());
}

}  // namespace qcenv::sdk::kernelq
