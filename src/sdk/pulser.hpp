// "pulser" SDK: an analog sequence builder mirroring the Pulser API shape
// (declare channels on a device, append pulses, build). One of the three
// first-class SDK front-ends; lowers to the common Payload.
#pragma once

#include <map>
#include <string>

#include "common/result.hpp"
#include "quantum/device.hpp"
#include "quantum/payload.hpp"
#include "quantum/sequence.hpp"

namespace qcenv::sdk::pulser {

/// Channel kinds available on the simulated analog device.
enum class ChannelKind { kRydbergGlobal, kDetuningMap };

class SequenceBuilder {
 public:
  /// The builder validates against `device` at build() time, exactly like
  /// Pulser validates against a Device object.
  SequenceBuilder(quantum::AtomRegister register_, quantum::DeviceSpec device);

  /// Declares a named channel; only one rydberg_global and at most one
  /// detuning map are supported (matching the analog hardware).
  common::Status declare_channel(const std::string& name, ChannelKind kind);

  /// Appends a pulse to a declared rydberg_global channel.
  common::Status add(const quantum::Pulse& pulse, const std::string& channel);

  /// Configures the detuning map (weights per atom + shared waveform) on a
  /// declared detuning-map channel.
  common::Status add_detuning_map(const std::string& channel,
                                  std::vector<double> weights,
                                  quantum::Waveform waveform);

  /// Validates the assembled sequence against the device and returns it.
  common::Result<quantum::Sequence> build() const;

  /// build() + wrap as a portable payload.
  common::Result<quantum::Payload> to_payload(std::uint64_t shots) const;

  const quantum::DeviceSpec& device() const noexcept { return device_; }

 private:
  quantum::AtomRegister register_;
  quantum::DeviceSpec device_;
  std::map<std::string, ChannelKind> channels_;
  quantum::Sequence sequence_;
  bool has_detuning_map_ = false;
};

// Pulse factory helpers in the Pulser style.

/// Constant-amplitude, constant-detuning pulse.
quantum::Pulse constant_pulse(quantum::DurationNsQ duration, double amplitude,
                              double detuning, double phase);

/// Blackman amplitude envelope of the given area with constant detuning.
quantum::Pulse blackman_pulse(quantum::DurationNsQ duration, double area,
                              double detuning, double phase);

/// Constant amplitude with linear detuning sweep (adiabatic ramps).
quantum::Pulse ramp_detuning_pulse(quantum::DurationNsQ duration,
                                   double amplitude, double detuning_start,
                                   double detuning_stop, double phase);

}  // namespace qcenv::sdk::pulser
