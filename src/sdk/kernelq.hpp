// "kernelq" SDK: a CUDA-Q-style kernel front-end. Kernels record gate
// applications on typed qubit handles; free functions sample/observe lower
// the recording to the common Payload and execute it through any QRMI
// resource — the third first-class SDK of the multi-SDK story.
//
//   Kernel k(2);
//   auto q = k.qubits();
//   k.h(q[0]); k.cx(q[0], q[1]);
//   auto samples = kernelq::sample(k, 1000, *resource);
#pragma once

#include <cstddef>
#include <vector>

#include "common/result.hpp"
#include "qrmi/qrmi.hpp"
#include "quantum/circuit.hpp"
#include "quantum/observable.hpp"
#include "quantum/payload.hpp"

namespace qcenv::sdk::kernelq {

/// Typed qubit handle bound to a kernel.
struct Qubit {
  std::size_t index = 0;
};

class Kernel {
 public:
  explicit Kernel(std::size_t num_qubits) : circuit_(num_qubits) {
    qubits_.reserve(num_qubits);
    for (std::size_t i = 0; i < num_qubits; ++i) qubits_.push_back(Qubit{i});
  }

  const std::vector<Qubit>& qubits() const noexcept { return qubits_; }
  std::size_t num_qubits() const noexcept { return circuit_.num_qubits(); }

  Kernel& h(Qubit q) { circuit_.h(q.index); return *this; }
  Kernel& x(Qubit q) { circuit_.x(q.index); return *this; }
  Kernel& y(Qubit q) { circuit_.y(q.index); return *this; }
  Kernel& z(Qubit q) { circuit_.z(q.index); return *this; }
  Kernel& t(Qubit q) { circuit_.t(q.index); return *this; }
  Kernel& s(Qubit q) { circuit_.s(q.index); return *this; }
  Kernel& rx(Qubit q, double angle) { circuit_.rx(q.index, angle); return *this; }
  Kernel& ry(Qubit q, double angle) { circuit_.ry(q.index, angle); return *this; }
  Kernel& rz(Qubit q, double angle) { circuit_.rz(q.index, angle); return *this; }
  Kernel& cx(Qubit control, Qubit target) {
    circuit_.cx(control.index, target.index);
    return *this;
  }
  Kernel& cz(Qubit a, Qubit b) {
    circuit_.cz(a.index, b.index);
    return *this;
  }
  Kernel& swap(Qubit a, Qubit b) {
    circuit_.swap(a.index, b.index);
    return *this;
  }

  const quantum::Circuit& circuit() const noexcept { return circuit_; }

  /// Lowers the recording to a portable payload.
  common::Result<quantum::Payload> to_payload(std::uint64_t shots) const;

 private:
  quantum::Circuit circuit_;
  std::vector<Qubit> qubits_;
};

/// cudaq::sample analogue: executes the kernel on a QRMI resource.
common::Result<quantum::Samples> sample(const Kernel& kernel,
                                        std::uint64_t shots,
                                        qrmi::Qrmi& resource);

/// cudaq::observe analogue for diagonal observables: estimates <obs> from
/// samples taken on the resource.
common::Result<double> observe(const Kernel& kernel,
                               const quantum::Observable& observable,
                               std::uint64_t shots, qrmi::Qrmi& resource);

}  // namespace qcenv::sdk::kernelq
