#include "sdk/pulser.hpp"

namespace qcenv::sdk::pulser {

using common::Result;
using common::Status;
using quantum::Pulse;
using quantum::Waveform;

SequenceBuilder::SequenceBuilder(quantum::AtomRegister register_in,
                                 quantum::DeviceSpec device)
    : register_(std::move(register_in)),
      device_(std::move(device)),
      sequence_(register_) {}

Status SequenceBuilder::declare_channel(const std::string& name,
                                        ChannelKind kind) {
  if (channels_.count(name) > 0) {
    return common::err::already_exists("channel '" + name +
                                       "' already declared");
  }
  if (kind == ChannelKind::kRydbergGlobal) {
    for (const auto& [_, existing] : channels_) {
      if (existing == ChannelKind::kRydbergGlobal) {
        return common::err::failed_precondition(
            "device exposes a single global Rydberg channel");
      }
    }
  }
  channels_[name] = kind;
  return Status::ok_status();
}

Status SequenceBuilder::add(const Pulse& pulse, const std::string& channel) {
  const auto it = channels_.find(channel);
  if (it == channels_.end()) {
    return common::err::not_found("channel '" + channel + "' not declared");
  }
  if (it->second != ChannelKind::kRydbergGlobal) {
    return common::err::invalid_argument(
        "pulses can only target the rydberg_global channel");
  }
  sequence_.add_pulse(pulse);
  return Status::ok_status();
}

Status SequenceBuilder::add_detuning_map(const std::string& channel,
                                         std::vector<double> weights,
                                         Waveform waveform) {
  const auto it = channels_.find(channel);
  if (it == channels_.end()) {
    return common::err::not_found("channel '" + channel + "' not declared");
  }
  if (it->second != ChannelKind::kDetuningMap) {
    return common::err::invalid_argument("channel '" + channel +
                                         "' is not a detuning map");
  }
  if (has_detuning_map_) {
    return common::err::failed_precondition(
        "detuning map already configured");
  }
  quantum::DetuningMap map;
  map.weights = std::move(weights);
  map.detuning = std::move(waveform);
  sequence_.set_detuning_map(std::move(map));
  has_detuning_map_ = true;
  return Status::ok_status();
}

Result<quantum::Sequence> SequenceBuilder::build() const {
  QCENV_RETURN_IF_ERROR(device_.validate(sequence_));
  return sequence_;
}

Result<quantum::Payload> SequenceBuilder::to_payload(
    std::uint64_t shots) const {
  auto sequence = build();
  if (!sequence.ok()) return sequence.error();
  quantum::Payload payload =
      quantum::Payload::from_sequence(sequence.value(), shots);
  payload.metadata()["sdk"] = "pulser";
  return payload;
}

Pulse constant_pulse(quantum::DurationNsQ duration, double amplitude,
                     double detuning, double phase) {
  return Pulse{Waveform::constant(duration, amplitude),
               Waveform::constant(duration, detuning), phase};
}

Pulse blackman_pulse(quantum::DurationNsQ duration, double area,
                     double detuning, double phase) {
  return Pulse{Waveform::blackman(duration, area),
               Waveform::constant(duration, detuning), phase};
}

Pulse ramp_detuning_pulse(quantum::DurationNsQ duration, double amplitude,
                          double detuning_start, double detuning_stop,
                          double phase) {
  return Pulse{Waveform::constant(duration, amplitude),
               Waveform::ramp(duration, detuning_start, detuning_stop),
               phase};
}

}  // namespace qcenv::sdk::pulser
