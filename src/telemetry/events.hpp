// Structured JSON event log: a bounded in-memory ring of operator-facing
// events (submit rejections, failovers, slow jobs, journal fail-stop,
// fsync stalls, session lifecycle) with severity/tenant/job/trace fields.
//
// Consumers tail it with since(seq): every event carries a monotonically
// increasing sequence number, so `GET /admin/events?since=N` returns only
// what the caller has not seen yet and survives ring eviction gracefully
// (evicted events are simply absent). Timestamps are caller-supplied from
// the injected common::Clock, so simtest event logs are deterministic.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"

namespace qcenv::telemetry {

enum class Severity { kInfo, kWarn, kError };

const char* severity_name(Severity severity);

struct Event {
  std::uint64_t seq = 0;
  common::TimeNs at = 0;
  Severity severity = Severity::kInfo;
  /// Machine-matchable kind: "submit_rejected", "failover", "slow_job",
  /// "journal_fail_stop", "fsync_stall", ...
  std::string kind;
  std::string message;
  std::string user;           // tenant, empty when not applicable
  std::uint64_t job_id = 0;   // 0 when not job-scoped
  std::uint64_t trace_id = 0;  // 0 when no trace correlates
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 4096);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends an event; returns its sequence number.
  std::uint64_t log(common::TimeNs now, Severity severity, std::string kind,
                    std::string message, std::string user = "",
                    std::uint64_t job_id = 0, std::uint64_t trace_id = 0);

  /// Tail filter: match everything unless the field is set.
  struct Filter {
    std::optional<Severity> severity;
    std::optional<std::string> kind;

    bool matches(const Event& event) const {
      if (severity.has_value() && event.severity != *severity) return false;
      if (kind.has_value() && event.kind != *kind) return false;
      return true;
    }
  };

  /// Events with seq > `after_seq`, oldest first, at most `max`.
  std::vector<Event> since(std::uint64_t after_seq,
                           std::size_t max = 256) const {
    return since(after_seq, max, Filter{});
  }
  /// Filtered variant: `max` bounds the *matching* events returned.
  std::vector<Event> since(std::uint64_t after_seq, std::size_t max,
                           const Filter& filter) const;
  /// The newest `n` events, oldest first (the flight-recorder tail).
  std::vector<Event> tail(std::size_t n) const;
  /// Sequence number of the newest event (0 when empty).
  std::uint64_t last_seq() const;

  static common::Json to_json(const Event& event);

 private:
  mutable std::mutex mutex_;
  std::vector<Event> ring_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace qcenv::telemetry
