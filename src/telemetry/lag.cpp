#include "telemetry/lag.hpp"

namespace qcenv::telemetry {

common::Json LagTracker::Summary::to_json() const {
  common::Json out = common::Json::object();
  out["current"] = static_cast<long long>(current);
  out["max"] = static_cast<long long>(max);
  out["mean"] = mean;
  out["samples"] = static_cast<long long>(samples);
  return out;
}

void LagTracker::record(common::TimeNs at, std::uint64_t lag_events) {
  std::scoped_lock lock(mutex_);
  current_ = lag_events;
  if (lag_events > max_) max_ = lag_events;
  sum_ += static_cast<double>(lag_events);
  ++count_;
  recent_.push_back({at, lag_events});
  while (recent_.size() > window_) recent_.pop_front();
}

LagTracker::Summary LagTracker::summary() const {
  std::scoped_lock lock(mutex_);
  Summary out;
  out.current = current_;
  out.max = max_;
  out.mean = count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  out.samples = count_;
  return out;
}

std::deque<LagTracker::Sample> LagTracker::recent() const {
  std::scoped_lock lock(mutex_);
  return recent_;
}

}  // namespace qcenv::telemetry
