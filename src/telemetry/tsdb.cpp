#include "telemetry/tsdb.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/strings.hpp"

namespace qcenv::telemetry {

using common::Result;
using common::Status;

std::string SeriesKey::to_string() const {
  std::string out = measurement;
  for (const auto& [tag, value] : tags) {
    out += "," + tag + "=" + value;
  }
  return out;
}

Result<SeriesKey> SeriesKey::parse(const std::string& text) {
  SeriesKey key;
  const auto name_tags = common::split(text, ',');
  key.measurement = name_tags.empty() ? "" : name_tags[0];
  if (key.measurement.empty()) {
    return common::err::protocol("empty measurement name");
  }
  for (std::size_t i = 1; i < name_tags.size(); ++i) {
    const std::size_t eq = name_tags[i].find('=');
    if (eq == std::string::npos) {
      return common::err::protocol("malformed tag: " + name_tags[i]);
    }
    key.tags[name_tags[i].substr(0, eq)] = name_tags[i].substr(eq + 1);
  }
  return key;
}

void TimeSeriesDb::write(const SeriesKey& key, Point point) {
  std::scoped_lock lock(mutex_);
  auto& series = data_[key];
  // Points arrive mostly in time order; insert-sort from the back when not.
  if (!series.empty() && point.time < series.back().time) {
    const auto it = std::upper_bound(
        series.begin(), series.end(), point,
        [](const Point& a, const Point& b) { return a.time < b.time; });
    series.insert(it, point);
  } else {
    series.push_back(point);
  }
  if (series.size() > retention_) {
    series.erase(series.begin(),
                 series.begin() + static_cast<std::ptrdiff_t>(
                                      series.size() - retention_));
  }
}

Status TimeSeriesDb::write_line(const std::string& line) {
  // measurement[,tag=v]* <space> value=<num> <space> <timestamp>
  const auto sections = common::split(std::string(common::trim(line)), ' ');
  if (sections.size() != 3) {
    return common::err::protocol("line protocol needs 3 sections: " + line);
  }
  auto key = SeriesKey::parse(sections[0]);
  if (!key.ok()) return key.error();
  if (!common::starts_with(sections[1], "value=")) {
    return common::err::protocol("expected value=<num> field");
  }
  char* end = nullptr;
  const std::string value_text = sections[1].substr(6);
  const double value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str() || *end != '\0') {
    return common::err::protocol("bad field value: " + value_text);
  }
  const long long time = std::strtoll(sections[2].c_str(), &end, 10);
  if (end == sections[2].c_str() || *end != '\0') {
    return common::err::protocol("bad timestamp: " + sections[2]);
  }
  write(key.value(), Point{time, value});
  return Status::ok_status();
}

Result<std::string> TimeSeriesDb::dump_series(const SeriesKey& key) const {
  std::scoped_lock lock(mutex_);
  const auto it = data_.find(key);
  if (it == data_.end()) {
    return common::err::not_found("unknown series: " + key.to_string());
  }
  std::string out;
  for (const Point& point : it->second) {
    out += key.to_string() + " value=" +
           common::format_double_shortest(point.value) + " " +
           std::to_string(point.time) + "\n";
  }
  return out;
}

std::vector<Point> TimeSeriesDb::query_range(const SeriesKey& key,
                                             common::TimeNs start,
                                             common::TimeNs end) const {
  std::scoped_lock lock(mutex_);
  std::vector<Point> out;
  const auto it = data_.find(key);
  if (it == data_.end()) return out;
  for (const Point& point : it->second) {
    if (point.time >= start && point.time <= end) out.push_back(point);
  }
  return out;
}

std::optional<Point> TimeSeriesDb::last(const SeriesKey& key) const {
  std::scoped_lock lock(mutex_);
  const auto it = data_.find(key);
  if (it == data_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::vector<WindowPoint> TimeSeriesDb::aggregate(
    const SeriesKey& key, common::TimeNs start, common::TimeNs end,
    common::DurationNs window, Aggregation aggregation) const {
  std::vector<WindowPoint> out;
  if (window <= 0 || end <= start) return out;
  const auto points = query_range(key, start, end - 1);
  const auto num_windows =
      static_cast<std::size_t>((end - start + window - 1) / window);
  out.resize(num_windows);
  for (std::size_t w = 0; w < num_windows; ++w) {
    out[w].window_start = start + static_cast<common::TimeNs>(w) * window;
  }
  // Counter state for kRate: the previous sample's value carries across
  // window boundaries so the first point of a window still contributes its
  // delta from the tail of the previous one.
  bool has_prev = false;
  double prev = 0.0;
  for (const Point& point : points) {
    const auto w = static_cast<std::size_t>((point.time - start) / window);
    WindowPoint& wp = out[w];
    switch (aggregation) {
      case Aggregation::kMean:
      case Aggregation::kSum:
        wp.value += point.value;
        break;
      case Aggregation::kMin:
        wp.value = wp.samples == 0 ? point.value
                                   : std::min(wp.value, point.value);
        break;
      case Aggregation::kMax:
        wp.value = wp.samples == 0 ? point.value
                                   : std::max(wp.value, point.value);
        break;
      case Aggregation::kLast:
        wp.value = point.value;
        break;
      case Aggregation::kCount:
        break;
      case Aggregation::kRate:
        if (has_prev) {
          wp.value += point.value >= prev ? point.value - prev : point.value;
        }
        break;
    }
    has_prev = true;
    prev = point.value;
    ++wp.samples;
  }
  for (WindowPoint& wp : out) {
    if (aggregation == Aggregation::kMean && wp.samples > 0) {
      wp.value /= static_cast<double>(wp.samples);
    }
    if (aggregation == Aggregation::kCount) {
      wp.value = static_cast<double>(wp.samples);
    }
    if (aggregation == Aggregation::kRate) {
      wp.value /= common::to_seconds(window);
    }
  }
  return out;
}

std::vector<SeriesKey> TimeSeriesDb::series() const {
  std::scoped_lock lock(mutex_);
  std::vector<SeriesKey> out;
  out.reserve(data_.size());
  for (const auto& [key, _] : data_) out.push_back(key);
  return out;
}

std::size_t TimeSeriesDb::point_count(const SeriesKey& key) const {
  std::scoped_lock lock(mutex_);
  const auto it = data_.find(key);
  return it == data_.end() ? 0 : it->second.size();
}

}  // namespace qcenv::telemetry
