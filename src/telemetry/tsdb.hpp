// Mini time-series database (the InfluxDB role in the paper's stack).
//
// Series are keyed by measurement name + sorted tag set. Points are
// (timestamp, value). Supports InfluxDB line-protocol round-trips, range
// queries, windowed aggregation and a retention cap.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"

namespace qcenv::telemetry {

using Tags = std::map<std::string, std::string>;

struct Point {
  common::TimeNs time = 0;
  double value = 0;
};

struct SeriesKey {
  std::string measurement;
  Tags tags;

  bool operator<(const SeriesKey& other) const {
    if (measurement != other.measurement) {
      return measurement < other.measurement;
    }
    return tags < other.tags;
  }
  bool operator==(const SeriesKey&) const = default;

  /// "qpu_fidelity,device=fresnel" (tags sorted).
  std::string to_string() const;
  /// Inverse of to_string(): "measurement[,tag=v]*" (the line-protocol key
  /// section, also the /admin/tsdb `series=` query syntax).
  static common::Result<SeriesKey> parse(const std::string& text);
};

/// kRate is the counter aggregation: per-second increase over each window,
/// tolerant of counter resets (a value decrease means the process restarted
/// and the counter began again from zero — the post-reset value IS the
/// increase, never a negative delta).
enum class Aggregation { kMean, kMin, kMax, kLast, kSum, kCount, kRate };

struct WindowPoint {
  common::TimeNs window_start = 0;
  double value = 0;
  std::size_t samples = 0;
};

class TimeSeriesDb {
 public:
  /// `max_points_per_series` bounds memory; the oldest points are dropped.
  explicit TimeSeriesDb(std::size_t max_points_per_series = 100000)
      : retention_(max_points_per_series) {}

  void write(const SeriesKey& key, Point point);
  void write(const std::string& measurement, const Tags& tags,
             common::TimeNs time, double value) {
    write(SeriesKey{measurement, tags}, Point{time, value});
  }

  /// Ingests one line-protocol line: "measurement,tag=v value=1.5 123456".
  common::Status write_line(const std::string& line);

  /// Serializes a series to line protocol (one line per point).
  common::Result<std::string> dump_series(const SeriesKey& key) const;

  /// Points with time in [start, end].
  std::vector<Point> query_range(const SeriesKey& key, common::TimeNs start,
                                 common::TimeNs end) const;

  /// Latest point of a series.
  std::optional<Point> last(const SeriesKey& key) const;

  /// Fixed-window aggregation over [start, end).
  std::vector<WindowPoint> aggregate(const SeriesKey& key,
                                     common::TimeNs start, common::TimeNs end,
                                     common::DurationNs window,
                                     Aggregation aggregation) const;

  std::vector<SeriesKey> series() const;
  std::size_t point_count(const SeriesKey& key) const;

 private:
  std::size_t retention_;
  mutable std::mutex mutex_;
  std::map<SeriesKey, std::vector<Point>> data_;
};

}  // namespace qcenv::telemetry
