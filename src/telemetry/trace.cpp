#include "telemetry/trace.hpp"

#include <algorithm>
#include <utility>

namespace qcenv::telemetry {

namespace {
/// Hard cap on spans per trace; a multi-batch job cycles
/// queue_wait/shard_dispatch/qrmi_execute per batch, so this allows ~40
/// batches plus children before the trace degrades to "truncated".
constexpr std::size_t kMaxSpansPerTrace = 256;
constexpr std::size_t kMaxNotesPerTrace = 64;
}  // namespace

TraceStore::TraceStore(std::size_t capacity, std::size_t shards) {
  if (shards == 0) shards = 1;
  if (capacity < shards) capacity = shards;
  slots_per_shard_ = (capacity + shards - 1) / shards;
  shards_ = std::vector<Shard>(shards);
  for (auto& shard : shards_) {
    shard.ring.resize(slots_per_shard_);
  }
}

JobTrace* TraceStore::locate(Shard& shard, TraceId trace) const {
  JobTrace& t = shard.ring[slot_for(trace)];
  return t.trace_id == trace ? &t : nullptr;
}

TraceId TraceStore::begin(common::TimeNs now, std::string user,
                          std::string stage, std::string detail) {
  const TraceId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(id);
  std::scoped_lock lock(shard.mutex);
  // A freshly allocated id is the newest its slot has seen, so the claim
  // cannot fail.
  JobTrace* t = reset_slot_locked(shard, id, std::move(user), now);
  t->spans.push_back(
      TraceSpan{std::move(stage), std::move(detail), now, -1, 0});
  return id;
}

void TraceStore::bind_job(TraceId trace, std::uint64_t job_id) {
  if (trace == 0) return;
  Shard& shard = shard_for(trace);
  std::scoped_lock lock(shard.mutex);
  if (JobTrace* t = locate(shard, trace)) t->job_id = job_id;
}

namespace {

/// Closes the open top-level span (always the last depth-0 one). Caller
/// holds the shard mutex.
std::optional<ClosedSpan> close_open_stage(JobTrace& t, common::TimeNs now) {
  for (auto it = t.spans.rbegin(); it != t.spans.rend(); ++it) {
    if (it->depth == 0) {
      if (it->end < 0) {
        it->end = now;
        return ClosedSpan{it->stage, it->detail, now - it->start};
      }
      break;
    }
  }
  return std::nullopt;
}

std::optional<ClosedSpan> enter_locked(JobTrace& t, common::TimeNs now,
                                       std::string stage,
                                       std::string detail) {
  std::optional<ClosedSpan> closed = close_open_stage(t, now);
  if (t.spans.size() >= kMaxSpansPerTrace) {
    ++t.dropped_spans;
    return closed;
  }
  t.spans.push_back(
      TraceSpan{std::move(stage), std::move(detail), now, -1, 0});
  return closed;
}

}  // namespace

std::optional<ClosedSpan> TraceStore::enter(TraceId trace, common::TimeNs now,
                                            std::string stage,
                                            std::string detail) {
  if (trace == 0) return std::nullopt;
  Shard& shard = shard_for(trace);
  std::scoped_lock lock(shard.mutex);
  JobTrace* t = locate(shard, trace);
  if (t == nullptr || t->finish >= 0) return std::nullopt;
  return enter_locked(*t, now, std::move(stage), std::move(detail));
}

JobTrace* TraceStore::reset_slot_locked(Shard& shard, TraceId trace,
                                        std::string user,
                                        common::TimeNs start) {
  JobTrace& t = shard.ring[slot_for(trace)];
  // A newer trace already cycled through this slot: this trace was
  // evicted before it materialized; do not resurrect it over live data.
  if (t.trace_id > trace) return nullptr;
  t.trace_id = trace;
  t.job_id = 0;
  t.user = std::move(user);
  t.start = start;
  t.finish = -1;
  t.dropped_spans = 0;
  t.spans.clear();
  t.notes.clear();
  return &t;
}

void TraceStore::materialize_submit(TraceId trace, std::uint64_t job_id,
                                    std::string user,
                                    common::TimeNs admission_start,
                                    common::TimeNs journal_start,
                                    common::TimeNs queue_start,
                                    std::string queue_detail) {
  if (trace == 0) return;
  Shard& shard = shard_for(trace);
  std::scoped_lock lock(shard.mutex);
  JobTrace* t =
      reset_slot_locked(shard, trace, std::move(user), admission_start);
  if (t == nullptr) return;
  t->job_id = job_id;
  const bool journalled = journal_start >= 0;
  t->spans.push_back(TraceSpan{"admission", "", admission_start,
                               journalled ? journal_start : queue_start, 0});
  if (journalled) {
    t->spans.push_back(
        TraceSpan{"journal_append", "", journal_start, queue_start, 0});
  }
  t->spans.push_back(
      TraceSpan{"queue_wait", std::move(queue_detail), queue_start, -1, 0});
}

void TraceStore::record_rejected(TraceId trace, std::string user,
                                 common::TimeNs start,
                                 common::TimeNs finish) {
  if (trace == 0) return;
  Shard& shard = shard_for(trace);
  std::scoped_lock lock(shard.mutex);
  JobTrace* t = reset_slot_locked(shard, trace, std::move(user), start);
  if (t == nullptr) return;
  t->spans.push_back(TraceSpan{"admission", "", start, finish, 0});
  t->finish = finish;
}

void TraceStore::child(TraceId trace, std::string stage, common::TimeNs start,
                       common::TimeNs end, std::string detail) {
  if (trace == 0) return;
  Shard& shard = shard_for(trace);
  std::scoped_lock lock(shard.mutex);
  JobTrace* t = locate(shard, trace);
  if (t == nullptr) return;
  if (t->spans.size() >= kMaxSpansPerTrace) {
    ++t->dropped_spans;
    return;
  }
  t->spans.push_back(
      TraceSpan{std::move(stage), std::move(detail), start, end, 1});
}

void TraceStore::annotate(TraceId trace, common::TimeNs now,
                          std::string text) {
  if (trace == 0) return;
  Shard& shard = shard_for(trace);
  std::scoped_lock lock(shard.mutex);
  JobTrace* t = locate(shard, trace);
  if (t == nullptr || t->notes.size() >= kMaxNotesPerTrace) return;
  t->notes.push_back(TraceNote{now, std::move(text)});
}

std::optional<ClosedSpan> TraceStore::finish(TraceId trace,
                                             common::TimeNs now) {
  if (trace == 0) return std::nullopt;
  Shard& shard = shard_for(trace);
  std::scoped_lock lock(shard.mutex);
  JobTrace* t = locate(shard, trace);
  if (t == nullptr || t->finish >= 0) return std::nullopt;
  std::optional<ClosedSpan> closed = close_open_stage(*t, now);
  t->finish = now;
  return closed;
}

std::optional<JobTrace> TraceStore::find(TraceId trace) const {
  if (trace == 0) return std::nullopt;
  const Shard& shard = shard_for(trace);
  std::scoped_lock lock(shard.mutex);
  const JobTrace& t = shard.ring[slot_for(trace)];
  if (t.trace_id != trace) return std::nullopt;
  return t;
}

common::Json TraceStore::to_json(const JobTrace& trace) {
  common::Json spans = common::Json::array();
  for (const auto& span : trace.spans) {
    common::Json s = common::Json::object({
        {"stage", span.stage},
        {"start_ns", span.start},
        {"depth", span.depth},
    });
    if (span.end >= 0) {
      s["end_ns"] = span.end;
      s["duration_ns"] = span.end - span.start;
    }
    if (!span.detail.empty()) s["detail"] = span.detail;
    spans.push_back(std::move(s));
  }
  common::Json notes = common::Json::array();
  for (const auto& note : trace.notes) {
    notes.push_back(common::Json::object(
        {{"at_ns", note.at}, {"text", note.text}}));
  }
  common::Json out = common::Json::object({
      {"trace_id", trace.trace_id},
      {"job_id", trace.job_id},
      {"user", trace.user},
      {"start_ns", trace.start},
      {"spans", std::move(spans)},
      {"notes", std::move(notes)},
  });
  if (trace.finish >= 0) {
    out["finish_ns"] = trace.finish;
    out["duration_ns"] = trace.finish - trace.start;
  }
  if (trace.dropped_spans > 0) out["dropped_spans"] = trace.dropped_spans;
  return out;
}

std::string trace_nesting_error(const JobTrace& trace) {
  if (trace.dropped_spans > 0) return "";  // truncated traces are exempt
  if (trace.finish < 0) return "trace not finished";
  common::TimeNs cursor = trace.start;
  common::DurationNs stage_sum = 0;
  bool any_stage = false;
  for (const auto& span : trace.spans) {
    if (span.depth != 0) continue;
    any_stage = true;
    if (span.end < 0) return "open top-level span '" + span.stage + "'";
    if (span.start != cursor) {
      return "gap/overlap before span '" + span.stage + "'";
    }
    if (span.end < span.start) return "negative span '" + span.stage + "'";
    stage_sum += span.end - span.start;
    cursor = span.end;
  }
  if (!any_stage) return "trace has no top-level spans";
  if (cursor != trace.finish) {
    return "stages end before trace finish";
  }
  if (stage_sum != trace.finish - trace.start) {
    return "stage durations do not sum to trace duration";
  }
  for (const auto& span : trace.spans) {
    if (span.depth == 0) continue;
    if (span.end < span.start) return "negative child '" + span.stage + "'";
    const bool contained = std::any_of(
        trace.spans.begin(), trace.spans.end(), [&](const TraceSpan& top) {
          return top.depth == 0 && top.start <= span.start &&
                 span.end <= top.end;
        });
    if (!contained) {
      return "child '" + span.stage + "' outside any top-level span";
    }
  }
  return "";
}

}  // namespace qcenv::telemetry
