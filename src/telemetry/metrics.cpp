#include "telemetry/metrics.hpp"

#include <cassert>

#include "common/strings.hpp"

namespace qcenv::telemetry {

std::string format_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + value + "\"";
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::label_key(const Labels& labels) {
  return format_labels(labels);
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 MetricKind kind,
                                                 const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
    it->second.help = help;
  } else {
    assert(it->second.kind == kind && "metric kind collision");
  }
  if (it->second.help.empty() && !help.empty()) it->second.help = help;
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help) {
  std::scoped_lock lock(mutex_);
  Family& fam = family(name, MetricKind::kCounter, help);
  const std::string key = label_key(labels);
  auto [it, inserted] = fam.counters.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<Counter>();
    fam.label_sets[key] = labels;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  std::scoped_lock lock(mutex_);
  Family& fam = family(name, MetricKind::kGauge, help);
  const std::string key = label_key(labels);
  auto [it, inserted] = fam.gauges.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<Gauge>();
    fam.label_sets[key] = labels;
  }
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            std::vector<double> boundaries,
                                            const Labels& labels,
                                            const std::string& help) {
  std::scoped_lock lock(mutex_);
  Family& fam = family(name, MetricKind::kHistogram, help);
  const std::string key = label_key(labels);
  auto [it, inserted] = fam.histograms.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<HistogramMetric>(std::move(boundaries));
    fam.label_sets[key] = labels;
  }
  return *it->second;
}

std::string MetricsRegistry::expose() const {
  std::scoped_lock lock(mutex_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) {
      out += "# HELP " + name + " " + fam.help + "\n";
    }
    const char* type = fam.kind == MetricKind::kCounter   ? "counter"
                       : fam.kind == MetricKind::kGauge   ? "gauge"
                                                          : "histogram";
    out += "# TYPE " + name + " " + std::string(type) + "\n";
    for (const auto& [key, counter] : fam.counters) {
      out += name + key + " " + common::format("%.17g", counter->value()) +
             "\n";
    }
    for (const auto& [key, gauge] : fam.gauges) {
      out += name + key + " " + common::format("%.17g", gauge->value()) + "\n";
    }
    for (const auto& [key, histogram] : fam.histograms) {
      const auto snap = histogram->snapshot();
      const Labels& base = fam.label_sets.at(key);
      for (std::size_t b = 0; b < snap.boundaries().size(); ++b) {
        Labels with_le = base;
        with_le["le"] = common::format("%g", snap.boundaries()[b]);
        out += name + "_bucket" + format_labels(with_le) + " " +
               std::to_string(snap.cumulative(b)) + "\n";
      }
      Labels inf = base;
      inf["le"] = "+Inf";
      out += name + "_bucket" + format_labels(inf) + " " +
             std::to_string(snap.count()) + "\n";
      out += name + "_sum" + key + " " +
             common::format("%.17g", snap.sum()) + "\n";
      out += name + "_count" + key + " " + std::to_string(snap.count()) +
             "\n";
    }
  }
  return out;
}

std::vector<MetricSample> MetricsRegistry::collect() const {
  std::scoped_lock lock(mutex_);
  std::vector<MetricSample> out;
  for (const auto& [name, fam] : families_) {
    for (const auto& [key, counter] : fam.counters) {
      out.push_back(MetricSample{name, fam.label_sets.at(key),
                                 counter->value()});
    }
    for (const auto& [key, gauge] : fam.gauges) {
      out.push_back(
          MetricSample{name, fam.label_sets.at(key), gauge->value()});
    }
    for (const auto& [key, histogram] : fam.histograms) {
      const auto snap = histogram->snapshot();
      const Labels& base = fam.label_sets.at(key);
      // Per-bucket cumulative series, mirroring expose()'s _bucket lines.
      for (std::size_t b = 0; b < snap.boundaries().size(); ++b) {
        Labels with_le = base;
        with_le["le"] = common::format("%g", snap.boundaries()[b]);
        out.push_back(MetricSample{name + "_bucket", std::move(with_le),
                                   static_cast<double>(snap.cumulative(b))});
      }
      Labels inf = base;
      inf["le"] = "+Inf";
      out.push_back(MetricSample{name + "_bucket", std::move(inf),
                                 static_cast<double>(snap.count())});
      out.push_back(MetricSample{name + "_count", base,
                                 static_cast<double>(snap.count())});
      out.push_back(MetricSample{name + "_sum", base, snap.sum()});
    }
  }
  return out;
}

}  // namespace qcenv::telemetry
