// Drift detection on calibration telemetry (§3.6/§4: "automated drift
// detection"). Two standard detectors:
//
//  - EwmaDetector: exponentially weighted moving average control chart;
//    flags when the smoothed value leaves mean +- k * sigma control bands.
//  - CusumDetector: cumulative-sum detector; flags sustained small shifts
//    that EWMA bands would take long to catch.
#pragma once

#include <cmath>
#include <cstddef>
#include <optional>
#include <string>

namespace qcenv::telemetry {

struct DriftAlert {
  std::size_t sample_index = 0;  // sample at which the alarm fired
  double value = 0;              // offending statistic
  std::string detail;
};

class EwmaDetector {
 public:
  /// `alpha`: smoothing weight; `k`: control-band width in sigmas.
  /// `warmup`: samples used to estimate the baseline mean/sigma.
  EwmaDetector(double alpha = 0.2, double k = 4.0, std::size_t warmup = 20)
      : alpha_(alpha), k_(k), warmup_(warmup) {}

  /// Feeds one sample; returns an alert when the chart signals.
  std::optional<DriftAlert> update(double value);

  double ewma() const noexcept { return ewma_; }
  bool warmed_up() const noexcept { return count_ >= warmup_; }
  void reset();

 private:
  double alpha_;
  double k_;
  std::size_t warmup_;
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;  // Welford accumulator
  double ewma_ = 0;
};

class CusumDetector {
 public:
  /// `slack`: drift allowance in sigmas; `threshold`: alarm level in sigmas.
  CusumDetector(double slack = 0.5, double threshold = 5.0,
                std::size_t warmup = 20)
      : slack_(slack), threshold_(threshold), warmup_(warmup) {}

  std::optional<DriftAlert> update(double value);

  double positive_sum() const noexcept { return pos_; }
  double negative_sum() const noexcept { return neg_; }
  void reset();

 private:
  double slack_;
  double threshold_;
  std::size_t warmup_;
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double pos_ = 0;
  double neg_ = 0;
};

}  // namespace qcenv::telemetry
