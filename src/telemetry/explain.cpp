#include "telemetry/explain.hpp"

#include <algorithm>
#include <string_view>

namespace qcenv::telemetry {

using common::Json;

Json WaitCause::to_json() const {
  Json out = Json::object();
  out["cause"] = name;
  out["duration_ns"] = static_cast<long long>(duration);
  out["duration_s"] = common::to_seconds(duration);
  if (!detail.empty()) out["detail"] = detail;
  return out;
}

Json ExplainReport::to_json() const {
  Json out = Json::object();
  out["job_id"] = static_cast<long long>(job_id);
  out["trace_id"] = static_cast<long long>(trace_id);
  out["user"] = user;
  out["state"] = state;
  out["observed_wait_ns"] = static_cast<long long>(observed_wait);
  out["observed_wait_s"] = common::to_seconds(observed_wait);
  out["wait_closed"] = wait_closed;
  Json list = Json::array();
  common::DurationNs sum = 0;
  for (const WaitCause& cause : causes) {
    list.push_back(cause.to_json());
    sum += cause.duration;
  }
  out["causes"] = std::move(list);
  // Redundant on purpose: lets clients (and simtest) check the partition
  // property without re-summing floats.
  out["causes_total_ns"] = static_cast<long long>(sum);
  return out;
}

std::map<std::string, std::uint64_t> collapse_trace(const JobTrace& trace) {
  std::map<std::string, std::uint64_t> stacks;
  // Spans sorted by (start asc, depth asc): a parent opens no later than
  // its children and sorts before them, so a single pass with a path
  // stack reconstructs the tree. Self time = span minus nested children.
  std::vector<const TraceSpan*> spans;
  spans.reserve(trace.spans.size());
  for (const TraceSpan& span : trace.spans) {
    if (span.end < 0 || span.end < span.start) continue;  // open/corrupt
    spans.push_back(&span);
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceSpan* a, const TraceSpan* b) {
                     if (a->start != b->start) return a->start < b->start;
                     return a->depth < b->depth;
                   });
  struct Open {
    std::string path;
    int depth = 0;
    std::int64_t self = 0;
  };
  std::vector<Open> open;
  const auto flush_to = [&](int depth) {
    while (!open.empty() && open.back().depth >= depth) {
      const Open& top = open.back();
      if (top.self > 0) {
        stacks[top.path] += static_cast<std::uint64_t>(top.self);
      }
      open.pop_back();
    }
  };
  for (const TraceSpan* span : spans) {
    flush_to(span->depth);
    const std::int64_t duration = span->end - span->start;
    if (!open.empty()) open.back().self -= duration;
    Open frame;
    frame.path = open.empty() ? span->stage
                              : open.back().path + ";" + span->stage;
    frame.depth = span->depth;
    frame.self = duration;
    open.push_back(std::move(frame));
  }
  flush_to(0);
  return stacks;
}

std::string to_collapsed_text(
    const std::map<std::string, std::uint64_t>& stacks) {
  std::string out;
  for (const auto& [path, value] : stacks) {
    out += path + " " + std::to_string(value) + "\n";
  }
  return out;
}

namespace {

Json stacks_json(const std::map<std::string, std::uint64_t>& stacks) {
  Json out = Json::object();
  out["collapsed"] = to_collapsed_text(stacks);
  std::uint64_t total = 0;
  for (const auto& [_, value] : stacks) total += value;
  out["total_ns"] = static_cast<long long>(total);
  return out;
}

/// Pulls the resource name out of an execution span's free-form detail
/// ("resource=emu0 shard=2" -> "emu0"; a bare name passes through).
std::string detail_resource(const std::string& detail) {
  static constexpr std::string_view kKey = "resource=";
  const auto pos = detail.find(kKey);
  if (pos == std::string::npos) return detail;
  const auto start = pos + kKey.size();
  const auto end = detail.find(' ', start);
  return detail.substr(
      start, end == std::string::npos ? std::string::npos : end - start);
}

/// Resource attribution for one trace: the last execution span's detail.
std::string trace_resource(const JobTrace& trace) {
  std::string resource;
  for (const TraceSpan& span : trace.spans) {
    if (span.stage == "qrmi_execute" && !span.detail.empty()) {
      resource = detail_resource(span.detail);
    }
  }
  if (resource.empty()) {
    for (const TraceSpan& span : trace.spans) {
      if (span.stage == "shard_dispatch" && !span.detail.empty()) {
        resource = detail_resource(span.detail);
      }
    }
  }
  return resource.empty() ? "(none)" : resource;
}

}  // namespace

Json ProfileView::to_json() const {
  Json out = Json::object();
  out["since_ns"] = static_cast<long long>(since);
  out["until_ns"] = static_cast<long long>(until);
  out["jobs"] = static_cast<long long>(jobs);
  out["profile"] = stacks_json(stacks);
  Json resources = Json::object();
  for (const auto& [name, entry] : by_resource) {
    resources[name] = stacks_json(entry);
  }
  out["by_resource"] = std::move(resources);
  Json users = Json::object();
  for (const auto& [name, entry] : by_user) {
    users[name] = stacks_json(entry);
  }
  out["by_user"] = std::move(users);
  return out;
}

Json ProfileRegression::to_json() const {
  Json out = Json::object();
  out["stack"] = stack;
  out["baseline_share"] = baseline_share;
  out["current_share"] = current_share;
  out["delta"] = current_share - baseline_share;
  return out;
}

void CriticalPathProfiler::add(const JobTrace& trace) {
  Sample sample;
  sample.at = trace.finish >= 0 ? trace.finish : trace.start;
  sample.user = trace.user;
  sample.resource = trace_resource(trace);
  sample.stacks = collapse_trace(trace);
  if (sample.stacks.empty()) return;
  std::scoped_lock lock(mutex_);
  samples_.push_back(std::move(sample));
  while (samples_.size() > capacity_) samples_.pop_front();
}

ProfileView CriticalPathProfiler::view_locked(common::TimeNs since,
                                              common::TimeNs until) const {
  ProfileView view;
  view.since = since;
  view.until = until;
  for (const Sample& sample : samples_) {
    if (sample.at < since || sample.at > until) continue;
    ++view.jobs;
    for (const auto& [path, value] : sample.stacks) {
      view.stacks[path] += value;
      view.by_resource[sample.resource][path] += value;
      view.by_user[sample.user][path] += value;
    }
  }
  return view;
}

ProfileView CriticalPathProfiler::view(common::TimeNs since,
                                       common::TimeNs until) const {
  std::scoped_lock lock(mutex_);
  return view_locked(since, until);
}

std::map<std::string, double> CriticalPathProfiler::shares(
    const std::map<std::string, std::uint64_t>& stacks) {
  std::uint64_t total = 0;
  for (const auto& [_, value] : stacks) total += value;
  std::map<std::string, double> out;
  if (total == 0) return out;
  for (const auto& [path, value] : stacks) {
    out[path] = static_cast<double>(value) / static_cast<double>(total);
  }
  return out;
}

void CriticalPathProfiler::record_baseline(common::TimeNs since,
                                           common::TimeNs until) {
  std::scoped_lock lock(mutex_);
  baseline_ = shares(view_locked(since, until).stacks);
  has_baseline_ = true;
}

bool CriticalPathProfiler::has_baseline() const {
  std::scoped_lock lock(mutex_);
  return has_baseline_;
}

std::vector<ProfileRegression> CriticalPathProfiler::regressions(
    common::TimeNs since, common::TimeNs until, double threshold) const {
  std::scoped_lock lock(mutex_);
  std::vector<ProfileRegression> out;
  if (!has_baseline_) return out;
  const auto current = shares(view_locked(since, until).stacks);
  for (const auto& [path, share] : current) {
    const auto it = baseline_.find(path);
    const double base = it != baseline_.end() ? it->second : 0.0;
    if (share - base > threshold) {
      out.push_back(ProfileRegression{path, base, share});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ProfileRegression& a, const ProfileRegression& b) {
              const double da = a.current_share - a.baseline_share;
              const double db = b.current_share - b.baseline_share;
              if (da != db) return da > db;
              return a.stack < b.stack;
            });
  return out;
}

std::size_t CriticalPathProfiler::size() const {
  std::scoped_lock lock(mutex_);
  return samples_.size();
}

}  // namespace qcenv::telemetry
