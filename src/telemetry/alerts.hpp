// Alerting on TSDB series.
//
// Two rule families:
//  - Drift rules: an EWMA control chart or CUSUM detector attached to one
//    series (calibration scores), fed every new point in time order.
//  - Burn-rate rules: SRE-style multi-window SLO burn rates over paired
//    good/bad event-count series, grouped by a tag (per-tenant SLOs).
//
// Both produce AlertRecords with fired/resolved lifecycles; sinks (event
// log, admin API, broker advisories) are notified on both transitions.
// Alert timestamps are always series timestamps or the evaluation deadline,
// never wall-clock reads, so a simulated replay reproduces the exact alert
// timeline.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "common/json.hpp"
#include "telemetry/drift.hpp"
#include "telemetry/tsdb.hpp"

namespace qcenv::telemetry {

enum class AlertSeverity { kInfo, kWarning, kCritical };

const char* to_string(AlertSeverity severity) noexcept;

/// Drift rule: detector attached to one series.
struct AlertRule {
  std::string name;
  SeriesKey series;
  /// Grouping label carried into records (e.g. the resource name).
  std::string label;
  AlertSeverity severity = AlertSeverity::kWarning;
  /// Detector strategy; one instance per rule, fed in time order.
  std::variant<EwmaDetector, CusumDetector> detector;
  /// Consecutive quiet points before an active alert resolves. A detector
  /// re-alarming within this window keeps the alert active instead of
  /// flapping (CUSUM resets after every alarm).
  std::size_t resolve_quiet = 5;
};

/// SLO burn-rate rule over paired good/bad counter series. The series hold
/// per-scrape event-count deltas; the burn rate over a window is
///   (bad / (bad + good)) / (1 - objective)
/// and the alert fires when BOTH the short and long window exceed
/// `burn_threshold` (fast burn confirmed by sustained burn), resolving once
/// the short window recovers.
struct BurnRateRule {
  std::string name;
  std::string bad_measurement;
  std::string good_measurement;
  /// Tag whose values define the alert groups (one alert per tenant).
  std::string group_tag = "user";
  /// Target fraction of good outcomes (0.99 = "99% of submits accepted").
  double objective = 0.99;
  double burn_threshold = 2.0;
  common::DurationNs short_window = 0;
  common::DurationNs long_window = 0;
  AlertSeverity severity = AlertSeverity::kWarning;
};

struct AlertRecord {
  std::string rule;
  std::string label;
  AlertSeverity severity = AlertSeverity::kWarning;
  common::TimeNs fired_at = 0;
  common::TimeNs resolved_at = 0;  ///< 0 while still active.
  std::string detail;

  bool active() const noexcept { return resolved_at == 0; }
  common::Json to_json() const;
};

/// Point-in-time burn-rate readout for the /admin/slo endpoint.
struct BurnStatus {
  std::string rule;
  std::string label;
  double short_burn = 0;
  double long_burn = 0;
  double threshold = 0;
  double objective = 0;
  bool active = false;
  common::Json to_json() const;
};

using AlertSink = std::function<void(const AlertRecord&)>;

class AlertManager {
 public:
  explicit AlertManager(std::size_t history_cap = 1024)
      : history_cap_(history_cap) {}

  void add_rule(AlertRule rule);
  void add_burn_rule(BurnRateRule rule);
  void add_sink(AlertSink sink);

  /// Feeds every point newer than each drift rule's high-water mark into
  /// its detector, and evaluates burn-rate windows ending at `now` (the
  /// scrape deadline just completed). Returns records that transitioned
  /// (fired or resolved) during this evaluation.
  std::vector<AlertRecord> evaluate(const TimeSeriesDb& tsdb,
                                    common::TimeNs now);

  std::vector<AlertRecord> active() const;
  /// Resolved records, oldest first, bounded by history_cap.
  std::vector<AlertRecord> history() const;
  /// Burn rates for every (rule, group) pair with data, windows ending at
  /// `now`. Read-only: does not change alert state.
  std::vector<BurnStatus> burn_status(const TimeSeriesDb& tsdb,
                                      common::TimeNs now) const;

  std::size_t rule_count() const;
  /// {"active": [...], "recent": [...]}.
  common::Json to_json() const;

 private:
  struct DriftState {
    AlertRule rule;
    common::TimeNs high_water = -1;
    std::size_t quiet = 0;
  };
  struct BurnState {
    BurnRateRule rule;
  };
  using AlertKey = std::pair<std::string, std::string>;  // (rule, label)

  void fire_locked(AlertRecord record, std::vector<AlertRecord>& out);
  void resolve_locked(const AlertKey& key, common::TimeNs at,
                      std::vector<AlertRecord>& out);
  std::vector<std::string> burn_groups_locked(const TimeSeriesDb& tsdb,
                                              const BurnRateRule& rule) const;
  static double burn_over_window(const TimeSeriesDb& tsdb,
                                 const BurnRateRule& rule,
                                 const std::string& group,
                                 common::TimeNs now,
                                 common::DurationNs window);

  std::size_t history_cap_;
  std::vector<DriftState> rules_;
  std::vector<BurnState> burn_rules_;
  std::vector<AlertSink> sinks_;
  std::map<AlertKey, AlertRecord> active_;
  std::deque<AlertRecord> history_;
  mutable std::mutex mutex_;
};

}  // namespace qcenv::telemetry
