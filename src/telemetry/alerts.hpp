// Alerting on TSDB series: each rule attaches a drift detector to one
// series; evaluation feeds new points into the detector and tracks
// firing/resolved state, notifying sinks (log, admin API, dashboards).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "telemetry/drift.hpp"
#include "telemetry/tsdb.hpp"

namespace qcenv::telemetry {

enum class AlertSeverity { kInfo, kWarning, kCritical };

const char* to_string(AlertSeverity severity) noexcept;

struct AlertRule {
  std::string name;
  SeriesKey series;
  AlertSeverity severity = AlertSeverity::kWarning;
  /// Detector strategy; one instance per rule, fed in time order.
  std::variant<EwmaDetector, CusumDetector> detector;
};

struct FiredAlert {
  std::string rule;
  AlertSeverity severity = AlertSeverity::kWarning;
  common::TimeNs fired_at = 0;
  std::string detail;
};

using AlertSink = std::function<void(const FiredAlert&)>;

class AlertManager {
 public:
  void add_rule(AlertRule rule);
  void add_sink(AlertSink sink);

  /// Feeds every point newer than the rule's high-water mark into its
  /// detector. Returns alerts fired during this evaluation.
  std::vector<FiredAlert> evaluate(const TimeSeriesDb& tsdb);

  const std::vector<FiredAlert>& history() const noexcept { return history_; }
  std::size_t rule_count() const noexcept { return rules_.size(); }

 private:
  struct RuleState {
    AlertRule rule;
    common::TimeNs high_water = -1;
  };
  std::vector<RuleState> rules_;
  std::vector<AlertSink> sinks_;
  std::vector<FiredAlert> history_;
  std::mutex mutex_;
};

}  // namespace qcenv::telemetry
