// Metrics registry with Prometheus text exposition (§3.6: "exposing QPU
// state through standard telemetry tools such as Prometheus").
//
// Model: a registry owns metric families (counter/gauge/histogram + help
// text); a family owns one time series per label set. Handles returned to
// instrumented code are stable pointers guarded by atomics, so the hot path
// (increment/observe) is lock-free after first lookup.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.hpp"
#include "common/result.hpp"

namespace qcenv::telemetry {

using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void increment(double delta = 1.0) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Histogram handle; observation is lock-free. Counts live in
/// cache-line-aligned stripes of relaxed atomics (stripe picked by a
/// per-thread hash), so the submit hot path — 64 threads observing the
/// same stage histogram — never serializes on a mutex the way a shared
/// bucket vector would. snapshot() merges the stripes; it may miss an
/// in-flight observation (count and sum are updated separately), which
/// is fine at scrape granularity.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> boundaries)
      : boundaries_(std::move(boundaries)) {
    for (auto& stripe : stripes_) {
      stripe.counts =
          std::vector<std::atomic<std::uint64_t>>(boundaries_.size() + 1);
    }
  }

  void observe(double value) {
    Stripe& stripe = stripes_[stripe_index()];
    const auto it =
        std::lower_bound(boundaries_.begin(), boundaries_.end(), value);
    stripe.counts[static_cast<std::size_t>(it - boundaries_.begin())]
        .fetch_add(1, std::memory_order_relaxed);
    double sum = stripe.sum.load(std::memory_order_relaxed);
    while (!stripe.sum.compare_exchange_weak(sum, sum + value,
                                             std::memory_order_relaxed)) {
    }
  }

  common::BucketHistogram snapshot() const {
    std::vector<std::uint64_t> counts(boundaries_.size() + 1, 0);
    double sum = 0;
    for (const auto& stripe : stripes_) {
      for (std::size_t i = 0; i < counts.size(); ++i) {
        counts[i] += stripe.counts[i].load(std::memory_order_relaxed);
      }
      sum += stripe.sum.load(std::memory_order_relaxed);
    }
    common::BucketHistogram out(boundaries_);
    out.merge_counts(counts, sum);
    return out;
  }

 private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Stripe {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0};
  };
  static std::size_t stripe_index() {
    const thread_local std::size_t index =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
    return index;
  }

  std::vector<double> boundaries_;
  std::array<Stripe, kStripes> stripes_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One sample for scrape consumers (collector, TSDB bridge).
struct MetricSample {
  std::string name;
  Labels labels;
  double value = 0;
};

class MetricsRegistry {
 public:
  /// Returns the counter for (name, labels), creating it on first use.
  /// Name collisions across kinds are a programming error and assert.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  HistogramMetric& histogram(const std::string& name,
                             std::vector<double> boundaries,
                             const Labels& labels = {},
                             const std::string& help = "");

  /// Prometheus text exposition format (the /metrics endpoint body).
  std::string expose() const;

  /// Flat snapshot of scalar samples (histograms contribute _count/_sum and
  /// per-bucket cumulative series).
  std::vector<MetricSample> collect() const;

 private:
  struct Family {
    MetricKind kind;
    std::string help;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<HistogramMetric>> histograms;
    std::map<std::string, Labels> label_sets;  // key -> parsed labels
  };

  static std::string label_key(const Labels& labels);
  Family& family(const std::string& name, MetricKind kind,
                 const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// Renders labels as {a="x",b="y"} (empty string for no labels).
std::string format_labels(const Labels& labels);

}  // namespace qcenv::telemetry
