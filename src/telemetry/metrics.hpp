// Metrics registry with Prometheus text exposition (§3.6: "exposing QPU
// state through standard telemetry tools such as Prometheus").
//
// Model: a registry owns metric families (counter/gauge/histogram + help
// text); a family owns one time series per label set. Handles returned to
// instrumented code are stable pointers guarded by atomics, so the hot path
// (increment/observe) is lock-free after first lookup.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/result.hpp"

namespace qcenv::telemetry {

using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void increment(double delta = 1.0) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Histogram handle; observation is mutex-guarded (bucket vectors are not
/// atomically updatable), still cheap at telemetry rates.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> boundaries)
      : histogram_(std::move(boundaries)) {}

  void observe(double value) {
    std::scoped_lock lock(mutex_);
    histogram_.observe(value);
  }
  common::BucketHistogram snapshot() const {
    std::scoped_lock lock(mutex_);
    return histogram_;
  }

 private:
  mutable std::mutex mutex_;
  common::BucketHistogram histogram_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One sample for scrape consumers (collector, TSDB bridge).
struct MetricSample {
  std::string name;
  Labels labels;
  double value = 0;
};

class MetricsRegistry {
 public:
  /// Returns the counter for (name, labels), creating it on first use.
  /// Name collisions across kinds are a programming error and assert.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  HistogramMetric& histogram(const std::string& name,
                             std::vector<double> boundaries,
                             const Labels& labels = {},
                             const std::string& help = "");

  /// Prometheus text exposition format (the /metrics endpoint body).
  std::string expose() const;

  /// Flat snapshot of scalar samples (histograms contribute _count/_sum and
  /// per-bucket cumulative series).
  std::vector<MetricSample> collect() const;

 private:
  struct Family {
    MetricKind kind;
    std::string help;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<HistogramMetric>> histograms;
    std::map<std::string, Labels> label_sets;  // key -> parsed labels
  };

  static std::string label_key(const Labels& labels);
  Family& family(const std::string& name, MetricKind kind,
                 const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// Renders labels as {a="x",b="y"} (empty string for no labels).
std::string format_labels(const Labels& labels);

}  // namespace qcenv::telemetry
