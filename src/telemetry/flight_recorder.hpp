// Flight recorder: an always-on bounded black box for post-mortems.
//
// Keeps no data of its own beyond component heartbeats — it snapshots the
// event-log tail and the TSDB tail at dump time, so a crashed daemon's last
// moments are recoverable without an external scraper having been attached.
// Dumps fire on journal fail-stop, on POST /admin/debug/dump, or (opt-in)
// on a fatal signal.
//
// Heartbeats are stamped with both the injected clock (for correlation with
// event/series timestamps) and the wall steady clock (for staleness: a
// simulated clock can jump hours in microseconds, which must not read as a
// stalled lane).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"
#include "telemetry/events.hpp"
#include "telemetry/tsdb.hpp"

namespace qcenv::telemetry {

struct FlightRecorderOptions {
  /// Forensics JSON written here on dump(); usually <data_dir>/flight.json.
  std::string dump_path;
  /// Events included in a dump (the "last N events" of a post-mortem).
  std::size_t event_tail = 50;
  /// Per-series point tail included in a dump.
  std::size_t points_per_series = 32;
  /// Series cap: dumps stay bounded even with many tenants/resources.
  std::size_t series_cap = 64;
  /// Wall age beyond which a heartbeat is flagged stale in the dump.
  common::DurationNs stale_after = 5 * common::kSecond;
};

class FlightRecorder {
 public:
  FlightRecorder(FlightRecorderOptions options, const EventLog* events,
                 const TimeSeriesDb* tsdb, common::Clock* clock);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stamps a component (lane, journal writer, scrape loop) as alive.
  void heartbeat(const std::string& component);

  /// Extra context merged into every dump under "info" (scrape counters,
  /// active alerts, daemon identity).
  void set_info_provider(std::function<common::Json()> provider);

  /// The forensics document as it would be dumped right now.
  common::Json render(const std::string& reason) const;

  /// Writes the forensics JSON to dump_path. Returns the path written.
  common::Result<std::string> dump(const std::string& reason);

  /// Installs SIGSEGV/SIGBUS/SIGABRT handlers that write the last
  /// pre-rendered snapshot (see refresh()) to <dump_path>.signal using only
  /// async-signal-safe calls. Off by default; only one recorder per process
  /// can be armed.
  void arm_signal_handler();

  /// Re-renders the crash snapshot used by the signal handler. Cheap no-op
  /// unless armed; call once per scrape tick.
  void refresh();

  std::uint64_t dump_count() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }
  const FlightRecorderOptions& options() const noexcept { return options_; }

 private:
  struct Beat {
    common::TimeNs at = 0;
    std::chrono::steady_clock::time_point wall;
  };

  FlightRecorderOptions options_;
  const EventLog* events_;
  const TimeSeriesDb* tsdb_;
  common::Clock* clock_;
  mutable std::mutex mutex_;  // guards heartbeats_ and info_provider_
  std::map<std::string, Beat> heartbeats_;
  std::function<common::Json()> info_provider_;
  std::atomic<std::uint64_t> dumps_{0};
  bool armed_ = false;
  int signal_fd_ = -1;
  // Crash snapshot double buffer: refresh() fills the inactive buffer and
  // flips; the signal handler writes out the active one without locking.
  // Fixed-capacity heap buffers so the handler never touches a pointer
  // that could be invalidated by reallocation.
  static constexpr std::size_t kSignalBufCap = 128 * 1024;
  std::unique_ptr<char[]> signal_buf_[2];
  std::atomic<std::size_t> signal_len_[2] = {0, 0};
  std::atomic<int> signal_active_{0};

  friend void flight_recorder_signal_dump(int signo) noexcept;
};

}  // namespace qcenv::telemetry
