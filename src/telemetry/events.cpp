#include "telemetry/events.hpp"

#include <algorithm>
#include <utility>

namespace qcenv::telemetry {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "info";
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

std::uint64_t EventLog::log(common::TimeNs now, Severity severity,
                            std::string kind, std::string message,
                            std::string user, std::uint64_t job_id,
                            std::uint64_t trace_id) {
  std::scoped_lock lock(mutex_);
  Event event;
  event.seq = next_seq_++;
  event.at = now;
  event.severity = severity;
  event.kind = std::move(kind);
  event.message = std::move(message);
  event.user = std::move(user);
  event.job_id = job_id;
  event.trace_id = trace_id;
  const std::size_t slot = (event.seq - 1) % capacity_;
  if (ring_.size() <= slot) {
    ring_.push_back(std::move(event));
  } else {
    ring_[slot] = std::move(event);
  }
  return next_seq_ - 1;
}

std::vector<Event> EventLog::since(std::uint64_t after_seq, std::size_t max,
                                   const Filter& filter) const {
  std::scoped_lock lock(mutex_);
  std::vector<Event> out;
  if (next_seq_ == 1) return out;
  const std::uint64_t newest = next_seq_ - 1;
  const std::uint64_t oldest =
      newest >= capacity_ ? newest - capacity_ + 1 : 1;
  std::uint64_t seq = std::max(after_seq + 1, oldest);
  for (; seq <= newest && out.size() < max; ++seq) {
    const Event& event = ring_[(seq - 1) % capacity_];
    if (filter.matches(event)) out.push_back(event);
  }
  return out;
}

std::vector<Event> EventLog::tail(std::size_t n) const {
  std::scoped_lock lock(mutex_);
  std::vector<Event> out;
  if (next_seq_ == 1 || n == 0) return out;
  const std::uint64_t newest = next_seq_ - 1;
  std::uint64_t oldest = newest >= capacity_ ? newest - capacity_ + 1 : 1;
  if (newest - oldest + 1 > n) oldest = newest - n + 1;
  for (std::uint64_t seq = oldest; seq <= newest; ++seq) {
    out.push_back(ring_[(seq - 1) % capacity_]);
  }
  return out;
}

std::uint64_t EventLog::last_seq() const {
  std::scoped_lock lock(mutex_);
  return next_seq_ - 1;
}

common::Json EventLog::to_json(const Event& event) {
  common::Json out = common::Json::object({
      {"seq", event.seq},
      {"at_ns", event.at},
      {"severity", severity_name(event.severity)},
      {"kind", event.kind},
      {"message", event.message},
  });
  if (!event.user.empty()) out["user"] = event.user;
  if (event.job_id != 0) out["job_id"] = event.job_id;
  if (event.trace_id != 0) out["trace_id"] = event.trace_id;
  return out;
}

}  // namespace qcenv::telemetry
