// Text dashboard renderer (the Grafana role, terminal edition): Unicode
// sparklines over TSDB series with min/last/max annotations. Used by the
// observability example and by admins over SSH.
#pragma once

#include <string>
#include <vector>

#include "telemetry/tsdb.hpp"

namespace qcenv::telemetry {

struct Panel {
  std::string title;
  SeriesKey series;
  /// Number of sparkline columns; each aggregates an equal time slice.
  std::size_t width = 60;
};

class Dashboard {
 public:
  explicit Dashboard(const TimeSeriesDb* tsdb) : tsdb_(tsdb) {}

  void add_panel(Panel panel) { panels_.push_back(std::move(panel)); }

  /// Renders all panels over [start, end].
  std::string render(common::TimeNs start, common::TimeNs end) const;

  /// One panel as a single sparkline row.
  std::string render_panel(const Panel& panel, common::TimeNs start,
                           common::TimeNs end) const;

 private:
  const TimeSeriesDb* tsdb_;
  std::vector<Panel> panels_;
};

/// Maps normalized values (0..1) to the eight sparkline glyphs.
std::string sparkline(const std::vector<double>& values);

}  // namespace qcenv::telemetry
