#include "telemetry/drift.hpp"

#include "common/strings.hpp"

namespace qcenv::telemetry {

namespace {
void welford_update(std::size_t& count, double& mean, double& m2,
                    double value) {
  ++count;
  const double delta = value - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (value - mean);
}

double welford_sigma(std::size_t count, double m2) {
  if (count < 2) return 0;
  const double variance = m2 / static_cast<double>(count - 1);
  const double sigma = variance > 0 ? std::sqrt(variance) : 0.0;
  // Small-sample inflation: the sigma estimator itself has standard error
  // ~ sigma / sqrt(2(n-1)); pad by two of those so an unlucky warmup does
  // not shrink the control bands and flood operators with false alarms.
  const double inflation =
      1.0 + 2.0 / std::sqrt(2.0 * static_cast<double>(count - 1));
  return sigma * inflation;
}
}  // namespace

std::optional<DriftAlert> EwmaDetector::update(double value) {
  if (count_ < warmup_) {
    welford_update(count_, mean_, m2_, value);
    ewma_ = count_ == 1 ? value : alpha_ * value + (1 - alpha_) * ewma_;
    return std::nullopt;
  }
  ewma_ = alpha_ * value + (1 - alpha_) * ewma_;
  ++count_;
  double sigma = welford_sigma(warmup_, m2_);
  if (sigma <= 0) sigma = std::abs(mean_) * 1e-3 + 1e-12;
  // EWMA variance correction: sigma_ewma = sigma * sqrt(alpha/(2-alpha)).
  const double band = k_ * sigma * std::sqrt(alpha_ / (2.0 - alpha_));
  if (std::abs(ewma_ - mean_) > band) {
    return DriftAlert{
        count_, ewma_,
        common::format("ewma %.6g outside %.6g +- %.6g", ewma_, mean_, band)};
  }
  return std::nullopt;
}

void EwmaDetector::reset() {
  count_ = 0;
  mean_ = 0;
  m2_ = 0;
  ewma_ = 0;
}

std::optional<DriftAlert> CusumDetector::update(double value) {
  if (count_ < warmup_) {
    welford_update(count_, mean_, m2_, value);
    return std::nullopt;
  }
  ++count_;
  double sigma = welford_sigma(warmup_, m2_);
  if (sigma <= 0) sigma = std::abs(mean_) * 1e-3 + 1e-12;
  const double z = (value - mean_) / sigma;
  pos_ = std::max(0.0, pos_ + z - slack_);
  neg_ = std::max(0.0, neg_ - z - slack_);
  if (pos_ > threshold_ || neg_ > threshold_) {
    DriftAlert alert{count_, pos_ > threshold_ ? pos_ : -neg_,
                     common::format("cusum %s drift: S+=%.2f S-=%.2f",
                                    pos_ > threshold_ ? "upward" : "downward",
                                    pos_, neg_)};
    pos_ = 0;
    neg_ = 0;
    return alert;
  }
  return std::nullopt;
}

void CusumDetector::reset() {
  count_ = 0;
  mean_ = 0;
  m2_ = 0;
  pos_ = 0;
  neg_ = 0;
}

}  // namespace qcenv::telemetry
