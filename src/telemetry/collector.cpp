#include "telemetry/collector.hpp"

namespace qcenv::telemetry {

QpuTelemetrySource::QpuTelemetrySource(qpu::QpuDevice* device,
                                       MetricsRegistry* registry)
    : device_(device), registry_(registry) {
  labels_ = {{"device", device_->options().spec.name}};
}

void QpuTelemetrySource::update() {
  const quantum::DeviceSpec spec = device_->spec();
  const quantum::CalibrationSnapshot& cal = spec.calibration;
  registry_->gauge("qpu_rabi_scale", labels_, "drive amplitude calibration")
      .set(cal.rabi_scale);
  registry_->gauge("qpu_detuning_offset", labels_, "detuning offset rad/us")
      .set(cal.detuning_offset);
  registry_->gauge("qpu_dephasing_rate", labels_, "dephasing rate 1/us")
      .set(cal.dephasing_rate);
  registry_->gauge("qpu_readout_p01", labels_, "readout 0->1 error")
      .set(cal.readout_p01);
  registry_->gauge("qpu_readout_p10", labels_, "readout 1->0 error")
      .set(cal.readout_p10);
  registry_->gauge("qpu_fill_success", labels_, "atom loading probability")
      .set(cal.fill_success);
  registry_->gauge("qpu_fidelity_estimate", labels_, "composite quality")
      .set(cal.fidelity_estimate());

  const qpu::QpuCounters counters = device_->counters();
  registry_->gauge("qpu_jobs_executed_total", labels_, "completed jobs")
      .set(static_cast<double>(counters.jobs_executed));
  registry_->gauge("qpu_shots_executed_total", labels_, "delivered shots")
      .set(static_cast<double>(counters.shots_executed));
  registry_->gauge("qpu_busy_seconds_total", labels_, "device busy time")
      .set(common::to_seconds(counters.busy_ns));
}

std::size_t Collector::scrape_once() {
  const common::TimeNs now = clock_->now();
  const auto samples = registry_->collect();
  for (const auto& sample : samples) {
    Tags tags(sample.labels.begin(), sample.labels.end());
    tsdb_->write(sample.name, tags, now, sample.value);
  }
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  return samples.size();
}

void Collector::start(common::DurationNs interval) {
  stop();
  scraper_ = std::jthread([this, interval](const std::stop_token& stop) {
    while (!stop.stop_requested()) {
      scrape_once();
      // Sleep in small slices so stop requests are honoured promptly.
      common::DurationNs remaining = interval;
      while (remaining > 0 && !stop.stop_requested()) {
        const common::DurationNs slice =
            std::min<common::DurationNs>(remaining, 50 * common::kMillisecond);
        std::this_thread::sleep_for(std::chrono::nanoseconds(slice));
        remaining -= slice;
      }
    }
  });
}

void Collector::stop() {
  if (scraper_.joinable()) {
    scraper_.request_stop();
    scraper_.join();
  }
}

}  // namespace qcenv::telemetry
