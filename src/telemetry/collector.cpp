#include "telemetry/collector.hpp"

namespace qcenv::telemetry {

QpuTelemetrySource::QpuTelemetrySource(qpu::QpuDevice* device,
                                       MetricsRegistry* registry)
    : device_(device), registry_(registry) {
  labels_ = {{"device", device_->options().spec.name}};
}

void QpuTelemetrySource::update() {
  const quantum::DeviceSpec spec = device_->spec();
  const quantum::CalibrationSnapshot& cal = spec.calibration;
  registry_->gauge("qpu_rabi_scale", labels_, "drive amplitude calibration")
      .set(cal.rabi_scale);
  registry_->gauge("qpu_detuning_offset", labels_, "detuning offset rad/us")
      .set(cal.detuning_offset);
  registry_->gauge("qpu_dephasing_rate", labels_, "dephasing rate 1/us")
      .set(cal.dephasing_rate);
  registry_->gauge("qpu_readout_p01", labels_, "readout 0->1 error")
      .set(cal.readout_p01);
  registry_->gauge("qpu_readout_p10", labels_, "readout 1->0 error")
      .set(cal.readout_p10);
  registry_->gauge("qpu_fill_success", labels_, "atom loading probability")
      .set(cal.fill_success);
  registry_->gauge("qpu_fidelity_estimate", labels_, "composite quality")
      .set(cal.fidelity_estimate());

  const qpu::QpuCounters counters = device_->counters();
  registry_->gauge("qpu_jobs_executed_total", labels_, "completed jobs")
      .set(static_cast<double>(counters.jobs_executed));
  registry_->gauge("qpu_shots_executed_total", labels_, "delivered shots")
      .set(static_cast<double>(counters.shots_executed));
  registry_->gauge("qpu_busy_seconds_total", labels_, "device busy time")
      .set(common::to_seconds(counters.busy_ns));
}

MetricsCollector::MetricsCollector(MetricsRegistry* registry,
                                   TimeSeriesDb* tsdb, common::Clock* clock,
                                   CollectorOptions options)
    : registry_(registry), tsdb_(tsdb), clock_(clock), options_(options) {
  if (options_.interval <= 0) options_.interval = common::kSecond;
  // Anchor the grid at multiples of the interval (so a simulated clock
  // starting at 0 produces deadlines i*interval, and alert timestamps are
  // grid-aligned by construction).
  const common::TimeNs now = clock_->now();
  next_deadline_.store(
      (now / options_.interval + 1) * options_.interval,
      std::memory_order_relaxed);
}

void MetricsCollector::add_sampler(Sampler sampler) {
  std::scoped_lock lock(mutex_);
  samplers_.push_back(std::move(sampler));
}

std::size_t MetricsCollector::scrape_at(common::TimeNs stamp) {
  std::scoped_lock lock(mutex_);
  return scrape_locked(stamp);
}

std::size_t MetricsCollector::scrape_locked(common::TimeNs stamp) {
  std::size_t written = 0;
  if (registry_ != nullptr) {
    const auto samples = registry_->collect();
    for (const auto& sample : samples) {
      Tags tags(sample.labels.begin(), sample.labels.end());
      tsdb_->write(sample.name, tags, stamp, sample.value);
    }
    written += samples.size();
  }
  for (const auto& sampler : samplers_) sampler(stamp, *tsdb_);
  last_scrape_.store(stamp, std::memory_order_relaxed);
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  return written;
}

std::size_t MetricsCollector::run_pending(common::TimeNs now) {
  std::scoped_lock lock(mutex_);
  std::size_t written = 0;
  while (true) {
    common::TimeNs deadline = next_deadline_.load(std::memory_order_relaxed);
    if (deadline > now) break;
    next_deadline_.store(deadline + options_.interval,
                         std::memory_order_relaxed);
    if (deadline <= stall_until_.load(std::memory_order_relaxed)) {
      // Scrape-stall fault window: the sample is lost, not late.
      missed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!options_.scrape_all_overdue &&
        deadline + options_.interval <= now) {
      // Older overdue deadline with a newer one still pending: skip it
      // rather than backfill a stale value.
      missed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    written += scrape_locked(deadline);
  }
  return written;
}

void MetricsCollector::start() {
  stop();
  scraper_ = std::jthread([this](const std::stop_token& stop) {
    while (!stop.stop_requested()) {
      run_pending(clock_->now());
      // Sleep in small slices so stop requests are honoured promptly.
      common::DurationNs remaining =
          next_deadline_.load(std::memory_order_relaxed) - clock_->now();
      remaining = std::max<common::DurationNs>(
          common::kMillisecond,
          std::min<common::DurationNs>(remaining, options_.interval));
      while (remaining > 0 && !stop.stop_requested()) {
        const common::DurationNs slice =
            std::min<common::DurationNs>(remaining, 50 * common::kMillisecond);
        std::this_thread::sleep_for(std::chrono::nanoseconds(slice));
        remaining -= slice;
      }
    }
  });
}

void MetricsCollector::stop() {
  if (scraper_.joinable()) {
    scraper_.request_stop();
    scraper_.join();
  }
}

}  // namespace qcenv::telemetry
