#include "telemetry/alerts.hpp"

namespace qcenv::telemetry {

const char* to_string(AlertSeverity severity) noexcept {
  switch (severity) {
    case AlertSeverity::kInfo: return "info";
    case AlertSeverity::kWarning: return "warning";
    case AlertSeverity::kCritical: return "critical";
  }
  return "?";
}

void AlertManager::add_rule(AlertRule rule) {
  std::scoped_lock lock(mutex_);
  rules_.push_back(RuleState{std::move(rule), -1});
}

void AlertManager::add_sink(AlertSink sink) {
  std::scoped_lock lock(mutex_);
  sinks_.push_back(std::move(sink));
}

std::vector<FiredAlert> AlertManager::evaluate(const TimeSeriesDb& tsdb) {
  std::scoped_lock lock(mutex_);
  std::vector<FiredAlert> fired;
  for (RuleState& state : rules_) {
    const auto points = tsdb.query_range(
        state.rule.series, state.high_water + 1,
        std::numeric_limits<common::TimeNs>::max());
    for (const Point& point : points) {
      state.high_water = std::max(state.high_water, point.time);
      std::optional<DriftAlert> alert;
      if (auto* ewma = std::get_if<EwmaDetector>(&state.rule.detector)) {
        alert = ewma->update(point.value);
      } else if (auto* cusum =
                     std::get_if<CusumDetector>(&state.rule.detector)) {
        alert = cusum->update(point.value);
      }
      if (alert.has_value()) {
        fired.push_back(FiredAlert{state.rule.name, state.rule.severity,
                                   point.time, alert->detail});
      }
    }
  }
  for (const FiredAlert& alert : fired) {
    history_.push_back(alert);
    for (const auto& sink : sinks_) sink(alert);
  }
  return fired;
}

}  // namespace qcenv::telemetry
