#include "telemetry/alerts.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "common/strings.hpp"

namespace qcenv::telemetry {

const char* to_string(AlertSeverity severity) noexcept {
  switch (severity) {
    case AlertSeverity::kInfo: return "info";
    case AlertSeverity::kWarning: return "warning";
    case AlertSeverity::kCritical: return "critical";
  }
  return "?";
}

common::Json AlertRecord::to_json() const {
  common::Json out = common::Json::object();
  out["rule"] = rule;
  out["label"] = label;
  out["severity"] = to_string(severity);
  out["fired_at"] = fired_at;
  out["resolved_at"] = resolved_at;
  out["active"] = active();
  out["detail"] = detail;
  return out;
}

common::Json BurnStatus::to_json() const {
  common::Json out = common::Json::object();
  out["rule"] = rule;
  out["label"] = label;
  out["short_burn"] = short_burn;
  out["long_burn"] = long_burn;
  out["threshold"] = threshold;
  out["objective"] = objective;
  out["active"] = active;
  return out;
}

void AlertManager::add_rule(AlertRule rule) {
  std::scoped_lock lock(mutex_);
  rules_.push_back(DriftState{std::move(rule), -1, 0});
}

void AlertManager::add_burn_rule(BurnRateRule rule) {
  std::scoped_lock lock(mutex_);
  burn_rules_.push_back(BurnState{std::move(rule)});
}

void AlertManager::add_sink(AlertSink sink) {
  std::scoped_lock lock(mutex_);
  sinks_.push_back(std::move(sink));
}

std::size_t AlertManager::rule_count() const {
  std::scoped_lock lock(mutex_);
  return rules_.size() + burn_rules_.size();
}

void AlertManager::fire_locked(AlertRecord record,
                               std::vector<AlertRecord>& out) {
  const AlertKey key{record.rule, record.label};
  active_[key] = record;
  for (const auto& sink : sinks_) sink(record);
  out.push_back(std::move(record));
}

void AlertManager::resolve_locked(const AlertKey& key, common::TimeNs at,
                                  std::vector<AlertRecord>& out) {
  const auto it = active_.find(key);
  if (it == active_.end()) return;
  AlertRecord record = it->second;
  record.resolved_at = at;
  active_.erase(it);
  history_.push_back(record);
  while (history_.size() > history_cap_) history_.pop_front();
  for (const auto& sink : sinks_) sink(record);
  out.push_back(std::move(record));
}

std::vector<std::string> AlertManager::burn_groups_locked(
    const TimeSeriesDb& tsdb, const BurnRateRule& rule) const {
  std::set<std::string> groups;
  for (const SeriesKey& key : tsdb.series()) {
    if (key.measurement != rule.bad_measurement &&
        key.measurement != rule.good_measurement) {
      continue;
    }
    if (rule.group_tag.empty()) {
      groups.insert("");
      continue;
    }
    const auto tag = key.tags.find(rule.group_tag);
    if (tag != key.tags.end()) groups.insert(tag->second);
  }
  return {groups.begin(), groups.end()};
}

double AlertManager::burn_over_window(const TimeSeriesDb& tsdb,
                                      const BurnRateRule& rule,
                                      const std::string& group,
                                      common::TimeNs now,
                                      common::DurationNs window) {
  Tags tags;
  if (!rule.group_tag.empty()) tags[rule.group_tag] = group;
  const common::TimeNs start = now >= window ? now - window : 0;
  double bad = 0;
  double good = 0;
  for (const Point& p : tsdb.query_range(
           SeriesKey{rule.bad_measurement, tags}, start, now)) {
    bad += p.value;
  }
  for (const Point& p : tsdb.query_range(
           SeriesKey{rule.good_measurement, tags}, start, now)) {
    good += p.value;
  }
  const double total = bad + good;
  if (total <= 0) return 0;
  const double budget = std::max(1e-9, 1.0 - rule.objective);
  return (bad / total) / budget;
}

std::vector<AlertRecord> AlertManager::evaluate(const TimeSeriesDb& tsdb,
                                                common::TimeNs now) {
  std::scoped_lock lock(mutex_);
  std::vector<AlertRecord> transitions;

  for (DriftState& state : rules_) {
    const auto points = tsdb.query_range(
        state.rule.series, state.high_water + 1,
        std::numeric_limits<common::TimeNs>::max());
    for (const Point& point : points) {
      state.high_water = std::max(state.high_water, point.time);
      std::optional<DriftAlert> alert;
      if (auto* ewma = std::get_if<EwmaDetector>(&state.rule.detector)) {
        alert = ewma->update(point.value);
      } else if (auto* cusum =
                     std::get_if<CusumDetector>(&state.rule.detector)) {
        alert = cusum->update(point.value);
      }
      const AlertKey key{state.rule.name, state.rule.label};
      if (alert.has_value()) {
        state.quiet = 0;
        if (active_.find(key) == active_.end()) {
          fire_locked(AlertRecord{state.rule.name, state.rule.label,
                                  state.rule.severity, point.time, 0,
                                  alert->detail},
                      transitions);
        }
      } else if (active_.find(key) != active_.end()) {
        // A quiet stretch after an alarm: CUSUM resets its sums on every
        // alarm, so a still-drifting series re-alarms within a few points;
        // only a sustained quiet run means the drift actually stopped.
        if (++state.quiet >= state.rule.resolve_quiet) {
          state.quiet = 0;
          resolve_locked(key, point.time, transitions);
        }
      }
    }
  }

  for (BurnState& state : burn_rules_) {
    const BurnRateRule& rule = state.rule;
    for (const std::string& group : burn_groups_locked(tsdb, rule)) {
      const double short_burn =
          burn_over_window(tsdb, rule, group, now, rule.short_window);
      const double long_burn =
          burn_over_window(tsdb, rule, group, now, rule.long_window);
      const AlertKey key{rule.name, group};
      const bool is_active = active_.find(key) != active_.end();
      if (!is_active && short_burn > rule.burn_threshold &&
          long_burn > rule.burn_threshold) {
        fire_locked(
            AlertRecord{rule.name, group, rule.severity, now, 0,
                        common::format(
                            "burn short=%.2f long=%.2f threshold=%.2f "
                            "objective=%.4f",
                            short_burn, long_burn, rule.burn_threshold,
                            rule.objective)},
            transitions);
      } else if (is_active && short_burn <= rule.burn_threshold) {
        resolve_locked(key, now, transitions);
      }
    }
  }
  return transitions;
}

std::vector<AlertRecord> AlertManager::active() const {
  std::scoped_lock lock(mutex_);
  std::vector<AlertRecord> out;
  out.reserve(active_.size());
  for (const auto& [key, record] : active_) out.push_back(record);
  return out;
}

std::vector<AlertRecord> AlertManager::history() const {
  std::scoped_lock lock(mutex_);
  return {history_.begin(), history_.end()};
}

std::vector<BurnStatus> AlertManager::burn_status(const TimeSeriesDb& tsdb,
                                                  common::TimeNs now) const {
  std::scoped_lock lock(mutex_);
  std::vector<BurnStatus> out;
  for (const BurnState& state : burn_rules_) {
    const BurnRateRule& rule = state.rule;
    for (const std::string& group : burn_groups_locked(tsdb, rule)) {
      BurnStatus status;
      status.rule = rule.name;
      status.label = group;
      status.short_burn =
          burn_over_window(tsdb, rule, group, now, rule.short_window);
      status.long_burn =
          burn_over_window(tsdb, rule, group, now, rule.long_window);
      status.threshold = rule.burn_threshold;
      status.objective = rule.objective;
      status.active =
          active_.find(AlertKey{rule.name, group}) != active_.end();
      out.push_back(std::move(status));
    }
  }
  return out;
}

common::Json AlertManager::to_json() const {
  std::scoped_lock lock(mutex_);
  common::Json out = common::Json::object();
  common::Json active = common::Json::array();
  for (const auto& [key, record] : active_) {
    active.as_array().push_back(record.to_json());
  }
  common::Json recent = common::Json::array();
  for (const AlertRecord& record : history_) {
    recent.as_array().push_back(record.to_json());
  }
  out["active"] = std::move(active);
  out["recent"] = std::move(recent);
  return out;
}

}  // namespace qcenv::telemetry
