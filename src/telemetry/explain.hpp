// Job explainability primitives (§3.6, user-facing): the pieces that turn
// per-job span timelines into answers a tenant can act on.
//
//  - WaitCause / ExplainReport: the "where did my job's wait go"
//    decomposition served at GET /v1/jobs/:id/explain. Causes are an exact
//    partition of the observed queue wait — the daemon-side builder
//    (daemon/eta.hpp) constructs them so durations sum to the wait span,
//    and simtest asserts that equality per terminal job per seed.
//  - collapse_trace(): folds one trace's span tree into collapsed stacks
//    (flamegraph semantics: a frame's value is its SELF time, so the
//    values of all stacks sum to the trace's total duration).
//  - CriticalPathProfiler: aggregates terminal-job traces into windowed
//    per-resource / per-tenant collapsed-stack profiles with regression
//    detection against a recorded baseline (GET /admin/profile).
//
// Pure telemetry layer: no daemon, broker or accounting dependencies, so
// the bench and unit tests drive it with hand-built traces.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "telemetry/trace.hpp"

namespace qcenv::telemetry {

/// One named slice of a job's observed queue wait.
struct WaitCause {
  std::string name;  // "fair_share_demotion", "rate_limited", ...
  common::DurationNs duration = 0;
  std::string detail;  // human-readable attribution evidence

  common::Json to_json() const;
};

/// The per-job wait decomposition. `causes` partition `observed_wait`
/// exactly (the builder assigns the unexplained remainder to a
/// "queue_depth" cause rather than inventing slack).
struct ExplainReport {
  std::uint64_t job_id = 0;
  TraceId trace_id = 0;
  std::string user;
  std::string state;
  /// Closed queue_wait time for dispatched jobs; submit->now for jobs
  /// still pending (then `wait_closed` is false).
  common::DurationNs observed_wait = 0;
  bool wait_closed = false;
  std::vector<WaitCause> causes;

  common::Json to_json() const;
};

/// Folds one trace into collapsed stacks: ';'-joined stage path (root
/// first) -> self-time ns. Open spans (end < 0) are skipped — profiles
/// are built from terminal jobs, where every span is closed.
std::map<std::string, std::uint64_t> collapse_trace(const JobTrace& trace);

/// Flamegraph-compatible collapsed text: one "path value" line per stack,
/// sorted by path so the output is byte-stable across runs.
std::string to_collapsed_text(
    const std::map<std::string, std::uint64_t>& stacks);

/// One merged profile window (GET /admin/profile?window=).
struct ProfileView {
  common::TimeNs since = 0;
  common::TimeNs until = 0;
  std::size_t jobs = 0;
  std::map<std::string, std::uint64_t> stacks;
  std::map<std::string, std::map<std::string, std::uint64_t>> by_resource;
  std::map<std::string, std::map<std::string, std::uint64_t>> by_user;

  common::Json to_json() const;
};

/// A stack whose share of total self time grew past the baseline.
struct ProfileRegression {
  std::string stack;
  double baseline_share = 0.0;
  double current_share = 0.0;

  common::Json to_json() const;
};

class CriticalPathProfiler {
 public:
  /// Retains the most recent `capacity` terminal-job profiles.
  explicit CriticalPathProfiler(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Folds one terminal job's trace in, keyed at its finish time. The
  /// resource label comes from the last qrmi_execute (or shard_dispatch)
  /// span's detail; jobs that never dispatched file under "(none)".
  void add(const JobTrace& trace);

  /// Merged stacks over finish times in [since, until].
  ProfileView view(common::TimeNs since, common::TimeNs until) const;

  /// Records the window's per-stack shares as the regression baseline.
  void record_baseline(common::TimeNs since, common::TimeNs until);
  bool has_baseline() const;

  /// Stacks whose share of total self time exceeds the baseline share by
  /// more than `threshold` (absolute share points, e.g. 0.05 = 5pp).
  /// Sorted by regression size, largest first. Empty without a baseline.
  std::vector<ProfileRegression> regressions(common::TimeNs since,
                                             common::TimeNs until,
                                             double threshold) const;

  std::size_t size() const;

 private:
  struct Sample {
    common::TimeNs at = 0;
    std::string user;
    std::string resource;
    std::map<std::string, std::uint64_t> stacks;
  };

  static std::map<std::string, double> shares(
      const std::map<std::string, std::uint64_t>& stacks);
  ProfileView view_locked(common::TimeNs since, common::TimeNs until) const;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<Sample> samples_;
  std::map<std::string, double> baseline_;
  bool has_baseline_ = false;
};

}  // namespace qcenv::telemetry
