#include "telemetry/flight_recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <fstream>
#include <limits>

namespace qcenv::telemetry {

namespace {
// The process-wide armed recorder. Signal handlers cannot carry state, so
// arming is a singleton affair; the last recorder armed wins.
std::atomic<FlightRecorder*> g_armed_recorder{nullptr};
}  // namespace

void flight_recorder_signal_dump(int signo) noexcept {
  FlightRecorder* recorder = g_armed_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr && recorder->signal_fd_ >= 0) {
    const int active =
        recorder->signal_active_.load(std::memory_order_acquire);
    const std::size_t len =
        recorder->signal_len_[active].load(std::memory_order_acquire);
    if (len > 0) {
      // write() and fsync() are async-signal-safe; nothing else here is
      // allowed to allocate, lock or call into the C++ runtime.
      ssize_t ignored = ::write(recorder->signal_fd_,
                                recorder->signal_buf_[active].get(), len);
      (void)ignored;
      ::fsync(recorder->signal_fd_);
    }
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options,
                               const EventLog* events,
                               const TimeSeriesDb* tsdb, common::Clock* clock)
    : options_(std::move(options)),
      events_(events),
      tsdb_(tsdb),
      clock_(clock) {}

FlightRecorder::~FlightRecorder() {
  FlightRecorder* self = this;
  g_armed_recorder.compare_exchange_strong(self, nullptr);
  if (signal_fd_ >= 0) ::close(signal_fd_);
}

void FlightRecorder::heartbeat(const std::string& component) {
  const Beat beat{clock_->now(), std::chrono::steady_clock::now()};
  std::scoped_lock lock(mutex_);
  heartbeats_[component] = beat;
}

void FlightRecorder::set_info_provider(
    std::function<common::Json()> provider) {
  std::scoped_lock lock(mutex_);
  info_provider_ = std::move(provider);
}

common::Json FlightRecorder::render(const std::string& reason) const {
  common::Json out = common::Json::object();
  out["reason"] = reason;
  out["at_ns"] = clock_->now();

  common::Json events = common::Json::array();
  if (events_ != nullptr) {
    for (const Event& event : events_->tail(options_.event_tail)) {
      events.as_array().push_back(EventLog::to_json(event));
    }
  }
  out["events"] = std::move(events);

  common::Json beats = common::Json::object();
  {
    const auto wall_now = std::chrono::steady_clock::now();
    std::scoped_lock lock(mutex_);
    for (const auto& [component, beat] : heartbeats_) {
      const auto age = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           wall_now - beat.wall)
                           .count();
      common::Json entry = common::Json::object();
      entry["at_ns"] = beat.at;
      entry["wall_age_ms"] = age / common::kMillisecond;
      entry["stale"] = age > options_.stale_after;
      beats[component] = std::move(entry);
    }
  }
  out["heartbeats"] = std::move(beats);

  common::Json series = common::Json::object();
  if (tsdb_ != nullptr) {
    std::size_t kept = 0;
    for (const SeriesKey& key : tsdb_->series()) {
      if (kept >= options_.series_cap) break;
      auto points = tsdb_->query_range(
          key, 0, std::numeric_limits<common::TimeNs>::max());
      if (points.size() > options_.points_per_series) {
        points.erase(points.begin(),
                     points.end() - static_cast<std::ptrdiff_t>(
                                        options_.points_per_series));
      }
      common::JsonArray tail;
      tail.reserve(points.size());
      for (const Point& point : points) {
        common::JsonArray pair;
        pair.reserve(2);
        pair.emplace_back(point.time);
        pair.emplace_back(point.value);
        tail.emplace_back(std::move(pair));
      }
      series[key.to_string()] = common::Json(std::move(tail));
      ++kept;
    }
  }
  out["series"] = std::move(series);

  {
    std::scoped_lock lock(mutex_);
    if (info_provider_) out["info"] = info_provider_();
  }
  return out;
}

common::Result<std::string> FlightRecorder::dump(const std::string& reason) {
  if (options_.dump_path.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "flight recorder has no dump path"};
  }
  const std::string text = render(reason).dump(2);
  std::ofstream file(options_.dump_path, std::ios::trunc);
  if (!file) {
    return common::Error{common::ErrorCode::kIo,
                         "cannot open flight dump " + options_.dump_path};
  }
  file << text << "\n";
  file.flush();
  if (!file) {
    return common::Error{common::ErrorCode::kIo,
                         "short write to flight dump " + options_.dump_path};
  }
  dumps_.fetch_add(1, std::memory_order_relaxed);
  return options_.dump_path;
}

void FlightRecorder::arm_signal_handler() {
  if (options_.dump_path.empty()) return;
  if (!armed_) {
    signal_buf_[0] = std::make_unique<char[]>(kSignalBufCap);
    signal_buf_[1] = std::make_unique<char[]>(kSignalBufCap);
    signal_fd_ = ::open((options_.dump_path + ".signal").c_str(),
                        O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (signal_fd_ < 0) return;
    armed_ = true;
  }
  refresh();
  g_armed_recorder.store(this, std::memory_order_release);
  ::signal(SIGSEGV, flight_recorder_signal_dump);
  ::signal(SIGBUS, flight_recorder_signal_dump);
  ::signal(SIGABRT, flight_recorder_signal_dump);
}

void FlightRecorder::refresh() {
  if (!armed_) return;
  const std::string text = render("fatal_signal").dump(2);
  const int inactive = 1 - signal_active_.load(std::memory_order_relaxed);
  const std::size_t len = std::min(text.size(), kSignalBufCap);
  std::memcpy(signal_buf_[inactive].get(), text.data(), len);
  signal_len_[inactive].store(len, std::memory_order_release);
  signal_active_.store(inactive, std::memory_order_release);
}

}  // namespace qcenv::telemetry
