#include "telemetry/dashboard.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace qcenv::telemetry {

std::string sparkline(const std::vector<double>& values) {
  static const char* kGlyphs[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  double lo = values[0], hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo;
  std::string out;
  for (const double v : values) {
    if (std::isnan(v)) {
      out += " ";
      continue;
    }
    const double norm = span > 0 ? (v - lo) / span : 0.5;
    const auto idx = static_cast<std::size_t>(
        std::clamp(norm * 7.0 + 0.5, 0.0, 7.0));
    out += kGlyphs[idx];
  }
  return out;
}

std::string Dashboard::render_panel(const Panel& panel, common::TimeNs start,
                                    common::TimeNs end) const {
  const common::DurationNs span = std::max<common::DurationNs>(end - start, 1);
  const common::DurationNs window =
      std::max<common::DurationNs>(span / static_cast<common::DurationNs>(
                                              std::max<std::size_t>(panel.width, 1)),
                                   1);
  const auto windows =
      tsdb_->aggregate(panel.series, start, end, window, Aggregation::kMean);
  std::vector<double> values;
  values.reserve(windows.size());
  double last = std::nan("");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& w : windows) {
    if (w.samples == 0) {
      values.push_back(std::isnan(last) ? std::nan("") : last);
      continue;
    }
    values.push_back(w.value);
    last = w.value;
    lo = std::min(lo, w.value);
    hi = std::max(hi, w.value);
  }
  // Leading gaps render as the first known value.
  for (std::size_t i = values.size(); i-- > 0;) {
    if (std::isnan(values[i]) && i + 1 < values.size()) {
      values[i] = values[i + 1];
    }
  }
  std::string line = common::format("%-28s ", panel.title.c_str());
  line += sparkline(values);
  if (std::isfinite(lo) && std::isfinite(hi)) {
    line += common::format("  min=%.4g last=%.4g max=%.4g", lo, last, hi);
  } else {
    line += "  (no data)";
  }
  return line;
}

std::string Dashboard::render(common::TimeNs start, common::TimeNs end) const {
  std::string out;
  out += common::format("== qcenv dashboard  [%.1fs window] ==\n",
                        common::to_seconds(end - start));
  for (const auto& panel : panels_) {
    out += render_panel(panel, start, end) + "\n";
  }
  return out;
}

}  // namespace qcenv::telemetry
