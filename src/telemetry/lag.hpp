// LagTracker: replication-lag bookkeeping for the hot-standby pipeline.
//
// The standby replicator records (virtual time, lag-in-events) after every
// WAL pull; the tracker folds the samples into current/max/mean and keeps
// a bounded recent window so /admin/federation and bench_federation can
// show the lag trajectory, not just the endpoint. Metrics registries hold
// only the current value (a gauge) — the window lives here because lag is
// per-replication-link state, not global daemon state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/clock.hpp"
#include "common/json.hpp"

namespace qcenv::telemetry {

class LagTracker {
 public:
  struct Sample {
    common::TimeNs at = 0;
    std::uint64_t lag_events = 0;
  };

  struct Summary {
    std::uint64_t current = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    std::uint64_t samples = 0;

    common::Json to_json() const;
  };

  explicit LagTracker(std::size_t window = 256) : window_(window) {}

  void record(common::TimeNs at, std::uint64_t lag_events);
  Summary summary() const;
  /// The bounded recent window, oldest first.
  std::deque<Sample> recent() const;

 private:
  const std::size_t window_;
  mutable std::mutex mutex_;
  std::deque<Sample> recent_;
  std::uint64_t current_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace qcenv::telemetry
