// Per-job distributed-style tracing for the submit→dispatch→QRMI pipeline.
//
// Every submission is assigned a TraceId at admission time and accumulates
// a flat vector of spans as it moves through the daemon. Top-level spans
// (depth 0) follow a stage-machine discipline: enter() closes the currently
// open stage and opens the next one at the same instant, so the top-level
// spans of a finished trace exactly partition [start, finish] — which is
// what lets simtest assert "stages sum to observed latency" as an exact
// equality rather than a tolerance check. Child spans (depth 1, e.g. the
// QRMI poll loop inside `qrmi_execute`) are recorded already-closed and
// nest inside whatever top-level span covers their interval.
//
// Storage is a lock-sharded bounded ring: begin/enter/child/annotate/finish
// are O(1) (one shard mutex, one slot write), old traces are evicted by
// slot reuse, and nothing allocates past the per-trace span cap. All
// timestamps are caller-supplied (taken from the injected common::Clock),
// so simtest virtual time yields bit-identical traces across replays.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"

namespace qcenv::telemetry {

using TraceId = std::uint64_t;

/// One span. `end < 0` means still open (only ever the last depth-0 span).
struct TraceSpan {
  std::string stage;
  std::string detail;  // resource/lane/shard annotation, free-form
  common::TimeNs start = 0;
  common::TimeNs end = -1;
  int depth = 0;  // 0 = pipeline stage, 1 = nested (qrmi_poll, ...)
};

/// A timestamped free-form note (failover, requeue, give-up...).
struct TraceNote {
  common::TimeNs at = 0;
  std::string text;
};

struct JobTrace {
  TraceId trace_id = 0;
  std::uint64_t job_id = 0;  // 0 until bound to a dispatcher job
  std::string user;
  common::TimeNs start = 0;
  common::TimeNs finish = -1;  // -1 while in flight
  std::vector<TraceSpan> spans;
  std::vector<TraceNote> notes;
  /// Spans discarded once the per-trace cap was hit; a nonzero value tells
  /// consumers the partition property no longer holds for this trace.
  std::uint32_t dropped_spans = 0;
};

/// What enter()/finish() just closed, so call sites can feed per-stage
/// latency histograms without a second lookup.
struct ClosedSpan {
  std::string stage;
  std::string detail;
  common::DurationNs duration = 0;
};

class TraceStore {
 public:
  /// `capacity` is the total number of live traces retained (rounded up to
  /// a multiple of `shards`); the oldest trace in a shard is evicted when
  /// its ring wraps. Shards exist purely to spread lock traffic: trace ids
  /// are sequential, so N concurrent submitters hit shards round-robin —
  /// the default is sized so a 64-thread submit storm rarely collides.
  explicit TraceStore(std::size_t capacity = 4096, std::size_t shards = 64);

  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// Allocates a trace id WITHOUT touching any shard — one relaxed
  /// fetch_add. This is the only TraceStore call on the submit hot path:
  /// span construction is deferred to materialize_submit(), which runs at
  /// first claim/finish/read (or record_rejected() on the rejection
  /// path), so admission-limited throughput pays no lock and no trace
  /// memory traffic.
  TraceId allocate() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Materializes an allocate()d trace's submit-side timeline in one
  /// call: admission [admission_start, journal_start], journal_append
  /// [journal_start, queue_start], and queue_wait left open at
  /// `queue_start`. A negative `journal_start` means no durable store —
  /// admission closes at `queue_start` and the journal stage is skipped.
  /// A no-op when the slot was already claimed by a newer trace (this
  /// trace was evicted before it materialized).
  void materialize_submit(TraceId trace, std::uint64_t job_id,
                          std::string user, common::TimeNs admission_start,
                          common::TimeNs journal_start,
                          common::TimeNs queue_start,
                          std::string queue_detail);
  /// Materializes + finishes an allocate()d trace for a submission that
  /// never reached the queue: one admission span [start, finish].
  void record_rejected(TraceId trace, std::string user, common::TimeNs start,
                       common::TimeNs finish);
  /// Allocates a trace and opens its first top-level span (the eager
  /// path: restore-time `lost` traces and tests).
  TraceId begin(common::TimeNs now, std::string user, std::string stage,
                std::string detail = "");
  /// Records the dispatcher job id once it exists (after begin()).
  void bind_job(TraceId trace, std::uint64_t job_id);
  /// Closes the open top-level span at `now` and opens `stage`. Returns
  /// the span that was closed (absent for unknown/evicted traces).
  std::optional<ClosedSpan> enter(TraceId trace, common::TimeNs now,
                                  std::string stage, std::string detail = "");
  /// Appends an already-closed child span (depth 1) under the open stage.
  void child(TraceId trace, std::string stage, common::TimeNs start,
             common::TimeNs end, std::string detail = "");
  /// Appends a timestamped note (failover, requeue, ...).
  void annotate(TraceId trace, common::TimeNs now, std::string text);
  /// Closes the open span and the trace itself at `now`.
  std::optional<ClosedSpan> finish(TraceId trace, common::TimeNs now);

  /// Copies a trace out (absent if never created or already evicted).
  std::optional<JobTrace> find(TraceId trace) const;

  /// Per-job timeline JSON for `GET /v1/jobs/:id/trace` and artifacts.
  static common::Json to_json(const JobTrace& trace);

 private:
  /// Cache-line aligned so neighbouring shard mutexes never false-share.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::vector<JobTrace> ring;
  };

  Shard& shard_for(TraceId trace) { return shards_[trace % shards_.size()]; }
  const Shard& shard_for(TraceId trace) const {
    return shards_[trace % shards_.size()];
  }
  /// Trace ids are allocated sequentially, so a trace's ring slot is pure
  /// arithmetic — no per-shard index map on the hot path. A slot whose
  /// occupant id differs has been reused: the trace was evicted.
  std::size_t slot_for(TraceId trace) const {
    return (trace / shards_.size()) % slots_per_shard_;
  }
  /// Looks a trace up in its shard; nullptr when evicted. Caller holds the
  /// shard mutex.
  JobTrace* locate(Shard& shard, TraceId trace) const;
  /// Claims `trace`'s ring slot and resets it for reuse (keeping vector
  /// capacity, so steady-state trace creation is alloc-free). Returns
  /// nullptr when a newer trace already occupies the slot. Caller holds
  /// the shard mutex.
  JobTrace* reset_slot_locked(Shard& shard, TraceId trace, std::string user,
                              common::TimeNs start);

  std::vector<Shard> shards_;
  std::size_t slots_per_shard_;
  std::atomic<TraceId> next_id_{1};
};

/// Checks the structural invariant exposed to simtest: a finished trace's
/// top-level spans are closed, contiguous and exactly partition
/// [start, finish], and every child span nests inside a top-level span.
/// Returns an empty string when well-nested, else a human-readable reason.
std::string trace_nesting_error(const JobTrace& trace);

}  // namespace qcenv::telemetry
