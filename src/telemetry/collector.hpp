// Collector: bridges the pull world (metrics registries, QPU state) into
// the TSDB. scrape_once() is manual/deterministic for tests and simulation;
// start() spawns a background scraper for live deployments.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "common/clock.hpp"
#include "qpu/qpu_device.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tsdb.hpp"

namespace qcenv::telemetry {

/// Publishes QPU health into a MetricsRegistry (the per-device exporter the
/// hosting site scrapes; paper Figure 2's "fine grained hardware
/// monitoring").
class QpuTelemetrySource {
 public:
  QpuTelemetrySource(qpu::QpuDevice* device, MetricsRegistry* registry);

  /// Samples device state into gauges/counters.
  void update();

 private:
  qpu::QpuDevice* device_;
  MetricsRegistry* registry_;
  Labels labels_;
};

class Collector {
 public:
  Collector(MetricsRegistry* registry, TimeSeriesDb* tsdb,
            common::Clock* clock)
      : registry_(registry), tsdb_(tsdb), clock_(clock) {}
  ~Collector() { stop(); }

  /// Scrapes every registry sample into the TSDB at the clock's now().
  /// Returns the number of samples written.
  std::size_t scrape_once();

  /// Background scraping at a fixed wall interval.
  void start(common::DurationNs interval);
  void stop();

  std::uint64_t scrape_count() const noexcept { return scrapes_.load(); }

 private:
  MetricsRegistry* registry_;
  TimeSeriesDb* tsdb_;
  common::Clock* clock_;
  std::atomic<std::uint64_t> scrapes_{0};
  std::jthread scraper_;
};

}  // namespace qcenv::telemetry
