// MetricsCollector: bridges the pull world (metrics registries, QPU state,
// registered samplers) into the TSDB on a fixed deadline grid.
//
// Samples are stamped at *scheduled* grid deadlines (multiples of the scrape
// interval), not at the wall moment the scrape happened to run. That makes
// the series timestamps a pure function of the interval, which is what lets
// the simulation harness replay an alert timeline bit-identically: the set
// of scraped deadlines cannot depend on thread interleaving.
//
// scrape_at()/run_pending() are manual/deterministic for tests and
// simulation; start() spawns a background scraper for live deployments.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "qpu/qpu_device.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tsdb.hpp"

namespace qcenv::telemetry {

/// Publishes QPU health into a MetricsRegistry (the per-device exporter the
/// hosting site scrapes; paper Figure 2's "fine grained hardware
/// monitoring").
class QpuTelemetrySource {
 public:
  QpuTelemetrySource(qpu::QpuDevice* device, MetricsRegistry* registry);

  /// Samples device state into gauges/counters.
  void update();

 private:
  qpu::QpuDevice* device_;
  MetricsRegistry* registry_;
  Labels labels_;
};

struct CollectorOptions {
  common::DurationNs interval = common::kSecond;
  /// Catch-up policy when run_pending() finds several overdue deadlines.
  /// false (production): scrape only the newest and count the rest as
  /// missed — a stalled scraper should not backfill stale values. true
  /// (simulation): scrape every overdue deadline in order, so the scraped
  /// deadline set is {i * interval} regardless of when run_pending() was
  /// called.
  bool scrape_all_overdue = false;
};

/// A sampler writes domain samples (lane depths, SLO counters, broker
/// scores, ...) into the TSDB, stamped at the given grid deadline. Samplers
/// run one at a time under the collector's scrape lock.
using Sampler = std::function<void(common::TimeNs, TimeSeriesDb&)>;

class MetricsCollector {
 public:
  MetricsCollector(MetricsRegistry* registry, TimeSeriesDb* tsdb,
                   common::Clock* clock, CollectorOptions options = {});
  ~MetricsCollector() { stop(); }

  void add_sampler(Sampler sampler);

  /// One scrape of the registry plus all samplers, stamped at `stamp`
  /// (normally a grid deadline). Returns the number of points written.
  /// Does not touch the deadline bookkeeping: simulation drivers call this
  /// directly with their own deterministic deadline sequence.
  std::size_t scrape_at(common::TimeNs stamp);

  /// Scrapes every grid deadline that is due at `now` (subject to the
  /// catch-up policy). Returns the number of points written.
  std::size_t run_pending(common::TimeNs now);

  /// Background scraping driven by the injected clock.
  void start();
  void stop();

  /// Drops scrapes for deadlines <= until (a scrape-stall fault: the
  /// samples are lost, not late). Dropped deadlines count as missed.
  void stall_until(common::TimeNs until) {
    stall_until_.store(until, std::memory_order_relaxed);
  }
  /// Records scrapes lost outside the collector (e.g. a simulated stall
  /// where the driver never called scrape_at).
  void note_missed(std::uint64_t n = 1) {
    missed_.fetch_add(n, std::memory_order_relaxed);
  }

  common::DurationNs interval() const noexcept { return options_.interval; }
  common::TimeNs next_deadline() const noexcept {
    return next_deadline_.load(std::memory_order_relaxed);
  }
  common::TimeNs last_scrape() const noexcept {
    return last_scrape_.load(std::memory_order_relaxed);
  }
  std::uint64_t scrape_count() const noexcept { return scrapes_.load(); }
  std::uint64_t missed_count() const noexcept { return missed_.load(); }

 private:
  std::size_t scrape_locked(common::TimeNs stamp);

  MetricsRegistry* registry_;
  TimeSeriesDb* tsdb_;
  common::Clock* clock_;
  CollectorOptions options_;
  std::mutex mutex_;  // guards samplers_ and serializes scrapes
  std::vector<Sampler> samplers_;
  std::atomic<common::TimeNs> next_deadline_{0};
  std::atomic<common::TimeNs> last_scrape_{-1};
  std::atomic<common::TimeNs> stall_until_{-1};
  std::atomic<std::uint64_t> scrapes_{0};
  std::atomic<std::uint64_t> missed_{0};
  std::jthread scraper_;
};

}  // namespace qcenv::telemetry
