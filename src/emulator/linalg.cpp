#include "emulator/linalg.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace qcenv::emulator {

namespace {
constexpr double kJacobiTol = 1e-14;
constexpr int kMaxSweeps = 60;
}  // namespace

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

CMatrix CMatrix::adjoint() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.at(c, r) = std::conj(at(r, c));
    }
  }
  return out;
}

CMatrix CMatrix::transpose() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.at(c, r) = at(r, c);
    }
  }
  return out;
}

double CMatrix::norm() const {
  double acc = 0;
  for (const Complex& v : data_) acc += std::norm(v);
  return std::sqrt(acc);
}

CMatrix matmul(const CMatrix& a, const CMatrix& b) {
  assert(a.cols() == b.rows() && "matmul shape mismatch");
  CMatrix out(a.rows(), b.cols());
  // i-k-j loop order: streams through b rows, cache friendly.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const Complex aik = a.at(i, k);
      if (aik == Complex{}) continue;
      const Complex* brow = b.data() + k * b.cols();
      Complex* orow = out.data() + i * out.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

CMatrix kron(const CMatrix& a, const CMatrix& b) {
  CMatrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ar = 0; ar < a.rows(); ++ar) {
    for (std::size_t ac = 0; ac < a.cols(); ++ac) {
      const Complex av = a.at(ar, ac);
      if (av == Complex{}) continue;
      for (std::size_t br = 0; br < b.rows(); ++br) {
        for (std::size_t bc = 0; bc < b.cols(); ++bc) {
          out.at(ar * b.rows() + br, ac * b.cols() + bc) = av * b.at(br, bc);
        }
      }
    }
  }
  return out;
}

double max_abs_diff(const CMatrix& a, const CMatrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double best = 0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      best = std::max(best, std::abs(a.at(r, c) - b.at(r, c)));
    }
  }
  return best;
}

namespace {

/// One-sided Jacobi on a matrix with rows >= cols: orthogonalizes column
/// pairs until convergence, accumulating the right-transformations into V.
SvdResult svd_tall(const CMatrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  CMatrix work = a;
  CMatrix v = CMatrix::identity(n);

  const auto col_dot = [&](std::size_t i, std::size_t j) {
    // Returns ci^dagger * cj.
    Complex acc = 0;
    for (std::size_t r = 0; r < m; ++r) {
      acc += std::conj(work.at(r, i)) * work.at(r, j);
    }
    return acc;
  };
  const auto col_norm2 = [&](std::size_t i) {
    double acc = 0;
    for (std::size_t r = 0; r < m; ++r) acc += std::norm(work.at(r, i));
    return acc;
  };

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool converged = true;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const Complex gamma = col_dot(i, j);
        const double alpha = col_norm2(i);
        const double beta = col_norm2(j);
        const double mag = std::abs(gamma);
        if (mag <= kJacobiTol * std::sqrt(alpha * beta) || mag == 0.0) {
          continue;
        }
        converged = false;
        // Remove the phase of gamma from column j so the 2x2 Gram matrix
        // becomes real, then apply a classic real Jacobi rotation.
        const Complex phase = gamma / mag;
        const double tau = (beta - alpha) / (2.0 * mag);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        for (std::size_t r = 0; r < m; ++r) {
          const Complex ci = work.at(r, i);
          const Complex cj = work.at(r, j) * std::conj(phase);
          work.at(r, i) = cs * ci - sn * cj;
          work.at(r, j) = sn * ci + cs * cj;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const Complex vi = v.at(r, i);
          const Complex vj = v.at(r, j) * std::conj(phase);
          v.at(r, i) = cs * vi - sn * vj;
          v.at(r, j) = sn * vi + cs * vj;
        }
      }
    }
    if (converged) break;
  }

  // Extract singular values and sort descending.
  std::vector<double> sigma(n);
  for (std::size_t i = 0; i < n; ++i) sigma[i] = std::sqrt(col_norm2(i));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  SvdResult out;
  out.u = CMatrix(m, n);
  out.s.resize(n);
  out.vh = CMatrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = order[k];
    out.s[k] = sigma[src];
    const double inv = sigma[src] > 0 ? 1.0 / sigma[src] : 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      out.u.at(r, k) = work.at(r, src) * inv;
    }
    for (std::size_t r = 0; r < n; ++r) {
      out.vh.at(k, r) = std::conj(v.at(r, src));
    }
  }
  return out;
}

}  // namespace

SvdResult svd(const CMatrix& a) {
  if (a.rows() >= a.cols()) return svd_tall(a);
  // A = U S Vh  <=>  A^dagger = V S Uh; compute on the tall adjoint.
  SvdResult t = svd_tall(a.adjoint());
  SvdResult out;
  out.s = std::move(t.s);
  out.u = t.vh.adjoint();
  out.vh = t.u.adjoint();
  return out;
}

double truncate_svd(SvdResult& result, std::size_t max_rank, double cutoff) {
  const std::size_t k = result.s.size();
  double total = 0;
  for (const double s : result.s) total += s * s;
  if (total <= 0) return 0;

  std::size_t keep = std::min(max_rank, k);
  const double threshold = cutoff * (result.s.empty() ? 0.0 : result.s[0]);
  while (keep > 1 && result.s[keep - 1] < threshold) --keep;

  double discarded = 0;
  for (std::size_t i = keep; i < k; ++i) discarded += result.s[i] * result.s[i];

  if (keep < k) {
    CMatrix u(result.u.rows(), keep);
    for (std::size_t r = 0; r < u.rows(); ++r) {
      for (std::size_t c = 0; c < keep; ++c) u.at(r, c) = result.u.at(r, c);
    }
    CMatrix vh(keep, result.vh.cols());
    for (std::size_t r = 0; r < keep; ++r) {
      for (std::size_t c = 0; c < vh.cols(); ++c) {
        vh.at(r, c) = result.vh.at(r, c);
      }
    }
    result.u = std::move(u);
    result.vh = std::move(vh);
    result.s.resize(keep);
  }
  return discarded / total;
}

namespace {
const Complex kI{0.0, 1.0};
}

CMatrix gate_identity2() { return CMatrix::identity(2); }

CMatrix gate_x() {
  return CMatrix(2, 2, {0, 1, 1, 0});
}
CMatrix gate_y() {
  return CMatrix(2, 2, {0, -kI, kI, 0});
}
CMatrix gate_z() {
  return CMatrix(2, 2, {1, 0, 0, -1});
}
CMatrix gate_h() {
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  return CMatrix(2, 2, {inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2});
}
CMatrix gate_s() {
  return CMatrix(2, 2, {1, 0, 0, kI});
}
CMatrix gate_sdg() {
  return CMatrix(2, 2, {1, 0, 0, -kI});
}
CMatrix gate_t() {
  return CMatrix(2, 2, {1, 0, 0, std::exp(kI * (std::acos(-1.0) / 4.0))});
}
CMatrix gate_tdg() {
  return CMatrix(2, 2, {1, 0, 0, std::exp(-kI * (std::acos(-1.0) / 4.0))});
}
CMatrix gate_rx(double angle) {
  const double c = std::cos(angle / 2), s = std::sin(angle / 2);
  return CMatrix(2, 2, {c, -kI * s, -kI * s, c});
}
CMatrix gate_ry(double angle) {
  const double c = std::cos(angle / 2), s = std::sin(angle / 2);
  return CMatrix(2, 2, {c, -s, s, c});
}
CMatrix gate_rz(double angle) {
  return CMatrix(2, 2,
                 {std::exp(-kI * (angle / 2)), 0, 0, std::exp(kI * (angle / 2))});
}
CMatrix gate_phase(double angle) {
  return CMatrix(2, 2, {1, 0, 0, std::exp(kI * angle)});
}
CMatrix gate_cz() {
  CMatrix m = CMatrix::identity(4);
  m.at(3, 3) = -1;
  return m;
}
CMatrix gate_cx() {
  CMatrix m(4, 4);
  m.at(0, 0) = 1;
  m.at(1, 1) = 1;
  m.at(2, 3) = 1;
  m.at(3, 2) = 1;
  return m;
}
CMatrix gate_swap() {
  CMatrix m(4, 4);
  m.at(0, 0) = 1;
  m.at(1, 2) = 1;
  m.at(2, 1) = 1;
  m.at(3, 3) = 1;
  return m;
}

}  // namespace qcenv::emulator
