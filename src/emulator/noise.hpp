// Noise model: turns a CalibrationSnapshot into concrete imperfections.
//
//  - rabi_scale / detuning_offset: deterministic calibration errors applied
//    to the drive channels.
//  - dephasing_rate: quasi-static per-qubit detuning disorder, redrawn per
//    trajectory; disorder sigma = sqrt(2) * rate gives the Gaussian
//    coherence decay exp(-(t * rate)^2) of a T2*-limited device.
//  - fill_success: per-trajectory atom loading; failed atoms neither drive
//    nor interact and always read '0'.
//  - readout_p01 / readout_p10: classical measurement bit flips.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "quantum/device.hpp"
#include "quantum/samples.hpp"

namespace qcenv::emulator {

/// One trajectory's realized imperfections.
struct TrajectoryNoise {
  std::vector<double> delta_disorder;  // rad/us, per qubit
  std::vector<bool> active;            // atom loaded
  double rabi_scale = 1.0;
  double detuning_offset = 0.0;
};

class NoiseModel {
 public:
  /// Ideal (disabled) model.
  NoiseModel() = default;
  explicit NoiseModel(quantum::CalibrationSnapshot calibration)
      : calibration_(std::move(calibration)), enabled_(true) {}

  bool enabled() const noexcept { return enabled_; }
  const quantum::CalibrationSnapshot& calibration() const noexcept {
    return calibration_;
  }

  /// True when outcomes vary between trajectories (stochastic noise terms).
  bool stochastic() const noexcept {
    return enabled_ &&
           (calibration_.dephasing_rate > 0 || calibration_.fill_success < 1.0);
  }

  TrajectoryNoise draw_trajectory(std::size_t num_qubits,
                                  common::Rng& rng) const;

  /// Applies readout bit flips shot-by-shot; returns the corrupted samples.
  quantum::Samples apply_readout_errors(const quantum::Samples& samples,
                                        common::Rng& rng) const;

  /// Masks bitstring characters of unloaded atoms to '0'.
  static quantum::Samples mask_inactive(const quantum::Samples& samples,
                                        const std::vector<bool>& active);

 private:
  quantum::CalibrationSnapshot calibration_;
  bool enabled_ = false;
};

}  // namespace qcenv::emulator
