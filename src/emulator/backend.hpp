// Backend: the execution interface every compute resource implements.
//
// A Backend consumes an opaque Payload and produces Samples. The same
// interface backs the local emulators, the simulated QPU and (through QRMI)
// cloud resources, which is what makes the paper's emulator <-> QPU switch
// source-free.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "common/thread_pool.hpp"
#include "emulator/mps.hpp"
#include "emulator/noise.hpp"
#include "quantum/device.hpp"
#include "quantum/payload.hpp"
#include "quantum/samples.hpp"

namespace qcenv::emulator {

/// Per-run execution options.
struct RunOptions {
  /// RNG seed; identical seeds reproduce identical samples.
  std::uint64_t seed = 1234;
  /// Calibration to emulate; nullptr = ideal execution (development mode).
  const quantum::CalibrationSnapshot* calibration = nullptr;
  /// Worker pool for the dense kernels; nullptr = serial.
  common::ThreadPool* pool = nullptr;
  /// Integration substep ceiling (ns).
  quantum::DurationNsQ max_substep_ns = 0;  // 0 = backend default
  /// Waveform sampling grid (ns).
  quantum::DurationNsQ sample_dt_ns = 10;
  /// Noise trajectories when calibration has stochastic terms.
  std::size_t trajectories = 8;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;
  virtual quantum::DeviceSpec spec() const = 0;

  /// Validates the payload against spec() and executes it.
  virtual common::Result<quantum::Samples> run(const quantum::Payload& payload,
                                               const RunOptions& options) = 0;

  /// Convenience overload with default options (non-virtual to avoid the
  /// default-argument-in-override pitfall).
  common::Result<quantum::Samples> run(const quantum::Payload& payload) {
    return run(payload, RunOptions{});
  }
};

/// Exact dense emulator; memory-bound at ~2^max_qubits amplitudes.
class StateVectorBackend final : public Backend {
 public:
  explicit StateVectorBackend(std::size_t max_qubits = 22);

  std::string name() const override { return "emu-sv"; }
  quantum::DeviceSpec spec() const override { return spec_; }
  using Backend::run;
  common::Result<quantum::Samples> run(const quantum::Payload& payload,
                                       const RunOptions& options) override;

 private:
  quantum::DeviceSpec spec_;
  std::size_t max_qubits_;
};

/// Tensor-network emulator; chi = 1 gives the product-state mock mode.
class MpsBackend final : public Backend {
 public:
  explicit MpsBackend(MpsOptions options = {}, std::size_t max_qubits = 64,
                      int interaction_range = 2);

  std::string name() const override;
  quantum::DeviceSpec spec() const override { return spec_; }
  using Backend::run;
  common::Result<quantum::Samples> run(const quantum::Payload& payload,
                                       const RunOptions& options) override;

  const MpsOptions& mps_options() const noexcept { return mps_options_; }

 private:
  quantum::DeviceSpec spec_;
  MpsOptions mps_options_;
  std::size_t max_qubits_;
  int interaction_range_;
};

/// Factory by name: "sv" / "statevector", "mps", "mps-mock" (chi = 1).
/// "mps:<chi>" selects an explicit bond dimension.
common::Result<std::unique_ptr<Backend>> make_emulator_backend(
    const std::string& kind);

}  // namespace qcenv::emulator
