// Matrix-product-state emulator (Vidal canonical form) with TEBD evolution.
//
// This is the "tensor network emulator" of the paper's section 3.2: the bond
// dimension chi caps memory and cost, so very wide registers still execute —
// inaccurately for entangling dynamics, but faithfully enough to validate a
// hybrid program end-to-end. chi = 1 is the product-state "mock" mode the
// paper describes for end-to-end tests.
//
// Approximations (documented in DESIGN.md, measured in bench_emulator):
//  - Registers are treated as 1-D chains in index order; Rydberg
//    interactions are included up to `interaction_range` neighbours
//    (default 2; further tails are < ~0.5% of nearest-neighbour strength at
//    typical spacings).
//  - Non-adjacent gates are swap-routed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "emulator/linalg.hpp"
#include "emulator/statevector.hpp"
#include "quantum/register.hpp"
#include "quantum/samples.hpp"
#include "quantum/sequence.hpp"

namespace qcenv::emulator {

struct MpsOptions {
  std::size_t max_bond = 16;   // chi; 1 = product-state mock
  double svd_cutoff = 1e-10;   // relative singular-value cutoff
};

class Mps {
 public:
  /// Initializes |0...0> (bond dimension 1).
  explicit Mps(std::size_t num_qubits);

  std::size_t num_qubits() const noexcept { return num_sites_; }
  /// Current bond dimension between sites `bond` and `bond + 1`.
  std::size_t bond_dim(std::size_t bond) const;
  std::size_t max_bond_dim() const;
  /// Total discarded weight accumulated by truncations so far.
  double truncation_weight() const noexcept { return truncation_weight_; }

  void apply_1q(const CMatrix& u, std::size_t q);

  /// Two-qubit unitary on adjacent sites (q, q+1); rows indexed
  /// (value_q << 1) | value_{q+1}. Truncates to the given options.
  void apply_2q_adjacent(const CMatrix& u, std::size_t q,
                         const MpsOptions& options);

  /// General two-qubit unitary; swap-routes non-adjacent operands.
  void apply_2q(const CMatrix& u, std::size_t a, std::size_t b,
                const MpsOptions& options);

  /// <Z_q> via exact local contraction.
  double z_expectation(std::size_t q) const;
  /// Von Neumann entanglement entropy across the given bond.
  double entanglement_entropy(std::size_t bond) const;

  /// Draws one bitstring (canonical-form ancestral sampling).
  std::string sample_bits(common::Rng& rng) const;
  quantum::Samples sample(std::uint64_t shots, common::Rng& rng) const;

  /// Dense conversion for verification (requires num_qubits <= 20).
  StateVector to_statevector() const;

 private:
  // Vidal form: per site Gamma tensors (chiL x 2 x chiR, row-major) and
  // n+1 singular-value vectors (boundaries are {1}).
  struct Site {
    std::size_t chi_l = 1;
    std::size_t chi_r = 1;
    std::vector<Complex> gamma;  // [(l * 2 + s) * chi_r + r]
  };

  Complex& g(Site& site, std::size_t l, std::size_t s, std::size_t r) {
    return site.gamma[(l * 2 + s) * site.chi_r + r];
  }
  const Complex& g(const Site& site, std::size_t l, std::size_t s,
                   std::size_t r) const {
    return site.gamma[(l * 2 + s) * site.chi_r + r];
  }

  std::size_t num_sites_;
  std::vector<Site> sites_;
  std::vector<std::vector<double>> lambdas_;  // size num_sites_ + 1
  double truncation_weight_ = 0;
};

/// TEBD options mirror AnalogEvolveOptions plus MPS-specific knobs.
struct MpsEvolveOptions {
  quantum::DurationNsQ max_substep_ns = 5;
  MpsOptions mps;
  int interaction_range = 2;  // neighbours included in the chain Hamiltonian
  std::vector<double> delta_disorder;
  std::vector<bool> active;
  double rabi_scale = 1.0;
  double detuning_offset = 0.0;
};

/// TEBD evolution under the chain-restricted Rydberg Hamiltonian using
/// second-order splitting [K/2][D][K/2] (Rabi half-steps are single-site and
/// exact; the diagonal part is exact phase gates).
void evolve_analog_mps(Mps& psi, const quantum::AtomRegister& reg,
                       const quantum::SequenceSamples& samples, double c6,
                       const MpsEvolveOptions& options = {});

}  // namespace qcenv::emulator
