#include "emulator/statevector.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace qcenv::emulator {

using common::Rng;
using common::ThreadPool;
using quantum::Samples;

namespace {
/// Below this size, threading overhead dominates; run serially.
constexpr std::size_t kParallelThreshold = 1u << 14;

void maybe_parallel(ThreadPool* pool, std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body) {
  if (pool != nullptr && end - begin >= kParallelThreshold) {
    pool->parallel_for_chunks(begin, end, body);
  } else {
    body(begin, end);
  }
}
}  // namespace

StateVector::StateVector(std::size_t num_qubits)
    : num_qubits_(num_qubits), amps_(std::size_t{1} << num_qubits) {
  assert(num_qubits <= 30 && "state vector limited to 30 qubits");
  amps_[0] = 1.0;
}

void StateVector::apply_1q(const CMatrix& u, std::size_t q,
                           ThreadPool* pool) {
  assert(u.rows() == 2 && u.cols() == 2);
  assert(q < num_qubits_);
  const std::size_t bit = std::size_t{1} << q;
  const Complex u00 = u.at(0, 0), u01 = u.at(0, 1);
  const Complex u10 = u.at(1, 0), u11 = u.at(1, 1);
  const std::size_t half = amps_.size() / 2;
  Complex* amps = amps_.data();
  // Iterate over indices with bit q clear by splicing the index bits.
  maybe_parallel(pool, 0, half, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const std::size_t i0 = ((k & ~(bit - 1)) << 1) | (k & (bit - 1));
      const std::size_t i1 = i0 | bit;
      const Complex a0 = amps[i0];
      const Complex a1 = amps[i1];
      amps[i0] = u00 * a0 + u01 * a1;
      amps[i1] = u10 * a0 + u11 * a1;
    }
  });
}

void StateVector::apply_2q(const CMatrix& u, std::size_t a, std::size_t b,
                           ThreadPool* pool) {
  assert(u.rows() == 4 && u.cols() == 4);
  assert(a < num_qubits_ && b < num_qubits_ && a != b);
  const std::size_t bit_a = std::size_t{1} << a;
  const std::size_t bit_b = std::size_t{1} << b;
  const std::size_t lo_bit = std::min(bit_a, bit_b);
  const std::size_t hi_bit = std::max(bit_a, bit_b);
  const std::size_t quarter = amps_.size() / 4;
  Complex* amps = amps_.data();

  maybe_parallel(pool, 0, quarter, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      // Insert zeros at both qubit bit positions.
      std::size_t idx = k;
      idx = ((idx & ~(lo_bit - 1)) << 1) | (idx & (lo_bit - 1));
      idx = ((idx & ~(hi_bit - 1)) << 1) | (idx & (hi_bit - 1));
      const std::size_t i00 = idx;              // a=0, b=0
      const std::size_t i01 = idx | bit_b;      // a=0, b=1
      const std::size_t i10 = idx | bit_a;      // a=1, b=0
      const std::size_t i11 = idx | bit_a | bit_b;
      const Complex v00 = amps[i00], v01 = amps[i01];
      const Complex v10 = amps[i10], v11 = amps[i11];
      // Matrix rows ordered |ab> = 00, 01, 10, 11.
      amps[i00] = u.at(0, 0) * v00 + u.at(0, 1) * v01 + u.at(0, 2) * v10 +
                  u.at(0, 3) * v11;
      amps[i01] = u.at(1, 0) * v00 + u.at(1, 1) * v01 + u.at(1, 2) * v10 +
                  u.at(1, 3) * v11;
      amps[i10] = u.at(2, 0) * v00 + u.at(2, 1) * v01 + u.at(2, 2) * v10 +
                  u.at(2, 3) * v11;
      amps[i11] = u.at(3, 0) * v00 + u.at(3, 1) * v01 + u.at(3, 2) * v10 +
                  u.at(3, 3) * v11;
    }
  });
}

void StateVector::apply_diagonal(const std::vector<Complex>& phases,
                                 ThreadPool* pool) {
  assert(phases.size() == amps_.size());
  Complex* amps = amps_.data();
  const Complex* ph = phases.data();
  maybe_parallel(pool, 0, amps_.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) amps[i] *= ph[i];
  });
}

double StateVector::norm() const {
  double acc = 0;
  for (const Complex& a : amps_) acc += std::norm(a);
  return std::sqrt(acc);
}

void StateVector::normalize() {
  const double n = norm();
  if (n <= 0) return;
  const double inv = 1.0 / n;
  for (Complex& a : amps_) a *= inv;
}

Complex StateVector::inner_product(const StateVector& other) const {
  assert(num_qubits_ == other.num_qubits_);
  Complex acc = 0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::conj(amps_[i]) * other.amps_[i];
  }
  return acc;
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner_product(other));
}

double StateVector::excitation_probability(std::size_t q) const {
  const std::size_t bit = std::size_t{1} << q;
  double acc = 0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & bit) acc += std::norm(amps_[i]);
  }
  return acc;
}

double StateVector::z_expectation(std::size_t q) const {
  return 1.0 - 2.0 * excitation_probability(q);
}

common::Result<double> StateVector::expectation(
    const quantum::Observable& obs) const {
  if (obs.num_qubits() != num_qubits_) {
    return common::err::invalid_argument(
        "observable width does not match state width");
  }
  Complex total = 0;
  for (const auto& term : obs.terms()) {
    std::size_t xmask = 0;
    std::size_t ymask = 0;
    std::size_t zmask = 0;
    for (std::size_t q = 0; q < term.paulis.size(); ++q) {
      const std::size_t bit = std::size_t{1} << q;
      switch (term.paulis[q]) {
        case 'X': xmask |= bit; break;
        case 'Y': xmask |= bit; ymask |= bit; break;
        case 'Z': zmask |= bit; break;
        default: break;
      }
    }
    Complex acc = 0;
    for (std::size_t s = 0; s < amps_.size(); ++s) {
      const std::size_t t = s ^ xmask;
      // <s|P|t>: Z contributes (-1)^{s_q}; Y contributes +i when the bra
      // bit is 1 and -i when 0; X contributes 1.
      Complex elem = 1.0;
      const int z_parity = std::popcount(s & zmask) & 1;
      if (z_parity) elem = -elem;
      const int y_count = std::popcount(ymask);
      const int y_ones = std::popcount(s & ymask);
      // Each Y with bra bit 1 gives +i, with bra bit 0 gives -i:
      // total i^{y_ones} * (-i)^{y_count - y_ones}.
      const int i_power = (y_ones - (y_count - y_ones)) & 3;
      static const Complex kIPow[4] = {
          {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
      elem *= kIPow[(i_power + 4) & 3];
      acc += std::conj(amps_[s]) * elem * amps_[t];
    }
    total += term.coefficient * acc;
  }
  return total.real();
}

Samples StateVector::sample(std::uint64_t shots, Rng& rng) const {
  // Build the cumulative distribution once, then binary-search per shot.
  std::vector<double> cdf(amps_.size());
  double acc = 0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::norm(amps_[i]);
    cdf[i] = acc;
  }
  const double total = acc > 0 ? acc : 1.0;

  Samples samples(num_qubits_);
  for (std::uint64_t shot = 0; shot < shots; ++shot) {
    const double r = rng.uniform() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    const std::size_t state =
        static_cast<std::size_t>(std::min<std::ptrdiff_t>(
            it - cdf.begin(),
            static_cast<std::ptrdiff_t>(amps_.size()) - 1));
    std::string bits(num_qubits_, '0');
    for (std::size_t q = 0; q < num_qubits_; ++q) {
      if (state & (std::size_t{1} << q)) bits[q] = '1';
    }
    samples.record(bits);
  }
  return samples;
}

namespace {

/// Per-state sums used by the diagonal propagator, built incrementally in
/// O(2^n): f[s] = f[s without lowest bit] + weight[lowest bit].
std::vector<double> subset_sums(std::size_t num_qubits,
                                const std::vector<double>& weights) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  std::vector<double> sums(dim, 0.0);
  for (std::size_t s = 1; s < dim; ++s) {
    const std::size_t low = s & (~s + 1);
    const auto q = static_cast<std::size_t>(std::countr_zero(low));
    sums[s] = sums[s ^ low] + weights[q];
  }
  return sums;
}

/// Pairwise interaction energy per basis state: U[s] = sum over set pairs.
std::vector<double> interaction_diagonal(const quantum::AtomRegister& reg,
                                         double c6,
                                         const std::vector<bool>& active) {
  const std::size_t n = reg.size();
  const std::size_t dim = std::size_t{1} << n;
  // rowsum[q][s] would be O(n 2^n) memory; instead build incrementally:
  // U[s] = U[s\low] + sum_{j in s\low, both active} C6 / r_{low,j}^6.
  std::vector<double> pair(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool both_active =
          (active.empty() || (active[i] && active[j]));
      if (!both_active) continue;
      const double r = reg.distance(i, j);
      if (r <= 0) continue;
      const double u = c6 / std::pow(r, 6.0);
      pair[i * n + j] = u;
      pair[j * n + i] = u;
    }
  }
  std::vector<double> diag(dim, 0.0);
  for (std::size_t s = 1; s < dim; ++s) {
    const std::size_t low = s & (~s + 1);
    const auto q = static_cast<std::size_t>(std::countr_zero(low));
    const std::size_t rest = s ^ low;
    double add = 0;
    std::size_t remaining = rest;
    while (remaining) {
      const std::size_t lb = remaining & (~remaining + 1);
      add += pair[q * n + static_cast<std::size_t>(std::countr_zero(lb))];
      remaining ^= lb;
    }
    diag[s] = diag[rest] + add;
  }
  return diag;
}

}  // namespace

void evolve_analog(StateVector& psi, const quantum::AtomRegister& reg,
                   const quantum::SequenceSamples& samples, double c6,
                   const AnalogEvolveOptions& options) {
  const std::size_t n = psi.num_qubits();
  assert(reg.size() == n && "register size must match state width");
  if (samples.steps() == 0 || n == 0) return;

  const std::vector<double> diag_u =
      interaction_diagonal(reg, c6, options.active);

  // Static per-qubit detuning disorder (noise) summed per basis state.
  std::vector<double> disorder_sum;
  if (!options.delta_disorder.empty()) {
    std::vector<double> weights = options.delta_disorder;
    weights.resize(n, 0.0);
    disorder_sum = subset_sums(n, weights);
  }
  // Local detuning map weights (from the sequence's DMM), per basis state.
  std::vector<double> dmm_sum;
  std::vector<double> dmm_scale_per_step;
  if (!samples.delta_local.empty()) {
    // delta_local[q][step] = w_q * wf(step); recover w_q * wf by summing.
    // We precompute subset sums of the per-qubit weights by taking the
    // per-step scale out: delta_local[q][t] = weight_q * scale_t where
    // scale_t is the shared waveform sample. Find a reference qubit with
    // nonzero weight to extract scale_t.
    std::vector<double> weights(n, 0.0);
    std::size_t ref = samples.delta_local.size();
    for (std::size_t q = 0; q < samples.delta_local.size() && q < n; ++q) {
      for (const double v : samples.delta_local[q]) {
        if (v != 0.0) {
          ref = q;
          break;
        }
      }
      if (ref < samples.delta_local.size()) break;
    }
    if (ref < samples.delta_local.size()) {
      // Normalize so weight_ref = 1; scale_t = delta_local[ref][t].
      dmm_scale_per_step.assign(samples.delta_local[ref].begin(),
                                samples.delta_local[ref].end());
      for (std::size_t q = 0; q < n && q < samples.delta_local.size(); ++q) {
        // weight_q = delta_local[q][t*] / scale_t* at any step with scale != 0.
        double w = 0;
        for (std::size_t t = 0; t < dmm_scale_per_step.size(); ++t) {
          if (dmm_scale_per_step[t] != 0.0) {
            w = samples.delta_local[q][t] / dmm_scale_per_step[t];
            break;
          }
        }
        weights[q] = w;
      }
      dmm_sum = subset_sums(n, weights);
    }
  }

  const std::size_t dim = psi.dimension();
  std::vector<Complex> phases(dim);
  const auto active_bit = [&](std::size_t q) {
    return options.active.empty() || options.active[q];
  };

  // Active-qubit mask for the global detuning popcount.
  std::size_t active_mask = 0;
  for (std::size_t q = 0; q < n; ++q) {
    if (active_bit(q)) active_mask |= (std::size_t{1} << q);
  }

  const double sample_dt_us = static_cast<double>(samples.dt_ns) * 1e-3;
  const auto substeps = static_cast<std::size_t>(std::max<quantum::DurationNsQ>(
      1, (samples.dt_ns + options.max_substep_ns - 1) /
             std::max<quantum::DurationNsQ>(1, options.max_substep_ns)));
  const double dt_us = sample_dt_us / static_cast<double>(substeps);

  for (std::size_t step = 0; step < samples.steps(); ++step) {
    const double omega = samples.omega[step] * options.rabi_scale;
    const double delta = samples.delta[step] + options.detuning_offset;
    const double phi = samples.phase[step];
    const double dmm_scale =
        (step < dmm_scale_per_step.size()) ? dmm_scale_per_step[step] : 0.0;

    // Diagonal phases for a half substep:
    //   exp(-i * (U(s) - delta*|s| - disorder(s) - dmm(s)) * dt/2)
    const double half_dt = dt_us / 2.0;
    for (std::size_t s = 0; s < dim; ++s) {
      double diag = diag_u[s];
      diag -= delta * static_cast<double>(std::popcount(s & active_mask));
      if (!disorder_sum.empty()) diag -= disorder_sum[s];
      if (!dmm_sum.empty()) diag -= dmm_sum[s] * dmm_scale;
      const double angle = -diag * half_dt;
      phases[s] = Complex(std::cos(angle), std::sin(angle));
    }

    // Rabi rotation for a full substep: exact exponential of the commuting
    // single-qubit terms.
    const double theta = omega * dt_us / 2.0;
    const Complex e_ip = Complex(std::cos(phi), std::sin(phi));
    CMatrix rabi(2, 2);
    rabi.at(0, 0) = std::cos(theta);
    rabi.at(1, 1) = std::cos(theta);
    rabi.at(0, 1) = Complex(0, -1) * e_ip * std::sin(theta);
    rabi.at(1, 0) = Complex(0, -1) * std::conj(e_ip) * std::sin(theta);

    for (std::size_t sub = 0; sub < substeps; ++sub) {
      psi.apply_diagonal(phases, options.pool);
      if (omega != 0.0) {
        for (std::size_t q = 0; q < n; ++q) {
          if (active_bit(q)) psi.apply_1q(rabi, q, options.pool);
        }
      }
      psi.apply_diagonal(phases, options.pool);
    }
  }
}

}  // namespace qcenv::emulator
