#include "emulator/mps.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qcenv::emulator {

using common::Rng;
using quantum::Samples;

namespace {
constexpr double kLambdaFloor = 1e-12;
}

Mps::Mps(std::size_t num_qubits)
    : num_sites_(num_qubits),
      sites_(num_qubits),
      lambdas_(num_qubits + 1, std::vector<double>{1.0}) {
  for (auto& site : sites_) {
    site.chi_l = 1;
    site.chi_r = 1;
    site.gamma.assign(2, Complex{});
    site.gamma[0] = 1.0;  // |0>
  }
}

std::size_t Mps::bond_dim(std::size_t bond) const {
  assert(bond + 1 < lambdas_.size());
  return lambdas_[bond + 1].size();
}

std::size_t Mps::max_bond_dim() const {
  std::size_t best = 1;
  for (const auto& l : lambdas_) best = std::max(best, l.size());
  return best;
}

void Mps::apply_1q(const CMatrix& u, std::size_t q) {
  assert(q < num_sites_);
  Site& site = sites_[q];
  for (std::size_t l = 0; l < site.chi_l; ++l) {
    for (std::size_t r = 0; r < site.chi_r; ++r) {
      const Complex a0 = g(site, l, 0, r);
      const Complex a1 = g(site, l, 1, r);
      g(site, l, 0, r) = u.at(0, 0) * a0 + u.at(0, 1) * a1;
      g(site, l, 1, r) = u.at(1, 0) * a0 + u.at(1, 1) * a1;
    }
  }
}

void Mps::apply_2q_adjacent(const CMatrix& u, std::size_t q,
                            const MpsOptions& options) {
  assert(q + 1 < num_sites_);
  Site& left = sites_[q];
  Site& right = sites_[q + 1];
  const std::size_t chi_l = left.chi_l;
  const std::size_t chi_m = left.chi_r;
  const std::size_t chi_r = right.chi_r;
  const auto& lam_prev = lambdas_[q];
  const auto& lam_mid = lambdas_[q + 1];
  const auto& lam_next = lambdas_[q + 2];
  assert(lam_prev.size() == chi_l && lam_mid.size() == chi_m &&
         lam_next.size() == chi_r);

  // Theta[(l,s1),(s2,r)] = lam_prev[l] G1^{s1}[l,m] lam_mid[m]
  //                        G2^{s2}[m,r] lam_next[r]
  std::vector<Complex> theta(chi_l * 2 * 2 * chi_r, Complex{});
  for (std::size_t l = 0; l < chi_l; ++l) {
    for (std::size_t m = 0; m < chi_m; ++m) {
      const double lm = lam_mid[m];
      if (lm == 0.0) continue;
      for (std::size_t s1 = 0; s1 < 2; ++s1) {
        const Complex g1 = g(left, l, s1, m) * lam_prev[l] * lm;
        if (g1 == Complex{}) continue;
        for (std::size_t s2 = 0; s2 < 2; ++s2) {
          for (std::size_t r = 0; r < chi_r; ++r) {
            theta[((l * 2 + s1) * 2 + s2) * chi_r + r] +=
                g1 * g(right, m, s2, r) * lam_next[r];
          }
        }
      }
    }
  }

  // Apply U in the (s1, s2) indices: theta'[s1',s2'] = U[(s1's2'),(s1 s2)].
  std::vector<Complex> rotated(theta.size(), Complex{});
  for (std::size_t l = 0; l < chi_l; ++l) {
    for (std::size_t r = 0; r < chi_r; ++r) {
      Complex in[4];
      for (std::size_t s1 = 0; s1 < 2; ++s1) {
        for (std::size_t s2 = 0; s2 < 2; ++s2) {
          in[s1 * 2 + s2] = theta[((l * 2 + s1) * 2 + s2) * chi_r + r];
        }
      }
      for (std::size_t row = 0; row < 4; ++row) {
        Complex acc{};
        for (std::size_t col = 0; col < 4; ++col) {
          acc += u.at(row, col) * in[col];
        }
        rotated[((l * 2 + row / 2) * 2 + (row % 2)) * chi_r + r] = acc;
      }
    }
  }

  // Reshape to (chi_l*2) x (2*chi_r) and SVD.
  CMatrix m(chi_l * 2, 2 * chi_r);
  for (std::size_t l = 0; l < chi_l; ++l) {
    for (std::size_t s1 = 0; s1 < 2; ++s1) {
      for (std::size_t s2 = 0; s2 < 2; ++s2) {
        for (std::size_t r = 0; r < chi_r; ++r) {
          m.at(l * 2 + s1, s2 * chi_r + r) =
              rotated[((l * 2 + s1) * 2 + s2) * chi_r + r];
        }
      }
    }
  }
  SvdResult decomposition = svd(m);
  truncation_weight_ +=
      truncate_svd(decomposition, options.max_bond, options.svd_cutoff);

  // Renormalize the kept spectrum so the state stays normalized.
  double norm2 = 0;
  for (const double s : decomposition.s) norm2 += s * s;
  const double inv_norm = norm2 > 0 ? 1.0 / std::sqrt(norm2) : 0.0;
  std::vector<double> new_mid(decomposition.s.size());
  for (std::size_t i = 0; i < new_mid.size(); ++i) {
    new_mid[i] = decomposition.s[i] * inv_norm;
  }
  const std::size_t chi_new = new_mid.size();

  // New Gammas: divide out the environment lambdas (guarded pseudo-inverse).
  Site new_left;
  new_left.chi_l = chi_l;
  new_left.chi_r = chi_new;
  new_left.gamma.assign(chi_l * 2 * chi_new, Complex{});
  for (std::size_t l = 0; l < chi_l; ++l) {
    const double inv = lam_prev[l] > kLambdaFloor ? 1.0 / lam_prev[l] : 0.0;
    for (std::size_t s1 = 0; s1 < 2; ++s1) {
      for (std::size_t k = 0; k < chi_new; ++k) {
        new_left.gamma[(l * 2 + s1) * chi_new + k] =
            decomposition.u.at(l * 2 + s1, k) * inv;
      }
    }
  }
  Site new_right;
  new_right.chi_l = chi_new;
  new_right.chi_r = chi_r;
  new_right.gamma.assign(chi_new * 2 * chi_r, Complex{});
  for (std::size_t k = 0; k < chi_new; ++k) {
    for (std::size_t s2 = 0; s2 < 2; ++s2) {
      for (std::size_t r = 0; r < chi_r; ++r) {
        const double inv =
            lam_next[r] > kLambdaFloor ? 1.0 / lam_next[r] : 0.0;
        new_right.gamma[(k * 2 + s2) * chi_r + r] =
            decomposition.vh.at(k, s2 * chi_r + r) * inv;
      }
    }
  }
  sites_[q] = std::move(new_left);
  sites_[q + 1] = std::move(new_right);
  lambdas_[q + 1] = std::move(new_mid);
}

void Mps::apply_2q(const CMatrix& u, std::size_t a, std::size_t b,
                   const MpsOptions& options) {
  assert(a < num_sites_ && b < num_sites_ && a != b);
  // Orient so a < b; if operands were given high-first, conjugate the matrix
  // by SWAP to preserve semantics.
  CMatrix effective = u;
  if (a > b) {
    std::swap(a, b);
    const CMatrix sw = gate_swap();
    effective = matmul(sw, matmul(u, sw));
  }
  // Bring b next to a with swaps, apply, swap back.
  for (std::size_t pos = b; pos > a + 1; --pos) {
    apply_2q_adjacent(gate_swap(), pos - 1, options);
  }
  apply_2q_adjacent(effective, a, options);
  for (std::size_t pos = a + 1; pos < b; ++pos) {
    apply_2q_adjacent(gate_swap(), pos, options);
  }
}

double Mps::z_expectation(std::size_t q) const {
  assert(q < num_sites_);
  const Site& site = sites_[q];
  const auto& lam_l = lambdas_[q];
  const auto& lam_r = lambdas_[q + 1];
  double p0 = 0, p1 = 0;
  for (std::size_t l = 0; l < site.chi_l; ++l) {
    const double wl = lam_l[l] * lam_l[l];
    for (std::size_t r = 0; r < site.chi_r; ++r) {
      const double w = wl * lam_r[r] * lam_r[r];
      p0 += w * std::norm(g(site, l, 0, r));
      p1 += w * std::norm(g(site, l, 1, r));
    }
  }
  const double total = p0 + p1;
  if (total <= 0) return 1.0;
  return (p0 - p1) / total;
}

double Mps::entanglement_entropy(std::size_t bond) const {
  assert(bond + 1 < lambdas_.size());
  double entropy = 0;
  for (const double s : lambdas_[bond + 1]) {
    const double p = s * s;
    if (p > 1e-300) entropy -= p * std::log(p);
  }
  return entropy;
}

std::string Mps::sample_bits(Rng& rng) const {
  std::string bits(num_sites_, '0');
  std::vector<Complex> v{1.0};
  for (std::size_t q = 0; q < num_sites_; ++q) {
    const Site& site = sites_[q];
    const auto& lam_r = lambdas_[q + 1];
    std::vector<Complex> next0(site.chi_r, Complex{});
    std::vector<Complex> next1(site.chi_r, Complex{});
    for (std::size_t l = 0; l < site.chi_l; ++l) {
      const Complex vl = v[l];
      if (vl == Complex{}) continue;
      for (std::size_t r = 0; r < site.chi_r; ++r) {
        next0[r] += vl * g(site, l, 0, r) * lam_r[r];
        next1[r] += vl * g(site, l, 1, r) * lam_r[r];
      }
    }
    double w0 = 0, w1 = 0;
    for (const Complex& c : next0) w0 += std::norm(c);
    for (const Complex& c : next1) w1 += std::norm(c);
    const double total = w0 + w1;
    const bool one = total > 0 && rng.uniform() * total < w1;
    bits[q] = one ? '1' : '0';
    std::vector<Complex>& chosen = one ? next1 : next0;
    const double w = one ? w1 : w0;
    const double inv = w > 0 ? 1.0 / std::sqrt(w) : 0.0;
    for (Complex& c : chosen) c *= inv;
    v = std::move(chosen);
  }
  return bits;
}

Samples Mps::sample(std::uint64_t shots, Rng& rng) const {
  Samples samples(num_sites_);
  for (std::uint64_t i = 0; i < shots; ++i) {
    samples.record(sample_bits(rng));
  }
  return samples;
}

StateVector Mps::to_statevector() const {
  assert(num_sites_ <= 20 && "dense conversion limited to 20 qubits");
  StateVector out(num_sites_);
  // Accumulate left-to-right: cur[idx * chi + r] for idx over the first i
  // qubits (bit i of idx = qubit i).
  std::vector<Complex> cur{1.0};
  std::size_t chi = 1;
  for (std::size_t q = 0; q < num_sites_; ++q) {
    const Site& site = sites_[q];
    const auto& lam_r = lambdas_[q + 1];
    const std::size_t states = std::size_t{1} << q;
    std::vector<Complex> next(states * 2 * site.chi_r, Complex{});
    for (std::size_t idx = 0; idx < states; ++idx) {
      for (std::size_t l = 0; l < chi; ++l) {
        const Complex base = cur[idx * chi + l];
        if (base == Complex{}) continue;
        for (std::size_t s = 0; s < 2; ++s) {
          const std::size_t nidx = idx | (s << q);
          for (std::size_t r = 0; r < site.chi_r; ++r) {
            next[nidx * site.chi_r + r] +=
                base * g(site, l, s, r) * lam_r[r];
          }
        }
      }
    }
    cur = std::move(next);
    chi = site.chi_r;
  }
  // chi should be 1 at the right boundary.
  auto& amps = out.amplitudes();
  for (std::size_t i = 0; i < amps.size(); ++i) {
    amps[i] = cur[i * chi];  // right boundary index 0
  }
  return out;
}

void evolve_analog_mps(Mps& psi, const quantum::AtomRegister& reg,
                       const quantum::SequenceSamples& samples, double c6,
                       const MpsEvolveOptions& options) {
  const std::size_t n = psi.num_qubits();
  assert(reg.size() == n && "register size must match MPS width");
  if (samples.steps() == 0 || n == 0) return;

  const auto active_bit = [&](std::size_t q) {
    return options.active.empty() || options.active[q];
  };

  // Chain interactions up to `interaction_range` neighbours.
  struct Bond {
    std::size_t a;
    std::size_t b;
    double u;
  };
  std::vector<Bond> bonds;
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 1; d <= options.interaction_range; ++d) {
      const std::size_t j = i + static_cast<std::size_t>(d);
      if (j >= n) continue;
      if (!active_bit(i) || !active_bit(j)) continue;
      const double r = reg.distance(i, j);
      if (r <= 0) continue;
      bonds.push_back(Bond{i, j, c6 / std::pow(r, 6.0)});
    }
  }

  const double sample_dt_us = static_cast<double>(samples.dt_ns) * 1e-3;
  const auto substeps = static_cast<std::size_t>(std::max<quantum::DurationNsQ>(
      1, (samples.dt_ns + options.max_substep_ns - 1) /
             std::max<quantum::DurationNsQ>(1, options.max_substep_ns)));
  const double dt_us = sample_dt_us / static_cast<double>(substeps);

  for (std::size_t step = 0; step < samples.steps(); ++step) {
    const double omega = samples.omega[step] * options.rabi_scale;
    const double delta_glob = samples.delta[step] + options.detuning_offset;
    const double phi = samples.phase[step];

    // Half Rabi rotation (exact): theta = omega * dt / 2 over half a step.
    const double theta_half = omega * dt_us / 4.0;
    const Complex e_ip = Complex(std::cos(phi), std::sin(phi));
    CMatrix rabi_half(2, 2);
    rabi_half.at(0, 0) = std::cos(theta_half);
    rabi_half.at(1, 1) = std::cos(theta_half);
    rabi_half.at(0, 1) = Complex(0, -1) * e_ip * std::sin(theta_half);
    rabi_half.at(1, 0) =
        Complex(0, -1) * std::conj(e_ip) * std::sin(theta_half);

    // Per-qubit detuning phases for a full substep:
    // exp(-i * (-delta_q) * dt) on |1> => diag(1, e^{+i delta_q dt}).
    std::vector<CMatrix> detuning_gates;
    detuning_gates.reserve(n);
    for (std::size_t q = 0; q < n; ++q) {
      double delta_q = delta_glob;
      if (q < options.delta_disorder.size()) {
        delta_q += options.delta_disorder[q];
      }
      if (q < samples.delta_local.size() &&
          step < samples.delta_local[q].size()) {
        delta_q += samples.delta_local[q][step];
      }
      CMatrix gate(2, 2);
      gate.at(0, 0) = 1.0;
      const double angle = delta_q * dt_us;
      gate.at(1, 1) = Complex(std::cos(angle), std::sin(angle));
      detuning_gates.push_back(std::move(gate));
    }

    for (std::size_t sub = 0; sub < substeps; ++sub) {
      // [K/2]
      if (omega != 0.0) {
        for (std::size_t q = 0; q < n; ++q) {
          if (active_bit(q)) psi.apply_1q(rabi_half, q);
        }
      }
      // [D]: detunings (single-site, free) then interactions.
      for (std::size_t q = 0; q < n; ++q) {
        if (active_bit(q)) psi.apply_1q(detuning_gates[q], q);
      }
      for (const Bond& bond : bonds) {
        CMatrix gate = CMatrix::identity(4);
        const double angle = -bond.u * dt_us;
        gate.at(3, 3) = Complex(std::cos(angle), std::sin(angle));
        if (bond.b == bond.a + 1) {
          psi.apply_2q_adjacent(gate, bond.a, options.mps);
        } else {
          psi.apply_2q(gate, bond.a, bond.b, options.mps);
        }
      }
      // [K/2]
      if (omega != 0.0) {
        for (std::size_t q = 0; q < n; ++q) {
          if (active_bit(q)) psi.apply_1q(rabi_half, q);
        }
      }
    }
  }
}

}  // namespace qcenv::emulator
