#include "emulator/backend.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "emulator/statevector.hpp"

namespace qcenv::emulator {

using common::Json;
using common::Result;
using common::Rng;
using quantum::Circuit;
using quantum::Gate;
using quantum::GateKind;
using quantum::Payload;
using quantum::PayloadKind;
using quantum::Samples;
using quantum::Sequence;

namespace {

CMatrix gate_matrix_1q(const Gate& gate) {
  switch (gate.kind) {
    case GateKind::kI: return gate_identity2();
    case GateKind::kX: return gate_x();
    case GateKind::kY: return gate_y();
    case GateKind::kZ: return gate_z();
    case GateKind::kH: return gate_h();
    case GateKind::kS: return gate_s();
    case GateKind::kSdg: return gate_sdg();
    case GateKind::kT: return gate_t();
    case GateKind::kTdg: return gate_tdg();
    case GateKind::kRx: return gate_rx(gate.param);
    case GateKind::kRy: return gate_ry(gate.param);
    case GateKind::kRz: return gate_rz(gate.param);
    case GateKind::kPhase: return gate_phase(gate.param);
    default: return gate_identity2();
  }
}

CMatrix gate_matrix_2q(const Gate& gate) {
  switch (gate.kind) {
    case GateKind::kCz: return gate_cz();
    case GateKind::kCx: return gate_cx();
    case GateKind::kSwap: return gate_swap();
    default: return CMatrix::identity(4);
  }
}

Json base_metadata(const std::string& backend, const Payload& payload,
                   const NoiseModel& noise, std::size_t trajectories) {
  Json meta = Json::object();
  meta["backend"] = backend;
  meta["program_hash"] = static_cast<long long>(payload.program_hash());
  meta["shots"] = static_cast<long long>(payload.shots());
  meta["trajectories"] = static_cast<long long>(trajectories);
  if (noise.enabled()) {
    meta["calibration"] = noise.calibration().to_json();
  }
  return meta;
}

/// Divides shots into `parts` nearly equal chunks.
std::vector<std::uint64_t> split_shots(std::uint64_t shots,
                                       std::size_t parts) {
  std::vector<std::uint64_t> out(parts, shots / parts);
  for (std::size_t i = 0; i < shots % parts; ++i) ++out[i];
  return out;
}

}  // namespace

StateVectorBackend::StateVectorBackend(std::size_t max_qubits)
    : spec_(quantum::DeviceSpec::emulator_default(max_qubits)),
      max_qubits_(max_qubits) {
  spec_.name = "emu-sv";
}

Result<Samples> StateVectorBackend::run(const Payload& payload,
                                        const RunOptions& options) {
  if (payload.num_qubits() > max_qubits_) {
    return common::err::resource_exhausted(
        "emu-sv: " + std::to_string(payload.num_qubits()) +
        " qubits exceed the dense limit of " + std::to_string(max_qubits_));
  }
  Rng rng(options.seed);
  NoiseModel noise = options.calibration != nullptr
                         ? NoiseModel(*options.calibration)
                         : NoiseModel();

  if (payload.kind() == PayloadKind::kDigital) {
    auto circuit = payload.circuit();
    if (!circuit.ok()) return circuit.error();
    QCENV_RETURN_IF_ERROR(spec_.validate(circuit.value()));
    StateVector psi(circuit.value().num_qubits());
    for (const Gate& gate : circuit.value().gates()) {
      if (quantum::arity(gate.kind) == 1) {
        psi.apply_1q(gate_matrix_1q(gate), gate.qubits[0], options.pool);
      } else {
        psi.apply_2q(gate_matrix_2q(gate), gate.qubits[0], gate.qubits[1],
                     options.pool);
      }
    }
    Samples samples = psi.sample(payload.shots(), rng);
    samples = noise.apply_readout_errors(samples, rng);
    samples.set_metadata(base_metadata(name(), payload, noise, 1));
    return samples;
  }

  auto sequence = payload.sequence();
  if (!sequence.ok()) return sequence.error();
  QCENV_RETURN_IF_ERROR(spec_.validate(sequence.value()));
  const Sequence& seq = sequence.value();
  const auto grid = seq.sample(options.sample_dt_ns);
  const std::size_t n = seq.atom_register().size();

  const std::size_t trajectories =
      noise.stochastic()
          ? std::max<std::size_t>(
                1, std::min<std::uint64_t>(options.trajectories,
                                           payload.shots()))
          : 1;
  const auto shot_split = split_shots(payload.shots(), trajectories);

  Samples merged(n);
  for (std::size_t t = 0; t < trajectories; ++t) {
    Rng traj_rng = rng.fork(t + 1);
    const TrajectoryNoise traj = noise.draw_trajectory(n, traj_rng);
    AnalogEvolveOptions evolve;
    evolve.max_substep_ns =
        options.max_substep_ns > 0 ? options.max_substep_ns : 2;
    evolve.pool = options.pool;
    evolve.delta_disorder = traj.delta_disorder;
    evolve.active = traj.active;
    evolve.rabi_scale = traj.rabi_scale;
    evolve.detuning_offset = traj.detuning_offset;

    StateVector psi(n);
    evolve_analog(psi, seq.atom_register(), grid, spec_.c6_coefficient,
                  evolve);
    Samples shot_samples = psi.sample(shot_split[t], traj_rng);
    shot_samples = NoiseModel::mask_inactive(shot_samples, traj.active);
    QCENV_RETURN_IF_ERROR(merged.merge(shot_samples));
  }
  merged = noise.apply_readout_errors(merged, rng);
  merged.set_metadata(base_metadata(name(), payload, noise, trajectories));
  return merged;
}

MpsBackend::MpsBackend(MpsOptions options, std::size_t max_qubits,
                       int interaction_range)
    : spec_(quantum::DeviceSpec::emulator_default(max_qubits)),
      mps_options_(options),
      max_qubits_(max_qubits),
      interaction_range_(interaction_range) {
  spec_.name = name();
}

std::string MpsBackend::name() const {
  return "emu-mps-chi" + std::to_string(mps_options_.max_bond);
}

Result<Samples> MpsBackend::run(const Payload& payload,
                                const RunOptions& options) {
  if (payload.num_qubits() > max_qubits_) {
    return common::err::resource_exhausted(
        name() + ": " + std::to_string(payload.num_qubits()) +
        " qubits exceed the configured limit of " +
        std::to_string(max_qubits_));
  }
  Rng rng(options.seed);
  NoiseModel noise = options.calibration != nullptr
                         ? NoiseModel(*options.calibration)
                         : NoiseModel();

  if (payload.kind() == PayloadKind::kDigital) {
    auto circuit = payload.circuit();
    if (!circuit.ok()) return circuit.error();
    QCENV_RETURN_IF_ERROR(spec_.validate(circuit.value()));
    Mps psi(circuit.value().num_qubits());
    for (const Gate& gate : circuit.value().gates()) {
      if (quantum::arity(gate.kind) == 1) {
        psi.apply_1q(gate_matrix_1q(gate), gate.qubits[0]);
      } else {
        psi.apply_2q(gate_matrix_2q(gate), gate.qubits[0], gate.qubits[1],
                     mps_options_);
      }
    }
    Samples samples = psi.sample(payload.shots(), rng);
    samples = noise.apply_readout_errors(samples, rng);
    Json meta = base_metadata(name(), payload, noise, 1);
    meta["max_bond_dim"] = static_cast<long long>(psi.max_bond_dim());
    meta["truncation_weight"] = psi.truncation_weight();
    samples.set_metadata(std::move(meta));
    return samples;
  }

  auto sequence = payload.sequence();
  if (!sequence.ok()) return sequence.error();
  QCENV_RETURN_IF_ERROR(spec_.validate(sequence.value()));
  const Sequence& seq = sequence.value();
  const auto grid = seq.sample(options.sample_dt_ns);
  const std::size_t n = seq.atom_register().size();

  const std::size_t trajectories =
      noise.stochastic()
          ? std::max<std::size_t>(
                1, std::min<std::uint64_t>(options.trajectories,
                                           payload.shots()))
          : 1;
  const auto shot_split = split_shots(payload.shots(), trajectories);

  Samples merged(n);
  double total_truncation = 0;
  std::size_t peak_bond = 1;
  for (std::size_t t = 0; t < trajectories; ++t) {
    Rng traj_rng = rng.fork(t + 1);
    const TrajectoryNoise traj = noise.draw_trajectory(n, traj_rng);
    MpsEvolveOptions evolve;
    evolve.max_substep_ns =
        options.max_substep_ns > 0 ? options.max_substep_ns : 5;
    evolve.mps = mps_options_;
    evolve.interaction_range = interaction_range_;
    evolve.delta_disorder = traj.delta_disorder;
    evolve.active = traj.active;
    evolve.rabi_scale = traj.rabi_scale;
    evolve.detuning_offset = traj.detuning_offset;

    Mps psi(n);
    evolve_analog_mps(psi, seq.atom_register(), grid, spec_.c6_coefficient,
                      evolve);
    total_truncation += psi.truncation_weight();
    peak_bond = std::max(peak_bond, psi.max_bond_dim());
    Samples shot_samples = psi.sample(shot_split[t], traj_rng);
    shot_samples = NoiseModel::mask_inactive(shot_samples, traj.active);
    QCENV_RETURN_IF_ERROR(merged.merge(shot_samples));
  }
  merged = noise.apply_readout_errors(merged, rng);
  Json meta = base_metadata(name(), payload, noise, trajectories);
  meta["max_bond_dim"] = static_cast<long long>(peak_bond);
  meta["truncation_weight"] =
      total_truncation / static_cast<double>(trajectories);
  merged.set_metadata(std::move(meta));
  return merged;
}

Result<std::unique_ptr<Backend>> make_emulator_backend(
    const std::string& kind) {
  if (kind == "sv" || kind == "statevector") {
    return std::unique_ptr<Backend>(std::make_unique<StateVectorBackend>());
  }
  if (kind == "mps") {
    return std::unique_ptr<Backend>(std::make_unique<MpsBackend>());
  }
  if (kind == "mps-mock") {
    MpsOptions options;
    options.max_bond = 1;
    return std::unique_ptr<Backend>(
        std::make_unique<MpsBackend>(options, 1024));
  }
  if (common::starts_with(kind, "mps:")) {
    const std::string chi_text = kind.substr(4);
    char* end = nullptr;
    const long chi = std::strtol(chi_text.c_str(), &end, 10);
    if (end == chi_text.c_str() || *end != '\0' || chi < 1) {
      return common::err::invalid_argument("bad bond dimension in: " + kind);
    }
    MpsOptions options;
    options.max_bond = static_cast<std::size_t>(chi);
    return std::unique_ptr<Backend>(std::make_unique<MpsBackend>(options));
  }
  return common::err::not_found("unknown emulator backend: " + kind);
}

}  // namespace qcenv::emulator
