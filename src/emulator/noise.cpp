#include "emulator/noise.hpp"

#include <cmath>

namespace qcenv::emulator {

using common::Rng;
using quantum::Samples;

TrajectoryNoise NoiseModel::draw_trajectory(std::size_t num_qubits,
                                            Rng& rng) const {
  TrajectoryNoise noise;
  if (!enabled_) return noise;
  noise.rabi_scale = calibration_.rabi_scale;
  noise.detuning_offset = calibration_.detuning_offset;
  if (calibration_.dephasing_rate > 0) {
    const double sigma = std::sqrt(2.0) * calibration_.dephasing_rate;
    noise.delta_disorder.resize(num_qubits);
    for (double& d : noise.delta_disorder) d = rng.normal(0.0, sigma);
  }
  if (calibration_.fill_success < 1.0) {
    noise.active.resize(num_qubits);
    for (std::size_t q = 0; q < num_qubits; ++q) {
      noise.active[q] = rng.bernoulli(calibration_.fill_success);
    }
  }
  return noise;
}

Samples NoiseModel::apply_readout_errors(const Samples& samples,
                                         Rng& rng) const {
  if (!enabled_ ||
      (calibration_.readout_p01 <= 0 && calibration_.readout_p10 <= 0)) {
    return samples;
  }
  Samples corrupted(samples.num_qubits());
  for (const auto& [bits, count] : samples.counts()) {
    for (std::uint64_t shot = 0; shot < count; ++shot) {
      std::string flipped = bits;
      for (char& c : flipped) {
        if (c == '0' && rng.bernoulli(calibration_.readout_p01)) {
          c = '1';
        } else if (c == '1' && rng.bernoulli(calibration_.readout_p10)) {
          c = '0';
        }
      }
      corrupted.record(flipped);
    }
  }
  corrupted.set_metadata(samples.metadata());
  return corrupted;
}

Samples NoiseModel::mask_inactive(const Samples& samples,
                                  const std::vector<bool>& active) {
  if (active.empty()) return samples;
  Samples masked(samples.num_qubits());
  for (const auto& [bits, count] : samples.counts()) {
    std::string out = bits;
    for (std::size_t q = 0; q < out.size() && q < active.size(); ++q) {
      if (!active[q]) out[q] = '0';
    }
    masked.record(out, count);
  }
  masked.set_metadata(samples.metadata());
  return masked;
}

}  // namespace qcenv::emulator
