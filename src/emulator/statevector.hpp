// Dense state-vector simulator.
//
// Basis convention: bit q of the amplitude index holds qubit q
// (LSB = qubit 0), and bitstring character i reports qubit i. Gate matrices
// for two-qubit gates are indexed |q_a q_b> with qubits[0] the high bit,
// matching kron(A, B) on (qubits[0], qubits[1]).
//
// Analog evolution uses second-order Strang splitting with exactly
// exponentiated factors: the diagonal part (detunings + Rydberg
// interactions) commutes with itself and is applied as exact phases, and the
// Rabi part is a product of commuting single-qubit rotations. The scheme is
// unconditionally norm-preserving, so even strongly blockaded registers
// (U >> Ω) integrate stably; accuracy is set by the splitting step dt.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "emulator/linalg.hpp"
#include "quantum/observable.hpp"
#include "quantum/register.hpp"
#include "quantum/samples.hpp"
#include "quantum/sequence.hpp"

namespace qcenv::emulator {

class StateVector {
 public:
  /// Initializes |0...0>. Throws std::bad_alloc beyond memory; callers
  /// should gate qubit counts through Backend::max_qubits.
  explicit StateVector(std::size_t num_qubits);

  std::size_t num_qubits() const noexcept { return num_qubits_; }
  std::size_t dimension() const noexcept { return amps_.size(); }
  std::vector<Complex>& amplitudes() noexcept { return amps_; }
  const std::vector<Complex>& amplitudes() const noexcept { return amps_; }

  /// Applies a 2x2 unitary to qubit q.
  void apply_1q(const CMatrix& u, std::size_t q,
                common::ThreadPool* pool = nullptr);

  /// Applies a 4x4 unitary to (qubits a, b); matrix rows are indexed
  /// (value_of_a << 1) | value_of_b.
  void apply_2q(const CMatrix& u, std::size_t a, std::size_t b,
                common::ThreadPool* pool = nullptr);

  /// Multiplies amplitude of every basis state s by phases[s].
  void apply_diagonal(const std::vector<Complex>& phases,
                      common::ThreadPool* pool = nullptr);

  double norm() const;
  void normalize();
  Complex inner_product(const StateVector& other) const;
  /// |<this|other>|^2.
  double fidelity(const StateVector& other) const;

  /// Probability that qubit q reads 1.
  double excitation_probability(std::size_t q) const;
  /// <Z_q>.
  double z_expectation(std::size_t q) const;
  /// General Pauli-sum expectation (real part; observables are Hermitian).
  common::Result<double> expectation(const quantum::Observable& obs) const;

  /// Draws `shots` bitstrings from |psi|^2.
  quantum::Samples sample(std::uint64_t shots, common::Rng& rng) const;

 private:
  std::size_t num_qubits_;
  std::vector<Complex> amps_;
};

/// Parameters controlling analog integration.
struct AnalogEvolveOptions {
  /// Splitting substep. Each sampled waveform step is subdivided so no
  /// substep exceeds this (ns).
  quantum::DurationNsQ max_substep_ns = 2;
  common::ThreadPool* pool = nullptr;
  /// Per-qubit static detuning disorder (rad/us), e.g. dephasing noise;
  /// empty = none.
  std::vector<double> delta_disorder;
  /// Per-qubit participation (atom successfully loaded); empty = all active.
  /// Inactive qubits feel no drive and no interactions.
  std::vector<bool> active;
  /// Multiplies the global amplitude waveform (calibration error).
  double rabi_scale = 1.0;
  /// Added to the global detuning waveform (calibration error), rad/us.
  double detuning_offset = 0.0;
};

/// Evolves |psi> under the Rydberg Hamiltonian
///   H(t) = sum_q (Omega(t)/2)(cos phi sx_q - sin phi sy_q)
///        - sum_q delta_q(t) n_q + sum_{i<j} C6/r_ij^6 n_i n_j
/// using the sampled sequence channels. The register provides pair
/// distances; `samples` provides Omega/delta/phase per step.
void evolve_analog(StateVector& psi, const quantum::AtomRegister& reg,
                   const quantum::SequenceSamples& samples, double c6,
                   const AnalogEvolveOptions& options = {});

}  // namespace qcenv::emulator
