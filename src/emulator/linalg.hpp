// Dense complex linear algebra for the emulators: matrices sized by MPS bond
// dimension (tens, not thousands), so simple cache-friendly kernels beat
// library dispatch overhead. SVD uses one-sided Jacobi — slow asymptotically
// but robust, dependency-free and accurate to machine precision at these
// sizes.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace qcenv::emulator {

using Complex = std::complex<double>;

/// Row-major dense complex matrix.
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}
  CMatrix(std::size_t rows, std::size_t cols, std::vector<Complex> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {}

  static CMatrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  Complex& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const Complex& at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  Complex* data() noexcept { return data_.data(); }
  const Complex* data() const noexcept { return data_.data(); }

  CMatrix adjoint() const;
  CMatrix transpose() const;

  /// Frobenius norm.
  double norm() const;

  bool operator==(const CMatrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

/// C = A * B.
CMatrix matmul(const CMatrix& a, const CMatrix& b);

/// Kronecker product (used by tests and the transpiler).
CMatrix kron(const CMatrix& a, const CMatrix& b);

/// Max |A_ij - B_ij|.
double max_abs_diff(const CMatrix& a, const CMatrix& b);

/// Thin singular value decomposition A = U * diag(S) * Vh with
/// k = min(rows, cols): U is rows x k with orthonormal columns, S is the
/// non-increasing singular values, Vh is k x cols with orthonormal rows.
struct SvdResult {
  CMatrix u;
  std::vector<double> s;
  CMatrix vh;
};

/// One-sided Jacobi SVD. Deterministic; converges to machine precision for
/// the well-conditioned small matrices produced by TEBD.
SvdResult svd(const CMatrix& a);

/// Truncates an SVD to at most `max_rank` values, additionally dropping
/// values below `cutoff * s[0]`. Returns the discarded weight
/// (sum of squared dropped singular values / total).
double truncate_svd(SvdResult& svd, std::size_t max_rank, double cutoff);

// -- Standard gate matrices (2x2 / 4x4), computational basis |0>, |1> ------

CMatrix gate_identity2();
CMatrix gate_x();
CMatrix gate_y();
CMatrix gate_z();
CMatrix gate_h();
CMatrix gate_s();
CMatrix gate_sdg();
CMatrix gate_t();
CMatrix gate_tdg();
CMatrix gate_rx(double angle);
CMatrix gate_ry(double angle);
CMatrix gate_rz(double angle);
CMatrix gate_phase(double angle);
CMatrix gate_cz();
CMatrix gate_cx();
CMatrix gate_swap();

}  // namespace qcenv::emulator
