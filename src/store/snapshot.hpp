// StoreSnapshot: a point-in-time image of the daemon's durable state.
//
// Snapshots bound journal growth: compaction writes the full current state
// (sessions + jobs, including accumulated samples) atomically and then
// drops every journal event the snapshot already covers. The two
// watermarks record which journal prefix is folded in — job events are
// appended under the dispatcher lock so `jobs_seq` is exact, while session
// events are applied idempotently on replay so `sessions_seq` only needs
// the read-watermark-before-list ordering guarantee.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"
#include "store/records.hpp"

namespace qcenv::store {

struct StoreSnapshot {
  static constexpr const char* kVersion = "qcenv.store.v1";

  /// Journal events with seq <= jobs_seq are reflected in `jobs`.
  std::uint64_t jobs_seq = 0;
  /// Journal events with seq <= sessions_seq are reflected in `sessions`.
  std::uint64_t sessions_seq = 0;
  /// Next daemon job id to allocate after recovery.
  std::uint64_t next_job_id = 1;
  common::TimeNs created = 0;
  std::vector<SessionRecord> sessions;
  std::vector<JobRecord> jobs;
  /// Content-deduped payload bodies keyed "<user>|<fingerprint>" (the
  /// same scope the journal uses): a 10k-job parameter sweep snapshots
  /// its program once, and jobs reference it via payload_hash.
  std::map<std::string, common::Json> payloads;
  /// Per-user decayed accounting usage, consistent with jobs_seq (captured
  /// under the dispatcher lock, where batches charge the ledger).
  std::vector<UsageRecord> usage;

  common::Json to_json() const;
  static common::Result<StoreSnapshot> from_json(const common::Json& json);

  /// Writes tmp-file + fsync + rename so a crash never leaves a partial
  /// snapshot in place of a good one.
  common::Status write_atomic(const std::string& path) const;
  /// Loads a snapshot; nullopt when no snapshot exists yet.
  static common::Result<std::optional<StoreSnapshot>> load(
      const std::string& path);
};

}  // namespace qcenv::store
