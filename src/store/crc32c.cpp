#include "store/crc32c.hpp"

#include <array>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace qcenv::store {

namespace {

/// Slicing-by-4 tables for the reflected Castagnoli polynomial. Table 0 is
/// the classic byte-at-a-time table; tables 1-3 let the hot loop consume
/// four bytes per iteration. Built once at first use (thread-safe since
/// C++11 magic statics).
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  Tables() noexcept {
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& tables() noexcept {
  static const Tables instance;
  return instance;
}

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
#if defined(__SSE4_2__)
  // Hardware CRC32C: 8 bytes per instruction on any x86-64 with SSE4.2.
  while (size >= 8) {
    std::uint64_t chunk = 0;
    __builtin_memcpy(&chunk, bytes, 8);
    crc = static_cast<std::uint32_t>(_mm_crc32_u64(crc, chunk));
    bytes += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = _mm_crc32_u8(crc, *bytes++);
    --size;
  }
#else
  const auto& t = tables().t;
  while (size >= 4) {
    std::uint32_t chunk = 0;
    __builtin_memcpy(&chunk, bytes, 4);
    crc ^= chunk;  // little-endian only; asserted by the build targets
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    bytes += 4;
    size -= 4;
  }
  while (size > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *bytes++) & 0xFFu];
    --size;
  }
#endif
  return ~crc;
}

std::uint32_t crc32c(std::string_view data) noexcept {
  return crc32c_extend(0, data.data(), data.size());
}

}  // namespace qcenv::store
