#include "store/recovery.hpp"

#include <algorithm>
#include <map>

#include "quantum/samples.hpp"

#define QCENV_LOG_COMPONENT "store.recovery"
#include "common/logging.hpp"

namespace qcenv::store {

using common::Json;
using common::Result;

namespace {

std::uint64_t uint_field(const Json& data, const std::string& key) {
  return static_cast<std::uint64_t>(int_or(data, key, 0));
}

/// Folds one batch's samples into the job's accumulated samples.
void merge_samples(JobRecord& job, const Json& batch_samples) {
  if (batch_samples.is_null()) return;
  if (job.samples.is_null()) {
    job.samples = batch_samples;
    return;
  }
  auto base = quantum::Samples::from_json(job.samples);
  auto delta = quantum::Samples::from_json(batch_samples);
  if (!base.ok() || !delta.ok()) {
    QCENV_LOG(Warn) << "job " << job.id
                    << ": undecodable samples in journal, batch dropped";
    return;
  }
  auto merged_metadata = delta.value().metadata();
  const auto merged = base.value().merge(delta.value());
  if (!merged.ok()) {
    QCENV_LOG(Warn) << "job " << job.id
                    << ": samples merge failed during replay: "
                    << merged.to_string();
    return;
  }
  base.value().set_metadata(std::move(merged_metadata));
  job.samples = base.value().to_json();
}

}  // namespace

Json ReplayStats::to_json() const {
  Json out = Json::object();
  out["snapshot_jobs"] = snapshot_jobs;
  out["snapshot_sessions"] = snapshot_sessions;
  out["journal_events"] = journal_events;
  out["applied_events"] = applied_events;
  out["skipped_events"] = skipped_events;
  out["unknown_events"] = unknown_events;
  out["recovered_jobs"] = recovered_jobs;
  out["recovered_sessions"] = recovered_sessions;
  out["requeued_jobs"] = requeued_jobs;
  out["evicted_jobs"] = evicted_jobs;
  out["replay_seconds"] = replay_seconds;
  return out;
}

Result<RecoveredState> RecoveryReplayer::replay(
    const std::string& journal_path, const std::string& snapshot_path,
    std::vector<JournalEntry>* parsed_entries,
    std::uint64_t* parsed_prefix_bytes, common::Clock* clock) {
  common::WallClock wall;
  if (clock == nullptr) clock = &wall;
  const common::TimeNs t0 = clock->now();
  auto snapshot = StoreSnapshot::load(snapshot_path);
  if (!snapshot.ok()) return snapshot.error();
  auto entries = JobJournal::read_file(journal_path, parsed_prefix_bytes);
  if (!entries.ok()) return entries.error();
  RecoveredState state =
      apply(std::move(snapshot).value(), entries.value());
  state.stats.replay_seconds = common::to_seconds(clock->now() - t0);
  if (parsed_entries != nullptr) {
    *parsed_entries = std::move(entries).value();
  }
  return state;
}

RecoveredState RecoveryReplayer::apply(
    std::optional<StoreSnapshot> snapshot,
    const std::vector<JournalEntry>& entries) {
  RecoveredState state;
  std::uint64_t jobs_seq = 0;
  std::uint64_t sessions_seq = 0;
  std::map<std::uint64_t, JobRecord> jobs;
  std::map<std::string, SessionRecord> sessions;  // keyed by token
  /// Content-addressed payload bodies (the journal dedupes repeats),
  /// keyed "<user>|<fingerprint>" to match the journal's per-user scope.
  std::map<std::string, Json> payload_bodies;
  const auto payload_key = [](const JobRecord& job) {
    return job.user + "|" + std::to_string(job.payload_hash);
  };

  if (snapshot.has_value()) {
    jobs_seq = snapshot->jobs_seq;
    sessions_seq = snapshot->sessions_seq;
    state.next_job_id = snapshot->next_job_id;
    state.last_seq = std::max(jobs_seq, sessions_seq);
    state.stats.snapshot_jobs = snapshot->jobs.size();
    state.stats.snapshot_sessions = snapshot->sessions.size();
    state.usage = std::move(snapshot->usage);
    for (auto& [key, body] : snapshot->payloads) {
      payload_bodies[key] = std::move(body);
    }
    for (auto& job : snapshot->jobs) {
      if (job.payload_hash != 0) {
        if (!job.payload.is_null()) {
          payload_bodies[payload_key(job)] = job.payload;
        } else {
          // Snapshot jobs reference the deduped payload table.
          const auto body = payload_bodies.find(payload_key(job));
          if (body != payload_bodies.end()) job.payload = body->second;
        }
      }
      jobs.emplace(job.id, std::move(job));
    }
    for (auto& session : snapshot->sessions) {
      sessions.emplace(session.token, std::move(session));
    }
  }

  state.stats.journal_events = entries.size();
  for (const auto& entry : entries) {
    state.last_seq = std::max(state.last_seq, entry.seq);
    const bool session_event = entry.type == "session_created" ||
                               entry.type == "session_closed";
    if (session_event ? entry.seq <= sessions_seq : entry.seq <= jobs_seq) {
      ++state.stats.skipped_events;
      continue;
    }

    if (entry.type == "session_created") {
      auto session = SessionRecord::from_json(entry.data.at_or_null("session"));
      if (session.ok()) {
        // Upsert by token: re-applying an event already reflected in the
        // snapshot must be harmless.
        sessions[session.value().token] = std::move(session).value();
        ++state.stats.applied_events;
      } else {
        ++state.stats.unknown_events;
      }
    } else if (entry.type == "session_closed") {
      sessions.erase(string_or(entry.data, "token"));
      ++state.stats.applied_events;
    } else if (entry.type == "job_submitted") {
      auto job = JobRecord::from_json(entry.data.at_or_null("job"));
      if (job.ok()) {
        const std::uint64_t id = job.value().id;
        state.next_job_id = std::max(state.next_job_id, id + 1);
        JobRecord& record = (jobs[id] = std::move(job).value());
        if (record.payload_hash != 0) {
          if (!record.payload.is_null()) {
            // First sighting of this program: remember its body for the
            // deduped repeats that follow.
            payload_bodies[payload_key(record)] = record.payload;
          } else {
            const auto body = payload_bodies.find(payload_key(record));
            if (body != payload_bodies.end()) {
              record.payload = body->second;
            } else {
              QCENV_LOG(Warn)
                  << "job " << id << ": payload hash "
                  << record.payload_hash
                  << " unresolved (defining event lost?)";
            }
          }
        }
        ++state.stats.applied_events;
      } else {
        QCENV_LOG(Warn) << "seq " << entry.seq << ": bad job_submitted ("
                        << job.error().message() << ")";
        ++state.stats.unknown_events;
      }
    } else {
      // Per-job lifecycle event.
      const auto it = jobs.find(uint_field(entry.data, "id"));
      if (it == jobs.end()) {
        QCENV_LOG(Warn) << "seq " << entry.seq << ": event '" << entry.type
                        << "' for unknown job "
                        << uint_field(entry.data, "id");
        ++state.stats.unknown_events;
        continue;
      }
      JobRecord& job = it->second;
      if (entry.type == "job_placed") {
        job.resource = string_or(entry.data, "resource");
      } else if (entry.type == "batch_dispatched") {
        job.phase = JobPhase::kRunning;
        if (job.first_dispatch_time == 0) {
          job.first_dispatch_time = entry.time;
        }
      } else if (entry.type == "batch_done") {
        job.shots_done += uint_field(entry.data, "shots");
        merge_samples(job, entry.data.at_or_null("samples"));
        // Executed work newer than the snapshot's usage records: the
        // accounting ledger re-charges it during restore.
        state.usage_deltas.push_back({job.user,
                                      uint_field(entry.data, "shots"),
                                      int_or(entry.data, "qpu_ns", 0), 0,
                                      entry.time});
      } else if (entry.type == "batch_failed") {
        // The shots were never executed: the job returns to the queue.
        job.phase = JobPhase::kQueued;
      } else if (entry.type == "cancel_requested") {
        // The terminal job_cancelled may never have been journaled; the
        // post-process below must not resurrect this job.
        job.cancel_requested = true;
      } else if (entry.type == "job_completed") {
        job.phase = JobPhase::kCompleted;
        job.finish_time = entry.time;
        state.usage_deltas.push_back({job.user, 0, 0, 1, entry.time});
      } else if (entry.type == "job_failed") {
        job.phase = JobPhase::kFailed;
        job.finish_time = entry.time;
        job.error = string_or(entry.data, "error");
      } else if (entry.type == "job_cancelled") {
        job.phase = JobPhase::kCancelled;
        job.finish_time = entry.time;
        job.error = string_or(entry.data, "error");
      } else if (entry.type == "job_evicted") {
        // The GC dropped this terminal job; its usage stays charged (the
        // deltas above already captured it) but the record is gone.
        jobs.erase(it);
        ++state.stats.evicted_jobs;
      } else {
        ++state.stats.unknown_events;
        continue;
      }
      ++state.stats.applied_events;
    }
  }

  // Post-process: in-flight work becomes queued work with exactly its
  // un-executed shots; fully-executed jobs that died between the last
  // batch_done and the job_completed append are completed (nothing left to
  // run, samples are whole).
  for (auto& [_, job] : jobs) {
    if (job.phase == JobPhase::kRunning) job.phase = JobPhase::kQueued;
    if (job.phase == JobPhase::kQueued) {
      if (job.cancel_requested) {
        // The cancel beat the crash; honour it instead of re-running.
        job.phase = JobPhase::kCancelled;
        job.finish_time = job.submit_time;
      } else if (job.total_shots > 0 && job.shots_done >= job.total_shots) {
        job.phase = JobPhase::kCompleted;
        job.finish_time = job.submit_time;
      } else {
        // Placement is an in-memory fleet decision; the restarted daemon
        // re-places on its own (possibly different) fleet. Pinned jobs
        // keep their target — the user chose it — and the dispatcher
        // re-binds (or unplaces, mirroring live failover) at restore.
        if (!job.pinned) job.resource.clear();
        ++state.stats.requeued_jobs;
      }
    }
  }

  state.stats.recovered_jobs = jobs.size();
  state.stats.recovered_sessions = sessions.size();
  state.jobs.reserve(jobs.size());
  for (auto& [_, job] : jobs) state.jobs.push_back(std::move(job));
  state.sessions.reserve(sessions.size());
  for (auto& [_, session] : sessions) {
    state.sessions.push_back(std::move(session));
  }
  return state;
}

}  // namespace qcenv::store
