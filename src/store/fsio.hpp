// Small durable-file-IO helpers shared by the journal and snapshot code.
#pragma once

#include <string>
#include <string_view>

#include "common/result.hpp"

namespace qcenv::store {

/// Fsyncs the directory containing `path`, making renames/creations of
/// entries inside it durable (POSIX gives no ordering otherwise).
common::Status fsync_parent_dir(const std::string& path);

/// Writes `contents` to `path` atomically: `<path>.tmp` + fsync + rename +
/// parent-dir fsync, so a crash leaves either the old file or the new one,
/// never a partial mix. Files are created 0600 — store files carry session
/// bearer tokens and user payloads.
common::Status write_file_atomic(const std::string& path,
                                 std::string_view contents);

}  // namespace qcenv::store
