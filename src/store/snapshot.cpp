#include "store/snapshot.hpp"

#include <fstream>
#include <sstream>

#include "store/fsio.hpp"

namespace qcenv::store {

using common::Json;
using common::Result;
using common::Status;

Json StoreSnapshot::to_json() const {
  Json out = Json::object();
  out["version"] = kVersion;
  out["jobs_seq"] = jobs_seq;
  out["sessions_seq"] = sessions_seq;
  out["next_job_id"] = next_job_id;
  out["created"] = created;
  Json session_array = Json::array();
  for (const auto& session : sessions) {
    session_array.push_back(session.to_json());
  }
  out["sessions"] = std::move(session_array);
  Json job_array = Json::array();
  for (const auto& job : jobs) job_array.push_back(job.to_json());
  out["jobs"] = std::move(job_array);
  if (!payloads.empty()) {
    Json table = Json::object();
    for (const auto& [key, body] : payloads) table[key] = body;
    out["payloads"] = std::move(table);
  }
  if (!usage.empty()) {
    Json usage_array = Json::array();
    for (const auto& record : usage) usage_array.push_back(record.to_json());
    out["usage"] = std::move(usage_array);
  }
  return out;
}

Result<StoreSnapshot> StoreSnapshot::from_json(const Json& json) {
  if (!json.is_object()) {
    return common::err::protocol("snapshot must be a JSON object");
  }
  auto version = json.get_string("version");
  if (!version.ok()) return version.error();
  if (version.value() != kVersion) {
    return common::err::protocol("unsupported snapshot version '" +
                                 version.value() + "' (expected " +
                                 kVersion + ")");
  }
  StoreSnapshot snapshot;
  auto jobs_seq = json.get_int("jobs_seq");
  if (!jobs_seq.ok()) return jobs_seq.error();
  snapshot.jobs_seq = static_cast<std::uint64_t>(jobs_seq.value());
  auto sessions_seq = json.get_int("sessions_seq");
  if (!sessions_seq.ok()) return sessions_seq.error();
  snapshot.sessions_seq = static_cast<std::uint64_t>(sessions_seq.value());
  auto next_job_id = json.get_int("next_job_id");
  if (!next_job_id.ok()) return next_job_id.error();
  snapshot.next_job_id = static_cast<std::uint64_t>(next_job_id.value());
  const Json& created = json.at_or_null("created");
  snapshot.created = created.is_number() ? created.as_int() : 0;
  const Json& sessions = json.at_or_null("sessions");
  if (sessions.is_array()) {
    for (const auto& item : sessions.as_array()) {
      auto session = SessionRecord::from_json(item);
      if (!session.ok()) return session.error();
      snapshot.sessions.push_back(std::move(session).value());
    }
  }
  const Json& jobs = json.at_or_null("jobs");
  if (jobs.is_array()) {
    for (const auto& item : jobs.as_array()) {
      auto job = JobRecord::from_json(item);
      if (!job.ok()) return job.error();
      snapshot.jobs.push_back(std::move(job).value());
    }
  }
  const Json& payloads = json.at_or_null("payloads");
  if (payloads.is_object()) {
    for (const auto& [key, body] : payloads.as_object()) {
      snapshot.payloads[key] = body;
    }
  }
  // Absent in pre-accounting snapshots: tolerate, usage starts empty.
  const Json& usage = json.at_or_null("usage");
  if (usage.is_array()) {
    for (const auto& item : usage.as_array()) {
      auto record = UsageRecord::from_json(item);
      if (!record.ok()) return record.error();
      snapshot.usage.push_back(std::move(record).value());
    }
  }
  return snapshot;
}

Status StoreSnapshot::write_atomic(const std::string& path) const {
  return write_file_atomic(path, to_json().dump());
}

Result<std::optional<StoreSnapshot>> StoreSnapshot::load(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return std::optional<StoreSnapshot>();
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = Json::parse(buffer.str());
  if (!parsed.ok()) {
    return common::err::protocol("corrupt snapshot '" + path +
                                 "': " + parsed.error().message());
  }
  auto snapshot = StoreSnapshot::from_json(parsed.value());
  if (!snapshot.ok()) return snapshot.error();
  return std::optional<StoreSnapshot>(std::move(snapshot).value());
}

}  // namespace qcenv::store
