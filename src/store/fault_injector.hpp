// FaultInjector: a process-wide interception point for the store's durable
// write paths, used by the deterministic simulation harness (src/simtest)
// and fault-injection tests to exercise fsync failures, torn journal tails
// and short writes without root, FUSE or a custom filesystem.
//
// Production behaviour is untouched: when no injector is installed (the
// default), every check compiles down to one relaxed atomic load of a null
// pointer. The journal and fsio consult the injector immediately before
// each write()/fsync() and honour its decision:
//   kPass        perform the operation normally,
//   kFail        do not touch the file; report EIO to the caller (the
//                journal fail-stops, exactly as on a real disk error),
//   kShortWrite  write only the first `bytes` bytes, then report EIO —
//                this is how a torn journal tail is manufactured: the
//                partial line stays on disk for replay to detect and drop.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace qcenv::store {

/// Which durable-write path is about to touch the disk.
enum class FsOp {
  kJournalWrite,   // JobJournal::write_block payload write
  kJournalFsync,   // JobJournal fsync (inline or group commit)
  kAtomicWrite,    // fsio::write_file_atomic contents write (snapshots,
                   // journal compaction rewrites)
  kAtomicFsync,    // fsio::write_file_atomic fsync before rename
};

const char* to_string(FsOp op) noexcept;

struct FaultDecision {
  enum class Kind { kPass, kFail, kShortWrite };
  Kind kind = Kind::kPass;
  /// For kShortWrite: how many leading bytes still reach the file.
  std::size_t bytes = 0;

  static FaultDecision pass() { return {}; }
  static FaultDecision fail() { return {Kind::kFail, 0}; }
  static FaultDecision short_write(std::size_t bytes) {
    return {Kind::kShortWrite, bytes};
  }
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  /// Consulted immediately before a write of `size` bytes.
  virtual FaultDecision on_write(FsOp op, const std::string& path,
                                 std::size_t size) = 0;
  /// Consulted immediately before an fsync; true = make the fsync fail.
  virtual bool on_fsync(FsOp op, const std::string& path) = 0;
};

/// Installs (or, with nullptr, removes) the process-wide injector. The
/// caller keeps ownership and must clear the injector before destroying
/// it. Scenarios install one injector at a time; installation itself is
/// thread-safe.
void set_fault_injector(FaultInjector* injector);
FaultInjector* fault_injector() noexcept;

/// RAII installation for tests: installs on construction, clears on
/// destruction (restoring none, not the previous — scenarios do not nest).
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector) {
    set_fault_injector(injector);
  }
  ~ScopedFaultInjector() { set_fault_injector(nullptr); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;
};

/// Ready-made injector for the common schedules: pass the first N journal
/// writes, then fail (or short-write) every one after — the "daemon died
/// at journal offset N" crash model — and optionally fail snapshot writes.
/// All knobs are safe to adjust between operations from one thread while
/// another performs writes.
class CountingFaultInjector final : public FaultInjector {
 public:
  /// Journal writes strictly after the first `n` fail. SIZE_MAX disables.
  void fail_journal_writes_after(std::uint64_t n) {
    std::scoped_lock lock(mutex_);
    fail_after_ = n;
    short_write_ = false;
  }
  /// Same, but the first failing write is torn mid-line: its first
  /// `keep_bytes` bytes reach the file.
  void tear_journal_write_after(std::uint64_t n, std::size_t keep_bytes) {
    std::scoped_lock lock(mutex_);
    fail_after_ = n;
    short_write_ = true;
    keep_bytes_ = keep_bytes;
  }
  void fail_journal_fsyncs(bool fail) {
    std::scoped_lock lock(mutex_);
    fail_fsyncs_ = fail;
  }
  void fail_snapshot_writes(bool fail) {
    std::scoped_lock lock(mutex_);
    fail_snapshots_ = fail;
  }
  /// Exactly ONE atomic rewrite fails: the `skip`-th one from now (0 =
  /// the very next write_file_atomic). Disarms after firing. This is the
  /// mid-migration crash model: a compaction that is re-encoding a v1
  /// journal into v2 dies on the rewrite, the rename never happens, and
  /// the next life must find the ORIGINAL file intact.
  void fail_one_atomic_write_after(std::uint64_t skip) {
    std::scoped_lock lock(mutex_);
    atomic_fail_at_ = atomic_writes_ + skip;
  }
  /// Back to a fault-free disk (counters keep running).
  void heal() {
    std::scoped_lock lock(mutex_);
    fail_after_ = kNever;
    short_write_ = false;
    fail_fsyncs_ = false;
    fail_snapshots_ = false;
    atomic_fail_at_ = kNever;
  }

  std::uint64_t journal_writes() const {
    std::scoped_lock lock(mutex_);
    return journal_writes_;
  }
  std::uint64_t atomic_writes() const {
    std::scoped_lock lock(mutex_);
    return atomic_writes_;
  }

  FaultDecision on_write(FsOp op, const std::string& path,
                         std::size_t size) override;
  bool on_fsync(FsOp op, const std::string& path) override;

 private:
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  mutable std::mutex mutex_;
  std::uint64_t journal_writes_ = 0;
  std::uint64_t fail_after_ = kNever;
  bool short_write_ = false;
  std::size_t keep_bytes_ = 0;
  bool fail_fsyncs_ = false;
  bool fail_snapshots_ = false;
  std::uint64_t atomic_writes_ = 0;
  std::uint64_t atomic_fail_at_ = kNever;
};

}  // namespace qcenv::store
