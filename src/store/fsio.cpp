#include "store/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "store/fault_injector.hpp"

namespace qcenv::store {

using common::Status;

namespace {

common::Error io_failure(const std::string& what, const std::string& path) {
  return common::err::io(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

Status fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return io_failure("cannot open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return io_failure("fsync failed on directory", dir);
  return Status::ok_status();
}

Status write_file_atomic(const std::string& path,
                         std::string_view contents) {
  const std::string tmp = path + ".tmp";
  if (FaultInjector* injector = fault_injector()) {
    const FaultDecision decision =
        injector->on_write(FsOp::kAtomicWrite, path, contents.size());
    if (decision.kind != FaultDecision::Kind::kPass) {
      // Atomic writes are all-or-nothing by construction: a failed or
      // short tmp-file write never replaces the destination, so both
      // injected kinds collapse to "the write failed, old file intact".
      errno = EIO;
      return io_failure("cannot write", tmp);
    }
    if (injector->on_fsync(FsOp::kAtomicFsync, path)) {
      errno = EIO;
      return io_failure("fsync failed on", tmp);
    }
  }
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0600);
  if (fd < 0) return io_failure("cannot create", tmp);
  const char* data = contents.data();
  std::size_t remaining = contents.size();
  while (remaining > 0) {
    const ssize_t wrote = ::write(fd, data, remaining);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      const auto error = io_failure("cannot write", tmp);
      ::close(fd);
      return error;
    }
    data += wrote;
    remaining -= static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd) != 0) {
    const auto error = io_failure("fsync failed on", tmp);
    ::close(fd);
    return error;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return io_failure("cannot swap into", path);
  }
  // Make the rename itself durable: without this, a crash can persist a
  // journal truncation but lose the snapshot rename that justified it.
  return fsync_parent_dir(path);
}

}  // namespace qcenv::store
