// RecoveryReplayer: rebuilds daemon state from snapshot + journal.
//
// Replay is deterministic and tolerant: it loads the most recent snapshot
// (if any), then applies every journal event above the snapshot's
// watermarks. Jobs that were mid-dispatch when the daemon died come back
// as queued with exactly their un-executed shots remaining (an in-flight
// batch whose batch_done was never journaled simply re-runs — the same
// return-shots rule the dispatcher applies on resource failover), finished
// jobs keep their accumulated samples so results are re-served without
// touching a QPU, and sessions resume with their tokens intact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"
#include "store/journal.hpp"
#include "store/records.hpp"
#include "store/snapshot.hpp"

namespace qcenv::store {

struct ReplayStats {
  std::uint64_t snapshot_jobs = 0;
  std::uint64_t snapshot_sessions = 0;
  std::uint64_t journal_events = 0;
  std::uint64_t applied_events = 0;
  /// Events at or below a snapshot watermark (already folded in).
  std::uint64_t skipped_events = 0;
  std::uint64_t unknown_events = 0;
  std::uint64_t recovered_jobs = 0;
  std::uint64_t recovered_sessions = 0;
  /// Non-terminal jobs put back in the queue with their remaining shots.
  std::uint64_t requeued_jobs = 0;
  /// Terminal jobs the GC had evicted (their records stay dropped).
  std::uint64_t evicted_jobs = 0;
  double replay_seconds = 0;

  common::Json to_json() const;
};

/// One executed batch (or completed job) the ledger must be re-charged
/// with: journal events newer than the snapshot's usage records.
struct UsageDelta {
  std::string user;
  std::uint64_t shots = 0;
  common::DurationNs qpu_ns = 0;
  std::uint64_t jobs = 0;
  common::TimeNs time = 0;
};

struct RecoveredState {
  std::vector<SessionRecord> sessions;
  std::vector<JobRecord> jobs;
  /// Snapshot-time decayed usage per user, plus the journal charges to
  /// replay on top (in journal order) — together they rebuild the
  /// accounting ledger exactly.
  std::vector<UsageRecord> usage;
  std::vector<UsageDelta> usage_deltas;
  std::uint64_t next_job_id = 1;
  /// Highest journal/snapshot sequence seen; new appends must start above.
  std::uint64_t last_seq = 0;
  ReplayStats stats;
};

class RecoveryReplayer {
 public:
  /// Loads `snapshot_path` (optional) and `journal_path` (optional) and
  /// replays. Both files absent yields an empty state, not an error.
  /// Non-null `parsed_entries` / `parsed_prefix_bytes` receive the
  /// decoded journal and its complete-line prefix length so the caller
  /// can hand both to JobJournal's preparsed open() — startup then reads
  /// and parses the journal exactly once. `clock` times the replay for
  /// ReplayStats — injected (never std::chrono directly) so virtual-time
  /// harnesses see zero wall-clock reads anywhere in the stack; nullptr
  /// falls back to a local WallClock.
  static common::Result<RecoveredState> replay(
      const std::string& journal_path, const std::string& snapshot_path,
      std::vector<JournalEntry>* parsed_entries = nullptr,
      std::uint64_t* parsed_prefix_bytes = nullptr,
      common::Clock* clock = nullptr);

  /// Pure replay over in-memory inputs (unit-testable core).
  static RecoveredState apply(std::optional<StoreSnapshot> snapshot,
                              const std::vector<JournalEntry>& entries);
};

}  // namespace qcenv::store
