#include "store/records.hpp"

namespace qcenv::store {

using common::Json;
using common::Result;

std::int64_t int_or(const Json& json, const std::string& key,
                    std::int64_t fallback) {
  const Json& value = json.at_or_null(key);
  return value.is_number() ? value.as_int() : fallback;
}

double double_or(const Json& json, const std::string& key, double fallback) {
  const Json& value = json.at_or_null(key);
  return value.is_number() ? value.as_double() : fallback;
}

std::string string_or(const Json& json, const std::string& key) {
  const Json& value = json.at_or_null(key);
  return value.is_string() ? value.as_string() : std::string();
}

namespace {

void fnv_mix(std::uint64_t& hash, std::uint64_t word) {
  for (std::size_t i = 0; i < sizeof(word); ++i) {
    hash ^= (word >> (8 * i)) & 0xff;
    hash *= 1099511628211ull;  // FNV prime
  }
}

}  // namespace

std::uint64_t payload_fingerprint(const quantum::Payload& payload) {
  // Covers the payload's FULL identity — kind, program body, shots, and
  // metadata — not just the program. Dedup keyed on this fingerprint
  // stores one payload body per key and recovery reproduces a job's
  // payload from that body verbatim, so two submissions differing only
  // in shots or metadata must never share a key.
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  hash ^= static_cast<unsigned char>(payload.kind());
  hash *= 1099511628211ull;  // FNV prime
  fnv_mix(hash, payload.body().hash());
  fnv_mix(hash, payload.shots());
  fnv_mix(hash, payload.metadata().hash());
  return hash;
}

const char* to_string(JobPhase phase) noexcept {
  switch (phase) {
    case JobPhase::kQueued: return "queued";
    case JobPhase::kRunning: return "running";
    case JobPhase::kCompleted: return "completed";
    case JobPhase::kFailed: return "failed";
    case JobPhase::kCancelled: return "cancelled";
  }
  return "?";
}

Result<JobPhase> phase_from_string(const std::string& text) {
  if (text == "queued") return JobPhase::kQueued;
  if (text == "running") return JobPhase::kRunning;
  if (text == "completed") return JobPhase::kCompleted;
  if (text == "failed") return JobPhase::kFailed;
  if (text == "cancelled") return JobPhase::kCancelled;
  return common::err::invalid_argument("unknown job phase: " + text);
}

Json JobRecord::to_json() const {
  Json out = Json::object();
  out["id"] = id;
  out["session"] = session;
  out["user"] = user;
  out["class"] = daemon::to_string(job_class);
  out["phase"] = to_string(phase);
  out["total_shots"] = total_shots;
  out["shots_done"] = shots_done;
  out["submit_time"] = submit_time;
  out["first_dispatch_time"] = first_dispatch_time;
  out["finish_time"] = finish_time;
  out["resource"] = resource;
  if (cancel_requested) out["cancel_requested"] = true;
  out["pinned"] = pinned;
  out["policy"] = policy;
  out["error"] = error;
  if (payload_hash != 0) {
    out["payload_hash"] = static_cast<long long>(payload_hash);
  }
  out["payload"] = payload;
  out["samples"] = samples;
  return out;
}

Result<JobRecord> JobRecord::from_json(const Json& json) {
  if (!json.is_object()) {
    return common::err::protocol("job record must be a JSON object");
  }
  JobRecord record;
  auto id = json.get_int("id");
  if (!id.ok()) return id.error();
  record.id = static_cast<std::uint64_t>(id.value());
  record.session = static_cast<std::uint64_t>(int_or(json, "session", 0));
  auto user = json.get_string("user");
  if (!user.ok()) return user.error();
  record.user = std::move(user).value();
  const std::string cls_name = string_or(json, "class");
  auto cls = daemon::job_class_from_string(
      cls_name.empty() ? "development" : cls_name);
  if (!cls.ok()) return cls.error();
  record.job_class = cls.value();
  const std::string phase_name = string_or(json, "phase");
  auto phase = phase_from_string(phase_name.empty() ? "queued" : phase_name);
  if (!phase.ok()) return phase.error();
  record.phase = phase.value();
  record.total_shots =
      static_cast<std::uint64_t>(int_or(json, "total_shots", 0));
  record.shots_done =
      static_cast<std::uint64_t>(int_or(json, "shots_done", 0));
  record.submit_time = int_or(json, "submit_time", 0);
  record.first_dispatch_time = int_or(json, "first_dispatch_time", 0);
  record.finish_time = int_or(json, "finish_time", 0);
  record.resource = string_or(json, "resource");
  if (json.at_or_null("cancel_requested").is_bool()) {
    record.cancel_requested = json.at_or_null("cancel_requested").as_bool();
  }
  if (json.at_or_null("pinned").is_bool()) {
    record.pinned = json.at_or_null("pinned").as_bool();
  }
  record.policy = string_or(json, "policy");
  record.error = string_or(json, "error");
  record.payload_hash =
      static_cast<std::uint64_t>(int_or(json, "payload_hash", 0));
  record.payload = json.at_or_null("payload");
  record.samples = json.at_or_null("samples");
  return record;
}

Json UsageRecord::to_json() const {
  Json out = Json::object();
  out["user"] = user;
  out["shots"] = shots;
  out["qpu_seconds"] = qpu_seconds;
  out["jobs"] = jobs;
  out["raw_shots"] = raw_shots;
  out["raw_jobs"] = raw_jobs;
  out["raw_qpu_ns"] = raw_qpu_ns;
  out["as_of"] = as_of;
  return out;
}

Result<UsageRecord> UsageRecord::from_json(const Json& json) {
  if (!json.is_object()) {
    return common::err::protocol("usage record must be a JSON object");
  }
  UsageRecord record;
  auto user = json.get_string("user");
  if (!user.ok()) return user.error();
  record.user = std::move(user).value();
  record.shots = double_or(json, "shots", 0);
  record.qpu_seconds = double_or(json, "qpu_seconds", 0);
  record.jobs = double_or(json, "jobs", 0);
  record.raw_shots = static_cast<std::uint64_t>(int_or(json, "raw_shots", 0));
  record.raw_jobs = static_cast<std::uint64_t>(int_or(json, "raw_jobs", 0));
  record.raw_qpu_ns = int_or(json, "raw_qpu_ns", 0);
  record.as_of = int_or(json, "as_of", 0);
  return record;
}

Json SessionRecord::to_json() const {
  Json out = Json::object();
  out["id"] = id;
  out["user"] = user;
  out["token"] = token;
  out["class"] = daemon::to_string(job_class);
  out["created"] = created;
  out["last_active"] = last_active;
  return out;
}

Result<SessionRecord> SessionRecord::from_json(const Json& json) {
  if (!json.is_object()) {
    return common::err::protocol("session record must be a JSON object");
  }
  SessionRecord record;
  auto id = json.get_int("id");
  if (!id.ok()) return id.error();
  record.id = static_cast<std::uint64_t>(id.value());
  auto user = json.get_string("user");
  if (!user.ok()) return user.error();
  record.user = std::move(user).value();
  auto token = json.get_string("token");
  if (!token.ok()) return token.error();
  record.token = std::move(token).value();
  const std::string cls_name = string_or(json, "class");
  auto cls = daemon::job_class_from_string(
      cls_name.empty() ? "development" : cls_name);
  if (!cls.ok()) return cls.error();
  record.job_class = cls.value();
  record.created = int_or(json, "created", 0);
  record.last_active = int_or(json, "last_active", 0);
  return record;
}

}  // namespace qcenv::store
