// Durable record types shared by the journal, snapshots and recovery.
//
// JobRecord and SessionRecord are the on-disk shape of the daemon's state:
// plain structs with exact JSON round-trips. They deliberately carry the
// payload and accumulated samples as opaque Json so the store never needs
// to understand program semantics — it persists exactly what the daemon
// would otherwise hold in RAM.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"
#include "daemon/queue_core.hpp"
#include "quantum/payload.hpp"

namespace qcenv::store {

/// Content address used for journal/snapshot payload dedup: structural
/// hash of the payload's FULL identity (kind, body, shots, metadata),
/// computed without serializing. Recovery reproduces a deduped job's
/// payload verbatim from the first sighting's body, so submissions that
/// differ in anything — even annotations — must never share a key.
std::uint64_t payload_fingerprint(const quantum::Payload& payload);

/// Tolerant field access for journal/snapshot decoding: older files may
/// lack newer optional fields, so absence (or a wrong type) yields the
/// fallback instead of an error.
std::int64_t int_or(const common::Json& json, const std::string& key,
                    std::int64_t fallback);
double double_or(const common::Json& json, const std::string& key,
                 double fallback);
std::string string_or(const common::Json& json, const std::string& key);

/// Durable job lifecycle phase. Mirrors daemon::DaemonJobState except that
/// "running" only ever appears transiently inside a journal: recovery folds
/// it back to queued (the un-executed shots of the in-flight batch were
/// never confirmed done, so they are requeued exactly).
enum class JobPhase { kQueued, kRunning, kCompleted, kFailed, kCancelled };

const char* to_string(JobPhase phase) noexcept;
common::Result<JobPhase> phase_from_string(const std::string& text);

/// Everything needed to reconstruct one daemon job after a restart.
struct JobRecord {
  std::uint64_t id = 0;
  std::uint64_t session = 0;
  std::string user;
  daemon::JobClass job_class = daemon::JobClass::kDevelopment;
  JobPhase phase = JobPhase::kQueued;
  std::uint64_t total_shots = 0;
  std::uint64_t shots_done = 0;
  common::TimeNs submit_time = 0;
  common::TimeNs first_dispatch_time = 0;
  common::TimeNs finish_time = 0;
  /// Fleet resource at the time of the event/snapshot. Recovery clears it:
  /// the restarted daemon re-places jobs on its (possibly different) fleet.
  std::string resource;
  /// A cancel landed while a batch was in flight; recovery must not
  /// resurrect the job even though no terminal event was journaled yet.
  bool cancel_requested = false;
  bool pinned = false;
  /// Placement policy override name ("" = broker default); stored as a
  /// string so the store does not depend on broker enums.
  std::string policy;
  std::string error;
  /// Content address of the payload (payload_fingerprint; 0 = unknown).
  /// The journal dedupes payload bodies by this hash: only the first
  /// submission of a payload embeds `payload`, repeats reference the hash.
  std::uint64_t payload_hash = 0;
  common::Json payload;  // quantum::Payload::to_json (null when deduped)
  common::Json samples;  // accumulated quantum::Samples::to_json (or null)

  common::Json to_json() const;
  static common::Result<JobRecord> from_json(const common::Json& json);
};

/// One user's decayed ledger usage at `as_of`: snapshots embed these so
/// fair-share accounting survives restarts without replaying all history
/// (journal batch_done/job_completed events newer than the snapshot
/// watermark re-charge the ledger on top during recovery).
struct UsageRecord {
  std::string user;
  /// Half-life-decayed figures, exact at `as_of`.
  double shots = 0;
  double qpu_seconds = 0;
  double jobs = 0;
  /// Lifetime raw totals (never decayed).
  std::uint64_t raw_shots = 0;
  std::uint64_t raw_jobs = 0;
  common::DurationNs raw_qpu_ns = 0;
  common::TimeNs as_of = 0;

  common::Json to_json() const;
  static common::Result<UsageRecord> from_json(const common::Json& json);
};

/// A user session with its authentication token, resumed verbatim.
struct SessionRecord {
  std::uint64_t id = 0;
  std::string user;
  std::string token;
  daemon::JobClass job_class = daemon::JobClass::kDevelopment;
  common::TimeNs created = 0;
  common::TimeNs last_active = 0;

  common::Json to_json() const;
  static common::Result<SessionRecord> from_json(const common::Json& json);
};

}  // namespace qcenv::store
