// StateStore: the daemon-facing durability facade.
//
// Owns the data directory (journal + snapshot), exposes typed append
// methods for every job/session lifecycle event, and runs a compaction
// thread that periodically folds the journal into a fresh snapshot so the
// journal's size stays bounded no matter how long the daemon runs.
//
// Layout of `data_dir`:
//   journal.log     append-only JSON-lines WAL (see journal.hpp)
//   snapshot.json   latest atomic full-state snapshot (see snapshot.hpp)
//
// Lock discipline: appenders call into the journal while holding their own
// subsystem lock (the dispatcher appends under its queue mutex so journal
// order matches state-mutation order). Compaction NEVER holds a store/
// journal lock while asking the daemon for a snapshot, so the provider may
// freely take subsystem locks — the reverse edge of the append path —
// without deadlocking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"
#include "quantum/payload.hpp"
#include "quantum/samples.hpp"
#include "store/journal.hpp"
#include "store/records.hpp"
#include "store/recovery.hpp"
#include "store/snapshot.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"

namespace qcenv::store {

struct StoreOptions {
  /// Directory holding journal + snapshot. Empty disables durability (the
  /// daemon behaves exactly as before this subsystem existed).
  std::string data_dir;
  JournalOptions journal;
  /// Compact (snapshot + journal truncation) after this many appended
  /// events; 0 = only on explicit compact() calls.
  std::uint64_t compact_every_events = 20000;
  /// Result eviction/GC for the terminal-job table: completed/failed/
  /// cancelled jobs older than this are dropped from the dispatcher's
  /// records (their results stop being servable) with a journal-visible
  /// `job_evicted` event. 0 = keep forever (the pre-GC behaviour). The
  /// dispatcher honours these fields even when no data_dir is set.
  common::DurationNs terminal_job_retention = 0;
  /// Hard cap on retained terminal jobs (LRU by finish time; 0 = no cap).
  std::size_t terminal_job_cap = 0;

  bool enabled() const noexcept { return !data_dir.empty(); }
};

/// Point-in-time store health for GET /admin/store.
struct StoreStatus {
  std::string data_dir;
  SyncMode sync = SyncMode::kGroupCommit;
  std::uint64_t journal_bytes = 0;
  std::uint64_t journal_events = 0;
  std::uint64_t journal_last_seq = 0;
  std::uint64_t appends_total = 0;
  std::uint64_t fsyncs_total = 0;
  /// Non-empty once the journal has fail-stopped on a write error.
  std::string journal_error;
  std::uint64_t compactions_total = 0;
  std::uint64_t events_since_compact = 0;
  std::uint64_t snapshot_jobs = 0;
  std::uint64_t snapshot_sessions = 0;
  common::TimeNs snapshot_created = 0;
  ReplayStats replay;

  common::Json to_json() const;
};

class StateStore {
 public:
  /// Builds a StoreSnapshot of live daemon state. Called by the compaction
  /// thread with no store locks held; implementations take the dispatcher/
  /// session locks and MUST read the journal watermark (last_seq) BEFORE
  /// listing state, so every event at or below the watermark is reflected.
  using SnapshotProvider = std::function<StoreSnapshot()>;

  StateStore(StoreOptions options, common::Clock* clock,
             telemetry::MetricsRegistry* metrics);
  ~StateStore();
  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// Replays any existing snapshot + journal, then opens the journal for
  /// appending (new sequence numbers continue above everything replayed)
  /// and starts the compaction thread.
  common::Result<RecoveredState> open();

  /// Routes journal incidents (fsync stalls, the fail-stop) into the
  /// daemon's structured-event log. Call before open(); the log must
  /// outlive this store.
  void set_event_log(telemetry::EventLog* events) { events_ = events; }

  /// Forwarded to the journal's fail-stop hook (flight-recorder dump on
  /// disk death). Safe to call before or after open().
  void set_fail_stop_hook(std::function<void(const std::string&)> hook);

  /// Forwarded to the journal writer's watchdog heartbeat. Safe to call
  /// before or after open().
  void set_writer_heartbeat(std::function<void()> heartbeat);

  void set_snapshot_provider(SnapshotProvider provider);

  // ---- journal events (names match the replayer's) -----------------------
  void session_created(const SessionRecord& session);
  void session_closed(const std::string& token);
  void job_submitted(const JobRecord& job);
  /// Hot-path variant: `meta` travels without its payload field; the
  /// (expensive) payload serialization runs on the journal's writer
  /// thread against the immutable shared payload. Returns the journal
  /// append seq (0 without a journal) so the caller can ask the journal
  /// whether THIS event became durable when it must unwind on failure.
  std::uint64_t job_submitted(JobRecord meta,
                              std::shared_ptr<const quantum::Payload> payload);
  void job_placed(std::uint64_t id, const std::string& resource);
  /// `at` (when >= 0) stamps the journal event with the exact time the
  /// caller's in-memory state recorded for the same transition (first
  /// dispatch, finish, ledger charge): replay consumes the event time, so
  /// a second clock read here would make the replayed state differ from
  /// the live one.
  void batch_dispatched(std::uint64_t id, const std::string& resource,
                        std::uint64_t shots, common::TimeNs at = -1);
  /// `qpu_ns` is the batch's measured QPU wall time; recovery re-charges
  /// it (with the shots) to the usage ledger.
  void batch_done(std::uint64_t id, std::uint64_t shots,
                  common::DurationNs qpu_ns, bool final_batch,
                  common::Json samples, common::TimeNs at = -1);
  /// Hot-path variant: copies the counts map now (cheap) and serializes
  /// it on the journal's writer thread, so dispatch lanes never build
  /// JSON under the dispatcher lock.
  void batch_done(std::uint64_t id, std::uint64_t shots,
                  common::DurationNs qpu_ns, bool final_batch,
                  quantum::Samples samples, common::TimeNs at = -1);
  void batch_failed(std::uint64_t id, const std::string& resource,
                    std::uint64_t shots, const std::string& error);
  void job_completed(std::uint64_t id, common::TimeNs at = -1);
  void job_failed(std::uint64_t id, const std::string& error,
                  common::TimeNs at = -1);
  /// `reason` is the human-readable cause the live record carries in its
  /// error field ("session closed", ...); replay restores it so a
  /// promoted standby serves the same explanation the dead leader did.
  void job_cancelled(std::uint64_t id, const std::string& reason = "",
                     common::TimeNs at = -1);
  /// Cancel landed while a batch was in flight (the terminal
  /// job_cancelled follows at the batch boundary — unless the daemon
  /// dies first, in which case replay honours this intent).
  void job_cancel_requested(std::uint64_t id);
  /// Terminal-job GC dropped this job's record (retention/cap policy);
  /// replay forgets the job the same way.
  void job_evicted(std::uint64_t id);

  /// Blocks until every appended event is durable on disk.
  common::Status flush();

  /// Snapshot + journal truncation. Requires a snapshot provider.
  common::Status compact();

  /// Stops the compaction thread and flushes. Called before the subsystems
  /// the snapshot provider reads from are torn down; idempotent.
  void shutdown();

  StoreStatus status() const;
  JobJournal& journal() noexcept { return *journal_; }
  const StoreOptions& options() const noexcept { return options_; }
  std::string journal_path() const;
  std::string snapshot_path() const;

 private:
  void append(const std::string& type, common::Json data,
              common::TimeNs at = -1);
  /// Compaction-window accounting shared by every append path.
  void note_append();
  void compactor_loop();

  StoreOptions options_;
  common::Clock* clock_;
  telemetry::MetricsRegistry* metrics_;
  telemetry::EventLog* events_ = nullptr;
  std::function<void(const std::string&)> fail_hook_;
  std::function<void()> writer_heartbeat_;
  std::unique_ptr<JobJournal> journal_;

  mutable std::mutex mutex_;
  /// Serializes whole compaction cycles: the auto-compactor thread and
  /// POST /admin/store/compact must never interleave snapshot writes and
  /// journal truncations.
  std::mutex compact_mutex_;
  std::condition_variable compact_cv_;
  SnapshotProvider provider_;
  /// Appends since the last compaction; atomic so the hot append path
  /// never takes the store mutex.
  std::atomic<std::uint64_t> events_since_compact_{0};
  std::uint64_t compactions_ = 0;
  std::uint64_t snapshot_jobs_ = 0;
  std::uint64_t snapshot_sessions_ = 0;
  common::TimeNs snapshot_created_ = 0;
  ReplayStats replay_;
  bool stop_ = false;
  std::thread compactor_;
};

}  // namespace qcenv::store
