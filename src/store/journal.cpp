#include "store/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "store/crc32c.hpp"
#include "store/fault_injector.hpp"
#include "store/fsio.hpp"

#define QCENV_LOG_COMPONENT "store.journal"
#include "common/logging.hpp"

namespace qcenv::store {

using common::Json;
using common::Result;
using common::Status;

namespace {

/// v2 segment header. The 8 bytes can never begin a v1 file (those start
/// with '{'), so format detection is one byte of lookahead.
constexpr char kMagicV2[8] = {'Q', 'C', 'W', 'A', 'L', '2', '\n', '\0'};
constexpr std::size_t kMagicLen = sizeof(kMagicV2);
/// v2 frame header: u32 payload length + u32 CRC32C of the payload.
constexpr std::size_t kFrameHeaderLen = 8;
/// Fixed payload prelude: u64 seq + u64 time + u32 type length.
constexpr std::size_t kFramePreludeLen = 20;

/// A group-commit cycle (write + fsync) slower than this is an operator
/// incident: either the disk is saturated or the device is dying. The
/// crash-loss window is supposed to be ~the commit interval (5 ms).
constexpr double kFsyncStallSeconds = 0.1;

void put_le32(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

void put_le64(std::string& out, std::uint64_t value) {
  put_le32(out, static_cast<std::uint32_t>(value & 0xFFFFFFFFu));
  put_le32(out, static_cast<std::uint32_t>(value >> 32));
}

std::uint32_t get_le32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_le64(const char* p) {
  return static_cast<std::uint64_t>(get_le32(p)) |
         (static_cast<std::uint64_t>(get_le32(p + 4)) << 32);
}

/// One v1 journal line. `type` is a controlled identifier and `data_dump`
/// is already-serialized JSON, so the line can be assembled without
/// another Json tree — this is the submit hot path.
std::string encode_line(std::uint64_t seq, common::TimeNs time,
                        const std::string& type,
                        const std::string& data_dump) {
  std::string line;
  line.reserve(48 + type.size() + data_dump.size());
  line += "{\"seq\":";
  line += std::to_string(seq);
  line += ",\"t\":";
  line += std::to_string(time);
  line += ",\"e\":\"";
  line += type;
  line += "\",\"d\":";
  line += data_dump;
  line += "}\n";
  return line;
}

/// One v2 frame, appended to `out`. Cheaper than encode_line on the hot
/// path: the metadata fields are fixed-width stores instead of decimal
/// formatting, and replay gets them back without a JSON parse.
void encode_frame(std::string& out, std::uint64_t seq, common::TimeNs time,
                  const std::string& type, const std::string& data_dump) {
  const std::size_t payload_len =
      kFramePreludeLen + type.size() + data_dump.size();
  out.reserve(out.size() + kFrameHeaderLen + payload_len);
  put_le32(out, static_cast<std::uint32_t>(payload_len));
  const std::size_t crc_at = out.size();
  put_le32(out, 0);  // CRC patched below, once the payload is in place
  const std::size_t payload_at = out.size();
  put_le64(out, seq);
  put_le64(out, static_cast<std::uint64_t>(time));
  put_le32(out, static_cast<std::uint32_t>(type.size()));
  out += type;
  out += data_dump;
  const std::uint32_t crc = crc32c(
      std::string_view(out.data() + payload_at, out.size() - payload_at));
  out[crc_at + 0] = static_cast<char>(crc & 0xFF);
  out[crc_at + 1] = static_cast<char>((crc >> 8) & 0xFF);
  out[crc_at + 2] = static_cast<char>((crc >> 16) & 0xFF);
  out[crc_at + 3] = static_cast<char>((crc >> 24) & 0xFF);
}

/// Format-dispatching event encoder (append path).
void encode_event(JournalFormat format, std::string& out, std::uint64_t seq,
                  common::TimeNs time, const std::string& type,
                  const std::string& data_dump) {
  if (format == JournalFormat::kJsonV1) {
    out += encode_line(seq, time, type, data_dump);
  } else {
    encode_frame(out, seq, time, type, data_dump);
  }
}

// --- Binary job_submitted frame body -------------------------------------
//
// The hottest event by far is job_submitted, and profiling shows its cost
// is not the frame encoding but building a Json tree of the JobRecord and
// dumping it to text — a couple of microseconds per event on the writer
// thread, which bounds sustained durable throughput. Inside a v2 frame the
// body is an opaque byte string, so the writer stores the record as a flat
// binary struct instead and replay decodes it back into the exact Json the
// JSON body would have carried. JSON bodies always start with '{' (0x7B),
// so the marker byte below discriminates with one byte of lookahead; both
// body encodings stay valid in any v2 segment (a segment migrated from v1
// mid-batch simply carries a mix).

/// First byte of a binary job_submitted body.
constexpr char kSubmitMetaMarker = '\x01';
/// Second byte: codec version, bumped if the field layout ever changes.
constexpr std::uint8_t kSubmitMetaVersion = 1;

constexpr std::uint8_t kMetaCancelRequested = 1u << 0;
constexpr std::uint8_t kMetaPinned = 1u << 1;
constexpr std::uint8_t kMetaHasPayload = 1u << 2;
constexpr std::uint8_t kMetaHasSamples = 1u << 3;

void put_str(std::string& out, const std::string& value) {
  put_le32(out, static_cast<std::uint32_t>(value.size()));
  out += value;
}

/// Binary body layout (all little-endian):
///   marker, version, class u8, phase u8, flags u8,
///   id u64, session u64, total_shots u64, shots_done u64,
///   submit_time u64, first_dispatch_time u64, finish_time u64,
///   payload_hash u64,
///   user / resource / policy / error as [u32 len][bytes],
///   then, gated by flags: payload JSON dump, samples JSON dump.
/// The embedded payload/samples stay JSON text: they are opaque to the
/// store (see records.hpp) and appear on first sighting only, so their
/// serialization cost is per unique program, not per submission.
void encode_submit_meta(std::string& out, const JobRecord& meta,
                        std::uint64_t payload_hash,
                        const std::string& payload_dump,
                        const std::string& samples_dump) {
  out.reserve(out.size() + 96 + meta.user.size() + meta.resource.size() +
              meta.policy.size() + meta.error.size() + payload_dump.size() +
              samples_dump.size());
  out.push_back(kSubmitMetaMarker);
  out.push_back(static_cast<char>(kSubmitMetaVersion));
  out.push_back(static_cast<char>(meta.job_class));
  out.push_back(static_cast<char>(meta.phase));
  std::uint8_t flags = 0;
  if (meta.cancel_requested) flags |= kMetaCancelRequested;
  if (meta.pinned) flags |= kMetaPinned;
  if (!payload_dump.empty()) flags |= kMetaHasPayload;
  if (!samples_dump.empty()) flags |= kMetaHasSamples;
  out.push_back(static_cast<char>(flags));
  put_le64(out, meta.id);
  put_le64(out, meta.session);
  put_le64(out, meta.total_shots);
  put_le64(out, meta.shots_done);
  put_le64(out, static_cast<std::uint64_t>(meta.submit_time));
  put_le64(out, static_cast<std::uint64_t>(meta.first_dispatch_time));
  put_le64(out, static_cast<std::uint64_t>(meta.finish_time));
  put_le64(out, payload_hash);
  put_str(out, meta.user);
  put_str(out, meta.resource);
  put_str(out, meta.policy);
  put_str(out, meta.error);
  if (!payload_dump.empty()) put_str(out, payload_dump);
  if (!samples_dump.empty()) put_str(out, samples_dump);
}

/// Decodes a binary job_submitted body back into the `{"job":{...}}` Json
/// the JSON-bodied path would have produced, so recovery replay is
/// byte-for-byte indifferent to which encoding the writer used. Any
/// truncation, bad enum value or trailing garbage is a protocol error —
/// the frame CRC already passed, so a malformed body is corruption (or a
/// future codec version), not a torn tail.
Result<Json> decode_submit_meta(std::string_view body) {
  std::size_t pos = 1;  // caller matched the marker byte
  const auto bad = [](const char* what) -> common::Error {
    return common::err::protocol(
        std::string("binary job_submitted body: ") + what);
  };
  const auto need = [&](std::size_t n) { return body.size() - pos >= n; };
  if (!need(4 + 8 * 8)) return bad("truncated fixed fields");
  const auto version = static_cast<std::uint8_t>(body[pos++]);
  if (version != kSubmitMetaVersion) return bad("unknown codec version");
  const auto cls = static_cast<std::uint8_t>(body[pos++]);
  const auto phase = static_cast<std::uint8_t>(body[pos++]);
  const auto flags = static_cast<std::uint8_t>(body[pos++]);
  if (cls > static_cast<std::uint8_t>(daemon::JobClass::kDevelopment)) {
    return bad("job class out of range");
  }
  if (phase > static_cast<std::uint8_t>(JobPhase::kCancelled)) {
    return bad("phase out of range");
  }
  JobRecord record;
  record.job_class = static_cast<daemon::JobClass>(cls);
  record.phase = static_cast<JobPhase>(phase);
  record.cancel_requested = (flags & kMetaCancelRequested) != 0;
  record.pinned = (flags & kMetaPinned) != 0;
  const auto u64 = [&] {
    const std::uint64_t value = get_le64(body.data() + pos);
    pos += 8;
    return value;
  };
  record.id = u64();
  record.session = u64();
  record.total_shots = u64();
  record.shots_done = u64();
  record.submit_time = static_cast<common::TimeNs>(u64());
  record.first_dispatch_time = static_cast<common::TimeNs>(u64());
  record.finish_time = static_cast<common::TimeNs>(u64());
  record.payload_hash = u64();
  const auto str = [&](std::string& into) {
    if (!need(4)) return false;
    const std::uint32_t len = get_le32(body.data() + pos);
    pos += 4;
    if (!need(len)) return false;
    into.assign(body.data() + pos, len);
    pos += len;
    return true;
  };
  if (!str(record.user) || !str(record.resource) || !str(record.policy) ||
      !str(record.error)) {
    return bad("truncated string field");
  }
  std::string dump;
  if ((flags & kMetaHasPayload) != 0) {
    if (!str(dump)) return bad("truncated payload body");
    auto parsed = Json::parse(dump);
    if (!parsed.ok()) return bad("embedded payload is not valid JSON");
    record.payload = std::move(parsed).value();
  }
  if ((flags & kMetaHasSamples) != 0) {
    if (!str(dump)) return bad("truncated samples body");
    auto parsed = Json::parse(dump);
    if (!parsed.ok()) return bad("embedded samples are not valid JSON");
    record.samples = std::move(parsed).value();
  }
  if (pos != body.size()) return bad("trailing bytes after the record");
  Json data = Json::object();
  data["job"] = record.to_json();
  return data;
}

common::Error make_io_error(const std::string& what, const std::string& path) {
  return common::err::io(what + " '" + path + "': " + std::strerror(errno));
}

/// Reads `[offset, offset + max_bytes)` of `path` (short read at EOF).
std::string read_range(const std::string& path, std::uint64_t offset,
                       std::uint64_t max_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open() || max_bytes == 0) return {};
  in.seekg(static_cast<std::streamoff>(offset));
  std::string out(max_bytes, '\0');
  in.read(out.data(), static_cast<std::streamsize>(max_bytes));
  out.resize(static_cast<std::size_t>(std::max<std::streamsize>(
      in.gcount(), 0)));
  return out;
}

/// Plain full write with EINTR retry — used for the one-time v2 segment
/// header, which deliberately bypasses the fault injector so injected
/// journal-write faults keep hitting event N, not event N-1.
Status write_fully(int fd, const char* data, std::size_t size,
                   const std::string& path) {
  while (size > 0) {
    const ssize_t wrote = ::write(fd, data, size);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return make_io_error("cannot write journal header to", path);
    }
    data += wrote;
    size -= static_cast<std::size_t>(wrote);
  }
  return Status::ok_status();
}

}  // namespace

std::string_view wal_v2_magic() noexcept {
  return std::string_view(kMagicV2, kMagicLen);
}

const char* to_string(SyncMode mode) noexcept {
  switch (mode) {
    case SyncMode::kNone: return "none";
    case SyncMode::kAlways: return "always";
    case SyncMode::kGroupCommit: return "group_commit";
  }
  return "?";
}

const char* to_string(JournalFormat format) noexcept {
  switch (format) {
    case JournalFormat::kJsonV1: return "v1-json";
    case JournalFormat::kBinaryV2: return "v2-binary";
  }
  return "?";
}

JobJournal::JobJournal(JournalOptions options, common::Clock* clock,
                       telemetry::MetricsRegistry* metrics)
    : options_(options), clock_(clock), metrics_(metrics) {}

JobJournal::~JobJournal() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
    flush_requested_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status JobJournal::open(const std::string& path) {
  // Scan any existing tail first so sequence numbers keep increasing
  // across restarts (snapshot watermarks compare against them).
  std::uint64_t prefix_bytes = 0;
  auto existing = read_file(path, &prefix_bytes);
  if (!existing.ok()) return existing.error();
  return open(path, existing.value(), prefix_bytes);
}

Status JobJournal::open(const std::string& path,
                        const std::vector<JournalEntry>& preparsed,
                        std::uint64_t complete_prefix_bytes) {
  if (fd_ >= 0) {
    return common::err::failed_precondition("journal already open");
  }
  // 0600: the journal carries session bearer tokens and user payloads.
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC,
               0600);
  if (fd_ < 0) return make_io_error("cannot open journal", path);
  // Make the file's directory entry itself durable before acknowledging
  // any append as such.
  QCENV_RETURN_IF_ERROR(fsync_parent_dir(path));
  path_ = path;
  if (metrics_ != nullptr) {
    appends_counter_ =
        &metrics_->counter("store_journal_appends_total", {},
                           "events appended to the job journal");
    fsyncs_counter_ =
        &metrics_->counter("store_fsyncs_total", {},
                           "group-commit fsyncs issued by the journal");
    failed_gauge_ = &metrics_->gauge(
        "store_journal_failed", {},
        "1 once the journal has fail-stopped on a write/fsync error "
        "(new events are no longer durable)");
    batch_events_hist_ = &metrics_->histogram(
        "store_group_commit_batch_events",
        {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, {},
        "events folded into one group-commit write");
    commit_seconds_hist_ = &metrics_->histogram(
        "store_group_commit_seconds",
        {1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1, 5}, {},
        "wall seconds per group-commit write+fsync cycle");
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  file_bytes_ = size > 0 ? static_cast<std::uint64_t>(size) : 0;
  // Cut any torn tail fragment off NOW: appending after it would splice
  // the first new event onto garbage and poison the file for replay.
  const std::uint64_t valid_bytes = complete_prefix_bytes;
  if (valid_bytes < file_bytes_) {
    if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0) {
      return make_io_error("cannot truncate torn journal tail of", path);
    }
    QCENV_LOG(Warn) << "truncated torn tail: " << (file_bytes_ - valid_bytes)
                    << " byte(s) after the last complete line of '" << path
                    << "'";
    file_bytes_ = valid_bytes;
  }
  if (file_bytes_ == 0) {
    // New (or fully torn) file: it gets the configured format, and a v2
    // segment starts with its magic so the very first crash-restart can
    // tell "empty v2 journal" from "unrecognized garbage".
    active_format_ = options_.format;
    if (active_format_ == JournalFormat::kBinaryV2) {
      QCENV_RETURN_IF_ERROR(write_fully(fd_, kMagicV2, kMagicLen, path));
      if (::fsync(fd_) != 0) {
        return make_io_error("cannot fsync journal header of", path);
      }
      file_bytes_ = kMagicLen;
    }
  } else {
    // Non-empty: the file's own bytes decide (v1 lines start with '{',
    // v2 with the magic — read_file already rejected anything else).
    const std::string head = read_range(path, 0, 1);
    active_format_ = (!head.empty() && head[0] == '{')
                         ? JournalFormat::kJsonV1
                         : JournalFormat::kBinaryV2;
    if (active_format_ != options_.format) {
      QCENV_LOG(Info) << "journal '" << path << "' is "
                      << to_string(active_format_)
                      << "; appends keep that format until the next "
                         "compaction rewrites it as "
                      << to_string(options_.format);
    }
  }
  file_events_ = preparsed.size();
  if (!preparsed.empty()) {
    const std::uint64_t tail = preparsed.back().seq;
    next_seq_ = tail + 1;
    written_seq_ = durable_seq_ = last_append_seq_ = tail;
  }
  if (options_.sync != SyncMode::kAlways) {
    writer_ = std::thread([this] { writer_loop(); });
  }
  return Status::ok_status();
}

std::uint64_t JobJournal::append(const std::string& type, Json data,
                                 common::TimeNs at) {
  PendingEvent event;
  event.data = std::move(data);
  return enqueue(type, std::move(event), at);
}

std::uint64_t JobJournal::append_deferred(
    const std::string& type, std::function<Json()> build, common::TimeNs at) {
  PendingEvent event;
  event.build = std::move(build);
  return enqueue(type, std::move(event), at);
}

std::uint64_t JobJournal::append_job_submitted(
    JobRecord meta, std::shared_ptr<const quantum::Payload> payload) {
  PendingEvent event;
  event.submit_meta = std::move(meta);
  event.submit_payload = std::move(payload);
  return enqueue("job_submitted", std::move(event));
}

std::string JobJournal::serialize_pending(const PendingEvent& event,
                                          bool binary_meta) {
  if (event.submit_meta.has_value()) {
    const JobRecord& meta = *event.submit_meta;
    std::uint64_t hash = meta.payload_hash;
    bool first_sighting = false;
    if (event.submit_payload != nullptr) {
      // Content-addressed dedup: only the first submission of a program
      // in this journal segment embeds its (large) body; repeats — the
      // common shape for parameter sweeps and multi-user production
      // programs — reference the fingerprint instead. Repeats from the
      // same shared Payload object skip even the fingerprint hash.
      if (event.submit_payload == fp_memo_payload_) {
        hash = fp_memo_hash_;
      } else {
        hash = payload_fingerprint(*event.submit_payload);
        fp_memo_payload_ = event.submit_payload;
        fp_memo_hash_ = hash;
      }
      // Dedup is scoped per user (see embedded_payloads_).
      std::string key = meta.user;
      key += '|';
      key += std::to_string(hash);
      std::scoped_lock lock(payload_mutex_);
      first_sighting = embedded_payloads_.insert(std::move(key)).second;
    }
    if (binary_meta) {
      // v2 segment: flat binary body, no Json tree, no text dump of the
      // metadata. This is where the binary WAL earns its keep — decode
      // happens once at recovery, not once per submission.
      std::string payload_dump;
      if (first_sighting) {
        payload_dump = event.submit_payload->to_json().dump();
      } else if (!meta.payload.is_null()) {
        payload_dump = meta.payload.dump();
      }
      std::string samples_dump;
      if (!meta.samples.is_null()) samples_dump = meta.samples.dump();
      std::string out;
      encode_submit_meta(out, meta, hash, payload_dump, samples_dump);
      return out;
    }
    Json job = meta.to_json();
    if (event.submit_payload != nullptr) {
      job["payload_hash"] = static_cast<long long>(hash);
      if (first_sighting) job["payload"] = event.submit_payload->to_json();
    }
    Json data = Json::object();
    data["job"] = std::move(job);
    return data.dump();
  }
  if (event.build) return event.build().dump();
  return event.data.dump();
}

std::uint64_t JobJournal::enqueue(const std::string& type,
                                  PendingEvent event, common::TimeNs at) {
  const common::TimeNs now = at >= 0 ? at : clock_->now();
  std::uint64_t seq = 0;
  {
    std::unique_lock lock(mutex_);
    seq = next_seq_++;
    last_append_seq_ = seq;
    ++appends_;
    event.seq = seq;
    event.time = now;
    event.type = type;
    if (io_error_.has_value()) {
      // Fail-stop: writing past the first failure would interleave new
      // lines with a torn fragment and poison the whole file for replay.
      return seq;
    }
    if (options_.sync == SyncMode::kAlways) {
      // mutex_ is held, and drop_through flips active_format_ only while
      // holding mutex_, so the encoding here always matches the file.
      const bool binary_meta =
          active_format_ == JournalFormat::kBinaryV2 &&
          options_.format == JournalFormat::kBinaryV2;
      std::string line;
      encode_event(active_format_, line, seq, now, type,
                   serialize_pending(event, binary_meta));
      Status wrote = Status::ok_status();
      {
        std::scoped_lock io(io_mutex_);
        wrote = write_block(line, /*sync=*/true);
      }
      if (!wrote.ok()) {
        QCENV_LOG(Error) << "journal write failed: " << wrote.to_string();
        fail_locked(wrote.error());
        durable_cv_.notify_all();
        return seq;
      }
      file_bytes_ += line.size();
      ++file_events_;
      ++fsyncs_;
      written_seq_ = durable_seq_ = seq;
      if (fsyncs_counter_ != nullptr) fsyncs_counter_->increment();
    } else {
      pending_.push_back(std::move(event));
      if (pending_.size() >= options_.group_commit_max_batch) {
        work_cv_.notify_one();
      }
    }
  }
  if (appends_counter_ != nullptr) appends_counter_->increment();
  return seq;
}

Status JobJournal::flush() {
  if (fd_ < 0) return common::err::failed_precondition("journal not open");
  std::unique_lock lock(mutex_);
  if (io_error_.has_value()) return *io_error_;
  // Target what was appended, not the raw counter: reserve_through() may
  // have advanced next_seq_ past anything that will ever hit the disk.
  const std::uint64_t target = last_append_seq_;
  if (durable_seq_ >= target) return Status::ok_status();
  if (options_.sync == SyncMode::kAlways) return Status::ok_status();
  flush_requested_ = true;
  work_cv_.notify_all();
  durable_cv_.wait(lock, [&] {
    return durable_seq_ >= target || io_error_.has_value() || stop_;
  });
  if (io_error_.has_value()) return *io_error_;
  return Status::ok_status();
}

std::optional<common::Error> JobJournal::io_error() const {
  std::scoped_lock lock(mutex_);
  return io_error_;
}

bool JobJournal::is_durable(std::uint64_t seq) const {
  std::scoped_lock lock(mutex_);
  return durable_seq_ >= seq;
}

void JobJournal::fail_locked(common::Error error) {
  if (io_error_.has_value()) return;
  io_error_ = std::move(error);
  failed_.store(true, std::memory_order_release);
  if (failed_gauge_ != nullptr) failed_gauge_->set(1);
  if (events_ != nullptr) {
    events_->log(clock_->now(), telemetry::Severity::kError,
                 "journal_fail_stop", io_error_->to_string());
  }
  // After the event is logged, so a flight-recorder dump triggered here
  // captures the journal_fail_stop event itself.
  if (fail_hook_) fail_hook_(io_error_->to_string());
}

void JobJournal::reserve_through(std::uint64_t seq) {
  std::scoped_lock lock(mutex_);
  if (next_seq_ <= seq) next_seq_ = seq + 1;
}

std::uint64_t JobJournal::last_seq() const {
  std::scoped_lock lock(mutex_);
  return next_seq_ - 1;
}

std::uint64_t JobJournal::event_count() const {
  std::scoped_lock lock(mutex_);
  return file_events_ + pending_.size();
}

std::uint64_t JobJournal::appends_total() const {
  std::scoped_lock lock(mutex_);
  return appends_;
}

std::uint64_t JobJournal::fsyncs_total() const {
  std::scoped_lock lock(mutex_);
  return fsyncs_;
}

std::uint64_t JobJournal::size_bytes() const {
  std::scoped_lock lock(mutex_);
  // Pending events are not serialized yet; estimate their footprint.
  return file_bytes_ + pending_.size() * 128;
}

Status JobJournal::write_block(const std::string& block, bool sync) {
  const char* data = block.data();
  std::size_t remaining = block.size();
  // Where this block starts: if the fsync below fails, the bytes were
  // written but their durability is unknown — a restart would replay a
  // line the caller is about to be told failed. Compensate by truncating
  // back to this offset (best effort: on a truly dead disk the truncate
  // fails too and the ambiguity is inherent).
  const off_t block_start = ::lseek(fd_, 0, SEEK_END);
  if (FaultInjector* injector = fault_injector()) {
    const FaultDecision decision =
        injector->on_write(FsOp::kJournalWrite, path_, block.size());
    switch (decision.kind) {
      case FaultDecision::Kind::kPass:
        break;
      case FaultDecision::Kind::kFail:
        errno = EIO;
        return make_io_error("cannot append to journal", path_);
      case FaultDecision::Kind::kShortWrite:
        // The torn-tail crash model: part of the block reaches the disk,
        // then the device dies. Whatever lands must really land so replay
        // sees exactly what a crashed daemon would have left behind.
        remaining = decision.bytes;
        break;
    }
    if (decision.kind == FaultDecision::Kind::kShortWrite) {
      while (remaining > 0) {
        const ssize_t wrote = ::write(fd_, data, remaining);
        if (wrote < 0) {
          if (errno == EINTR) continue;
          break;
        }
        data += wrote;
        remaining -= static_cast<std::size_t>(wrote);
      }
      errno = EIO;
      return make_io_error("cannot append to journal", path_);
    }
  }
  while (remaining > 0) {
    const ssize_t wrote = ::write(fd_, data, remaining);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return make_io_error("cannot append to journal", path_);
    }
    data += wrote;
    remaining -= static_cast<std::size_t>(wrote);
  }
  if (sync) {
    FaultInjector* injector = fault_injector();
    const bool injected_failure =
        injector != nullptr && injector->on_fsync(FsOp::kJournalFsync, path_);
    if (injected_failure || ::fsync(fd_) != 0) {
      if (injected_failure) errno = EIO;
      const auto error = make_io_error("fsync failed on journal", path_);
      // The block is fully written but not durable: shear it back off so
      // the file cannot resurrect events whose append was reported
      // failed. (Failed/short write()s are left as-is — that is the
      // disk-died-mid-write crash model, and replay drops the torn tail.)
      if (block_start >= 0) (void)::ftruncate(fd_, block_start);
      return error;
    }
  }
  return Status::ok_status();
}

void JobJournal::writer_loop() {
  const auto interval =
      std::chrono::nanoseconds(options_.group_commit_interval);
  std::unique_lock lock(mutex_);
  while (true) {
    work_cv_.wait_for(lock, interval, [&] {
      return stop_ || flush_requested_ ||
             pending_.size() >= options_.group_commit_max_batch;
    });
    if (heartbeat_) heartbeat_();
    if (pending_.empty()) {
      if (flush_requested_) {
        // Everything is written; make it durable.
        const std::uint64_t target = written_seq_;
        flush_requested_ = false;
        lock.unlock();
        bool synced = false;
        {
          std::scoped_lock io(io_mutex_);
          FaultInjector* injector = fault_injector();
          const bool injected_failure =
              injector != nullptr &&
              injector->on_fsync(FsOp::kJournalFsync, path_);
          if (injected_failure) errno = EIO;
          synced = !injected_failure && fd_ >= 0 && ::fsync(fd_) == 0;
        }
        lock.lock();
        if (synced) {
          ++fsyncs_;
          if (fsyncs_counter_ != nullptr) fsyncs_counter_->increment();
          if (durable_seq_ < target) durable_seq_ = target;
        } else {
          fail_locked(make_io_error("fsync failed on journal", path_));
          QCENV_LOG(Error) << "journal failed: " << io_error_->to_string();
        }
        durable_cv_.notify_all();
      }
      if (stop_) return;
      continue;
    }
    if (io_error_.has_value()) {
      // Fail-stop: drop the batch rather than splice lines after a torn
      // fragment; waiters are told via flush().
      pending_.clear();
      durable_cv_.notify_all();
      if (stop_) return;
      continue;
    }

    // Drain the whole pending batch into one write (and one fsync).
    // Serialization happens here, off every appender's hot path.
    const std::uint64_t target = last_append_seq_;
    const std::uint64_t epoch = rewrite_epoch_;
    // Sampled under mutex_ (drop_through flips active_format_ under it).
    // Stable across the unlock below: a migration only ever moves
    // active_format_ TOWARD options_.format, so "both are v2" cannot
    // become false, and if it is false here the worst case is a JSON body
    // landing in a freshly migrated v2 segment — which is a valid v2 body.
    const bool binary_meta = active_format_ == JournalFormat::kBinaryV2 &&
                             options_.format == JournalFormat::kBinaryV2;
    std::deque<PendingEvent> batch;
    batch.swap(pending_);
    const std::uint64_t batch_events = batch.size();
    const bool want_sync =
        options_.sync == SyncMode::kGroupCommit || flush_requested_;
    flush_requested_ = false;
    lock.unlock();
    // Serialize (the expensive part: payload bodies, JSON dumps) without
    // holding any lock; assemble the on-disk block under io_mutex_, where
    // active_format_ is stable — a concurrent drop_through migration
    // flips it under io_mutex_, and a v1-encoded block must never land in
    // a freshly rewritten v2 file.
    struct SerializedEvent {
      std::uint64_t seq;
      common::TimeNs time;
      std::string type;
      std::string dump;
    };
    std::vector<SerializedEvent> items;
    items.reserve(batch.size());
    for (auto& event : batch) {
      items.push_back({event.seq, event.time, std::move(event.type),
                       serialize_pending(event, binary_meta)});
    }
    batch.clear();
    std::string block;
    Status wrote = Status::ok_status();
    const auto io_start = std::chrono::steady_clock::now();
    {
      std::scoped_lock io(io_mutex_);
      block.reserve(items.size() * 128);
      for (const auto& item : items) {
        encode_event(active_format_, block, item.seq, item.time, item.type,
                     item.dump);
      }
      wrote = write_block(block, want_sync);
    }
    const double io_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      io_start)
            .count();
    if (batch_events_hist_ != nullptr) {
      batch_events_hist_->observe(static_cast<double>(batch_events));
      commit_seconds_hist_->observe(io_seconds);
    }
    if (events_ != nullptr && wrote.ok() && io_seconds >= kFsyncStallSeconds) {
      events_->log(clock_->now(), telemetry::Severity::kWarn, "fsync_stall",
                   "group commit took " + std::to_string(io_seconds) +
                       " s for " + std::to_string(batch_events) +
                       " event(s)");
    }
    lock.lock();
    if (!wrote.ok()) {
      QCENV_LOG(Error) << "journal group write failed: " << wrote.to_string();
      // Nothing past this point is acknowledged: the block may be torn on
      // disk and no further writes will follow it.
      fail_locked(wrote.error());
      durable_cv_.notify_all();
      if (stop_) return;
      continue;
    }
    written_seq_ = target;
    if (rewrite_epoch_ == epoch) {
      file_bytes_ += block.size();
      file_events_ += batch_events;
    } else {
      // A drop_through rewrite raced this block (either side of it):
      // its totals may or may not include us. Bytes re-sync from the
      // file; the event count self-corrects at the next rewrite.
      const off_t size = ::lseek(fd_, 0, SEEK_END);
      if (size >= 0) file_bytes_ = static_cast<std::uint64_t>(size);
    }
    if (want_sync) {
      ++fsyncs_;
      if (fsyncs_counter_ != nullptr) fsyncs_counter_->increment();
      durable_seq_ = target;
      durable_cv_.notify_all();
    }
    if (stop_) return;
  }
}

namespace {

/// Sequence number of one encoded journal line (format fixed by
/// encode_line: `{"seq":N,...`). nullopt for anything else.
std::optional<std::uint64_t> line_seq(const std::string& line) {
  constexpr const char* kPrefix = "{\"seq\":";
  constexpr std::size_t kPrefixLen = 7;
  if (line.compare(0, kPrefixLen, kPrefix) != 0) return std::nullopt;
  char* end = nullptr;
  const std::uint64_t seq = std::strtoull(line.c_str() + kPrefixLen, &end, 10);
  if (end == line.c_str() + kPrefixLen || *end != ',') return std::nullopt;
  return seq;
}

/// Appends every complete v1 line of `content` with seq > watermark to
/// `kept`. Keeping the v1 format is a raw seq-prefix filter (no JSON
/// parse); re-encoding to v2 — the migration — parses each kept line
/// once and emits a frame.
Status filter_journal_lines(const std::string& content,
                            std::uint64_t watermark, JournalFormat target,
                            std::string& kept, std::uint64_t& kept_events,
                            const std::string& path) {
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t newline = content.find('\n', start);
    if (newline == std::string::npos) break;  // torn tail
    if (newline > start) {
      const std::string line = content.substr(start, newline - start);
      const auto seq = line_seq(line);
      if (seq.has_value() && *seq > watermark) {
        if (target == JournalFormat::kJsonV1) {
          kept += line;
          kept += '\n';
        } else {
          auto parsed = Json::parse(line);
          if (!parsed.ok()) {
            return common::err::protocol(
                "cannot migrate corrupt journal line of '" + path +
                "': " + parsed.error().message());
          }
          auto type = parsed.value().get_string("e");
          if (!type.ok()) {
            return common::err::protocol(
                "cannot migrate journal line of '" + path +
                "': missing event type");
          }
          const Json& t = parsed.value().at_or_null("t");
          encode_frame(kept, *seq, t.is_number() ? t.as_int() : 0,
                       type.value(), parsed.value().at_or_null("d").dump());
        }
        ++kept_events;
      }
    }
    start = newline + 1;
  }
  return Status::ok_status();
}

/// v2 counterpart: walks frames from `pos`, keeping (seq > watermark)
/// frames as raw byte copies, or transcoding them to v1 lines when the
/// target format is v1. A short/torn tail terminates the walk (mirrors
/// replay); a CRC failure before the tail is an error — compaction must
/// not silently launder corruption into a clean-looking file.
Status filter_journal_frames(const std::string& content, std::size_t pos,
                             std::uint64_t watermark, JournalFormat target,
                             std::string& kept, std::uint64_t& kept_events,
                             const std::string& path) {
  while (pos < content.size()) {
    if (content.size() - pos < kFrameHeaderLen) break;  // torn tail
    const std::uint32_t len = get_le32(content.data() + pos);
    const std::size_t extent = pos + kFrameHeaderLen + len;
    if (extent > content.size()) break;  // torn tail
    const char* payload = content.data() + pos + kFrameHeaderLen;
    const bool valid =
        crc32c(std::string_view(payload, len)) ==
            get_le32(content.data() + pos + 4) &&
        len >= kFramePreludeLen;
    if (!valid) {
      if (extent == content.size()) break;  // torn final frame
      return common::err::protocol(
          "corrupt journal frame before the tail of '" + path +
          "' found during compaction");
    }
    const std::uint64_t seq = get_le64(payload);
    if (seq > watermark) {
      if (target == JournalFormat::kBinaryV2) {
        kept.append(content, pos, extent - pos);
      } else {
        const std::uint32_t type_len = get_le32(payload + 16);
        if (kFramePreludeLen + static_cast<std::uint64_t>(type_len) > len) {
          return common::err::protocol(
              "malformed journal frame in '" + path + "'");
        }
        const std::string type(payload + kFramePreludeLen, type_len);
        std::string dump(payload + kFramePreludeLen + type_len,
                         len - kFramePreludeLen - type_len);
        if (!dump.empty() && dump[0] == kSubmitMetaMarker) {
          // v1 lines carry JSON only: a binary-bodied frame transcodes
          // through the decoder (the downgrade path is rare and cold).
          auto decoded = decode_submit_meta(dump);
          if (!decoded.ok()) {
            return common::err::protocol(
                "cannot transcode binary journal frame of '" + path +
                "' to v1: " + decoded.error().message());
          }
          dump = decoded.value().dump();
        }
        kept += encode_line(
            seq, static_cast<common::TimeNs>(get_le64(payload + 8)), type,
            dump);
      }
      ++kept_events;
    }
    pos = extent;
  }
  return Status::ok_status();
}

}  // namespace

Status JobJournal::drop_through(std::uint64_t watermark) {
  QCENV_RETURN_IF_ERROR(flush());
  // The rewrite re-encodes into options_.format whenever that differs
  // from what is on disk — this is the transparent v1 -> v2 migration
  // (and, symmetrically, a downgrade path for debugging).
  JournalFormat source = JournalFormat::kBinaryV2;
  {
    std::scoped_lock lock(mutex_);
    source = active_format_;
  }
  const JournalFormat target = options_.format;
  // Phase 1 — no locks held: filter everything currently in the file.
  // The journal is append-only between compactions (drop_through calls
  // are serialized by StateStore's compact mutex, and fail-stop means an
  // errored fd is never written again), and the writer only writes whole
  // blocks of complete lines/frames under io_mutex_, so the size sampled
  // here is a stable event boundary. Appends keep flowing while we
  // filter.
  std::uint64_t stable_bytes = 0;
  {
    std::scoped_lock io(io_mutex_);
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    stable_bytes = size > 0 ? static_cast<std::uint64_t>(size) : 0;
  }
  std::string kept;
  if (target == JournalFormat::kBinaryV2) kept.assign(kMagicV2, kMagicLen);
  std::uint64_t kept_events = 0;
  {
    const std::string content = read_range(path_, 0, stable_bytes);
    if (source == JournalFormat::kBinaryV2) {
      const std::size_t skip =
          content.size() >= kMagicLen ? kMagicLen : content.size();
      QCENV_RETURN_IF_ERROR(filter_journal_frames(
          content, skip, watermark, target, kept, kept_events, path_));
    } else {
      QCENV_RETURN_IF_ERROR(filter_journal_lines(
          content, watermark, target, kept, kept_events, path_));
    }
  }

  // Phase 2 — under the locks: fold in the (small) suffix appended while
  // phase 1 ran, then swap the compacted file in. Appenders block only
  // for this delta, not for the full-journal rewrite.
  std::scoped_lock lock(mutex_);
  std::scoped_lock io(io_mutex_);
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  const std::uint64_t total_bytes =
      end > 0 ? static_cast<std::uint64_t>(end) : 0;
  if (total_bytes > stable_bytes) {
    const std::string delta =
        read_range(path_, stable_bytes, total_bytes - stable_bytes);
    if (source == JournalFormat::kBinaryV2) {
      QCENV_RETURN_IF_ERROR(filter_journal_frames(
          delta, 0, watermark, target, kept, kept_events, path_));
    } else {
      QCENV_RETURN_IF_ERROR(filter_journal_lines(
          delta, watermark, target, kept, kept_events, path_));
    }
  }

  QCENV_RETURN_IF_ERROR(write_file_atomic(path_, kept));
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0600);
  if (fd_ < 0) return make_io_error("cannot reopen compacted journal", path_);
  ++fsyncs_;
  // Invalidate any writer-thread counter update that raced this rewrite:
  // a block written just before we took io_mutex_ is already included in
  // `kept`, and the writer must not add it again after we release.
  ++rewrite_epoch_;
  // The rewrite moved every surviving frame; replication followers fall
  // back to a full scan (and a snapshot catch-up if their cursor now
  // precedes the compacted watermark).
  ship_cursor_seq_ = 0;
  ship_cursor_offset_ = 0;
  file_bytes_ = kept.size();
  file_events_ = kept_events;
  active_format_ = target;
  {
    // The dropped prefix may have held payload-defining events; the
    // snapshot that justified this truncation carries those payloads, so
    // future submissions must re-embed on first sighting.
    std::scoped_lock payloads(payload_mutex_);
    embedded_payloads_.clear();
  }
  return Status::ok_status();
}

namespace {

/// v1 body of read_file: newline-delimited JSON lines.
Result<std::vector<JournalEntry>> read_file_v1(
    const std::string& content, const std::string& path,
    std::uint64_t* complete_prefix_bytes) {
  std::vector<JournalEntry> entries;
  // Only newline-terminated lines are complete — the exact rule open()
  // uses to truncate torn tails, so replayed state always matches what
  // stays on disk.
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t newline = content.find('\n', start);
    if (newline == std::string::npos) {
      QCENV_LOG(Warn) << "dropping torn journal tail ("
                      << (content.size() - start) << " byte(s)) of '"
                      << path << "'";
      break;
    }
    if (newline > start) {
      lines.push_back(content.substr(start, newline - start));
    }
    start = newline + 1;
  }
  // `start` now sits just past the last newline: the complete-line prefix
  // open() keeps when truncating a torn tail.
  if (complete_prefix_bytes != nullptr) *complete_prefix_bytes = start;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto parsed = Json::parse(lines[i]);
    if (!parsed.ok()) {
      return common::err::protocol(
          "corrupt journal line " + std::to_string(i + 1) + " of '" + path +
          "': " + parsed.error().message());
    }
    JournalEntry entry;
    auto seq = parsed.value().get_int("seq");
    auto type = parsed.value().get_string("e");
    if (!seq.ok() || !type.ok()) {
      return common::err::protocol("journal line " + std::to_string(i + 1) +
                                   " of '" + path +
                                   "' lacks seq/event fields");
    }
    entry.seq = static_cast<std::uint64_t>(seq.value());
    entry.type = std::move(type).value();
    const Json& t = parsed.value().at_or_null("t");
    entry.time = t.is_number() ? t.as_int() : 0;
    entry.data = parsed.value().at_or_null("d");
    entries.push_back(std::move(entry));
  }
  return entries;
}

/// v2 body of read_file: magic header + CRC-checked frames. A frame that
/// runs past EOF or whose CRC fails AT the tail is a torn tail (dropped,
/// prefix stops before it); a CRC failure with more data after it is
/// corruption, reported as an error at that frame boundary.
Result<std::vector<JournalEntry>> read_file_v2(
    const std::string& content, const std::string& path,
    std::uint64_t* complete_prefix_bytes) {
  std::vector<JournalEntry> entries;
  if (content.size() < kMagicLen) {
    QCENV_LOG(Warn) << "dropping torn journal header (" << content.size()
                    << " byte(s)) of '" << path << "'";
    return entries;  // prefix 0: open() truncates back to an empty file
  }
  std::size_t pos = kMagicLen;
  if (complete_prefix_bytes != nullptr) *complete_prefix_bytes = pos;
  std::size_t frame_index = 0;
  while (pos < content.size()) {
    ++frame_index;
    if (content.size() - pos < kFrameHeaderLen) {
      QCENV_LOG(Warn) << "dropping torn journal tail ("
                      << (content.size() - pos) << " byte(s)) of '" << path
                      << "'";
      break;
    }
    const std::uint32_t len = get_le32(content.data() + pos);
    const std::size_t extent = pos + kFrameHeaderLen + len;
    if (extent > content.size()) {
      QCENV_LOG(Warn) << "dropping torn journal tail frame "
                      << frame_index << " of '" << path
                      << "' (declared extent past EOF)";
      break;
    }
    const char* payload = content.data() + pos + kFrameHeaderLen;
    if (crc32c(std::string_view(payload, len)) !=
        get_le32(content.data() + pos + 4)) {
      if (extent == content.size()) {
        QCENV_LOG(Warn) << "dropping torn journal tail frame "
                        << frame_index << " of '" << path
                        << "' (CRC mismatch)";
        break;
      }
      return common::err::protocol(
          "corrupt journal frame " + std::to_string(frame_index) + " of '" +
          path + "': CRC mismatch before the tail");
    }
    if (len < kFramePreludeLen) {
      return common::err::protocol(
          "journal frame " + std::to_string(frame_index) + " of '" + path +
          "' is too short for its prelude");
    }
    const std::uint32_t type_len = get_le32(payload + 16);
    if (kFramePreludeLen + static_cast<std::uint64_t>(type_len) > len) {
      return common::err::protocol(
          "journal frame " + std::to_string(frame_index) + " of '" + path +
          "' declares an oversized event type");
    }
    JournalEntry entry;
    entry.seq = get_le64(payload);
    entry.time = static_cast<common::TimeNs>(get_le64(payload + 8));
    entry.type.assign(payload + kFramePreludeLen, type_len);
    const char* body = payload + kFramePreludeLen + type_len;
    const std::size_t body_len = len - kFramePreludeLen - type_len;
    if (body_len > 0 && body[0] == kSubmitMetaMarker) {
      auto decoded = decode_submit_meta(std::string_view(body, body_len));
      if (!decoded.ok()) {
        return common::err::protocol(
            "journal frame " + std::to_string(frame_index) + " of '" +
            path + "' carries an undecodable binary body: " +
            decoded.error().message());
      }
      entry.data = std::move(decoded).value();
    } else {
      auto parsed = Json::parse(std::string(body, body_len));
      if (!parsed.ok()) {
        return common::err::protocol(
            "journal frame " + std::to_string(frame_index) + " of '" +
            path + "' carries invalid JSON data: " +
            parsed.error().message());
      }
      entry.data = std::move(parsed).value();
    }
    entries.push_back(std::move(entry));
    pos = extent;
    if (complete_prefix_bytes != nullptr) *complete_prefix_bytes = pos;
  }
  return entries;
}

}  // namespace

namespace {

/// Shared frame walk for segment shipping: collects whole valid frames
/// with seq in (after_seq, durable_cap] into `segment`, stopping
/// collection (but not the walk — durable_seq must still reflect the full
/// scanned prefix) once ~max_bytes are gathered. `content` starts at a
/// frame boundary, magic already skipped. A torn or corrupt frame ends
/// the walk: only the clean prefix ships, and replay on the follower
/// applies the same CRC verdicts the leader would. With `check_gap`, a
/// cursor below the first frame's predecessor flags snapshot_needed —
/// the events between were compacted away.
void scan_segment_frames(std::string_view content, std::uint64_t after_seq,
                         std::uint64_t max_bytes, std::uint64_t durable_cap,
                         bool check_gap, WalSegment& segment,
                         std::uint64_t& served_end,
                         std::uint64_t& first_seen) {
  std::size_t pos = 0;
  first_seen = 0;
  bool collecting = true;
  while (pos < content.size()) {
    if (content.size() - pos < kFrameHeaderLen) break;
    const std::uint32_t len = get_le32(content.data() + pos);
    const std::size_t extent = pos + kFrameHeaderLen + len;
    if (extent > content.size()) break;
    const char* payload = content.data() + pos + kFrameHeaderLen;
    if (len < kFramePreludeLen ||
        crc32c(std::string_view(payload, len)) !=
            get_le32(content.data() + pos + 4)) {
      break;
    }
    const std::uint64_t seq = get_le64(payload);
    if (seq > durable_cap) break;
    if (first_seen == 0) first_seen = seq;
    segment.durable_seq = std::max(segment.durable_seq, seq);
    if (collecting && seq > after_seq) {
      if (!segment.bytes.empty() &&
          segment.bytes.size() + (extent - pos) > max_bytes) {
        collecting = false;
      } else {
        if (segment.first_seq == 0) segment.first_seq = seq;
        segment.end_seq = seq;
        segment.bytes.append(content.substr(pos, extent - pos));
        served_end = extent;
      }
    }
    pos = extent;
  }
  if (check_gap && first_seen > 0 && after_seq + 1 < first_seen) {
    segment.snapshot_needed = true;
    segment.first_seq = 0;
    segment.end_seq = 0;
    segment.bytes.clear();
    served_end = 0;
  }
}

}  // namespace

Result<WalSegment> JobJournal::read_segment(std::uint64_t after_seq,
                                            std::uint64_t max_bytes) {
  JournalFormat format = JournalFormat::kBinaryV2;
  std::uint64_t durable = 0;
  {
    std::scoped_lock lock(mutex_);
    durable = durable_seq_;
    format = active_format_;
  }
  if (fd_ < 0) {
    return common::err::failed_precondition("journal is not open");
  }
  WalSegment segment;
  segment.durable_seq = durable;
  if (format == JournalFormat::kJsonV1) {
    // v1 JSON segments are not streamable; the next compaction rewrites
    // the file as v2, and the follower bridges the gap via snapshot.
    segment.snapshot_needed = true;
    return segment;
  }
  std::scoped_lock io(io_mutex_);
  std::uint64_t start = kMagicLen;
  bool check_gap = true;
  if (after_seq != 0 && after_seq == ship_cursor_seq_ &&
      ship_cursor_offset_ >= kMagicLen) {
    start = ship_cursor_offset_;
    check_gap = false;  // the cursor is known-contiguous with after_seq
  }
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  const std::uint64_t file_size = end > 0 ? static_cast<std::uint64_t>(end)
                                          : 0;
  if (file_size < start) {
    // Stale cursor (should not happen — compaction resets it); rescan.
    start = kMagicLen;
    check_gap = true;
  }
  if (file_size <= start) {
    // Durable events above the cursor with an empty journal means
    // compaction folded them into the snapshot — the follower must
    // bridge the gap there, not wait for frames that will never appear.
    if (check_gap && durable > after_seq) segment.snapshot_needed = true;
    return segment;
  }
  const std::string content = read_range(path_, start, file_size - start);
  std::uint64_t served_end = 0;
  std::uint64_t first_seen = 0;
  scan_segment_frames(content, after_seq, max_bytes, durable, check_gap,
                      segment, served_end, first_seen);
  segment.durable_seq = durable;
  if (check_gap && first_seen == 0 && durable > after_seq) {
    // Same compacted-away case, but the file still holds the magic header
    // plus torn bytes only.
    segment.snapshot_needed = true;
  }
  if (segment.end_seq != 0) {
    ship_cursor_seq_ = segment.end_seq;
    ship_cursor_offset_ = start + served_end;
    segment.next_offset = ship_cursor_offset_;
  }
  return segment;
}

Result<WalSegment> JobJournal::read_segment_file(const std::string& path,
                                                 std::uint64_t after_seq,
                                                 std::uint64_t max_bytes) {
  WalSegment segment;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return segment;  // absent = nothing written yet
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  if (content.empty()) return segment;
  if (content[0] == '{') {
    segment.snapshot_needed = true;  // v1: not streamable (see above)
    return segment;
  }
  const std::size_t have = std::min(content.size(), kMagicLen);
  if (std::memcmp(content.data(), kMagicV2, have) != 0) {
    return common::err::protocol("unrecognized journal header in '" + path +
                                 "' (neither v1 JSON lines nor v2 frames)");
  }
  if (content.size() <= kMagicLen) return segment;
  std::uint64_t served_end = 0;
  std::uint64_t first_seen = 0;
  scan_segment_frames(std::string_view(content).substr(kMagicLen),
                      after_seq, max_bytes,
                      std::numeric_limits<std::uint64_t>::max(), true,
                      segment, served_end, first_seen);
  if (served_end > 0) segment.next_offset = kMagicLen + served_end;
  return segment;
}

JobJournal::FramePrefix JobJournal::validate_frames(std::string_view bytes,
                                                    std::uint64_t after_seq) {
  FramePrefix prefix;
  std::uint64_t last_seq = after_seq;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderLen) break;
    const std::uint32_t len = get_le32(bytes.data() + pos);
    const std::size_t extent = pos + kFrameHeaderLen + len;
    if (extent > bytes.size()) break;
    const char* payload = bytes.data() + pos + kFrameHeaderLen;
    if (len < kFramePreludeLen ||
        crc32c(std::string_view(payload, len)) !=
            get_le32(bytes.data() + pos + 4)) {
      break;
    }
    const std::uint64_t seq = get_le64(payload);
    if (seq <= last_seq) break;  // out of order / replayed frame
    last_seq = seq;
    pos = extent;
    prefix.bytes = pos;
    ++prefix.frames;
    prefix.end_seq = seq;
  }
  return prefix;
}

Result<std::vector<JournalEntry>> JobJournal::read_file(
    const std::string& path, std::uint64_t* complete_prefix_bytes) {
  if (complete_prefix_bytes != nullptr) *complete_prefix_bytes = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::vector<JournalEntry>{};  // absent = empty
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  if (content.empty()) return std::vector<JournalEntry>{};
  if (content[0] == '{') {
    return read_file_v1(content, path, complete_prefix_bytes);
  }
  const std::size_t have = std::min(content.size(), kMagicLen);
  if (std::memcmp(content.data(), kMagicV2, have) != 0) {
    return common::err::protocol("unrecognized journal header in '" + path +
                                 "' (neither v1 JSON lines nor v2 frames)");
  }
  return read_file_v2(content, path, complete_prefix_bytes);
}

}  // namespace qcenv::store
