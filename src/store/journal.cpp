#include "store/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "store/fault_injector.hpp"
#include "store/fsio.hpp"

#define QCENV_LOG_COMPONENT "store.journal"
#include "common/logging.hpp"

namespace qcenv::store {

using common::Json;
using common::Result;
using common::Status;

namespace {

/// One journal line. `type` is a controlled identifier and `data_dump` is
/// already-serialized JSON, so the line can be assembled without another
/// Json tree — this is the submit hot path.
std::string encode_line(std::uint64_t seq, common::TimeNs time,
                        const std::string& type,
                        const std::string& data_dump) {
  std::string line;
  line.reserve(48 + type.size() + data_dump.size());
  line += "{\"seq\":";
  line += std::to_string(seq);
  line += ",\"t\":";
  line += std::to_string(time);
  line += ",\"e\":\"";
  line += type;
  line += "\",\"d\":";
  line += data_dump;
  line += "}\n";
  return line;
}

common::Error make_io_error(const std::string& what, const std::string& path) {
  return common::err::io(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

const char* to_string(SyncMode mode) noexcept {
  switch (mode) {
    case SyncMode::kNone: return "none";
    case SyncMode::kAlways: return "always";
    case SyncMode::kGroupCommit: return "group_commit";
  }
  return "?";
}

JobJournal::JobJournal(JournalOptions options, common::Clock* clock,
                       telemetry::MetricsRegistry* metrics)
    : options_(options), clock_(clock), metrics_(metrics) {}

JobJournal::~JobJournal() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
    flush_requested_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status JobJournal::open(const std::string& path) {
  // Scan any existing tail first so sequence numbers keep increasing
  // across restarts (snapshot watermarks compare against them).
  std::uint64_t prefix_bytes = 0;
  auto existing = read_file(path, &prefix_bytes);
  if (!existing.ok()) return existing.error();
  return open(path, existing.value(), prefix_bytes);
}

Status JobJournal::open(const std::string& path,
                        const std::vector<JournalEntry>& preparsed,
                        std::uint64_t complete_prefix_bytes) {
  if (fd_ >= 0) {
    return common::err::failed_precondition("journal already open");
  }
  // 0600: the journal carries session bearer tokens and user payloads.
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC,
               0600);
  if (fd_ < 0) return make_io_error("cannot open journal", path);
  // Make the file's directory entry itself durable before acknowledging
  // any append as such.
  QCENV_RETURN_IF_ERROR(fsync_parent_dir(path));
  path_ = path;
  if (metrics_ != nullptr) {
    appends_counter_ =
        &metrics_->counter("store_journal_appends_total", {},
                           "events appended to the job journal");
    fsyncs_counter_ =
        &metrics_->counter("store_fsyncs_total", {},
                           "group-commit fsyncs issued by the journal");
    failed_gauge_ = &metrics_->gauge(
        "store_journal_failed", {},
        "1 once the journal has fail-stopped on a write/fsync error "
        "(new events are no longer durable)");
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  file_bytes_ = size > 0 ? static_cast<std::uint64_t>(size) : 0;
  // Cut any torn tail fragment off NOW: appending after it would splice
  // the first new event onto garbage and poison the file for replay.
  const std::uint64_t valid_bytes = complete_prefix_bytes;
  if (valid_bytes < file_bytes_) {
    if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0) {
      return make_io_error("cannot truncate torn journal tail of", path);
    }
    QCENV_LOG(Warn) << "truncated torn tail: " << (file_bytes_ - valid_bytes)
                    << " byte(s) after the last complete line of '" << path
                    << "'";
    file_bytes_ = valid_bytes;
  }
  file_events_ = preparsed.size();
  if (!preparsed.empty()) {
    const std::uint64_t tail = preparsed.back().seq;
    next_seq_ = tail + 1;
    written_seq_ = durable_seq_ = last_append_seq_ = tail;
  }
  if (options_.sync != SyncMode::kAlways) {
    writer_ = std::thread([this] { writer_loop(); });
  }
  return Status::ok_status();
}

std::uint64_t JobJournal::append(const std::string& type, Json data) {
  PendingEvent event;
  event.data = std::move(data);
  return enqueue(type, std::move(event));
}

std::uint64_t JobJournal::append_deferred(
    const std::string& type, std::function<Json()> build) {
  PendingEvent event;
  event.build = std::move(build);
  return enqueue(type, std::move(event));
}

std::uint64_t JobJournal::append_job_submitted(
    JobRecord meta, std::shared_ptr<const quantum::Payload> payload) {
  PendingEvent event;
  event.submit_meta = std::move(meta);
  event.submit_payload = std::move(payload);
  return enqueue("job_submitted", std::move(event));
}

Json JobJournal::build_pending(const PendingEvent& event) {
  if (event.submit_meta.has_value()) {
    Json job = event.submit_meta->to_json();
    if (event.submit_payload != nullptr) {
      // Content-addressed dedup: only the first submission of a program
      // in this journal segment embeds its (large) body; repeats — the
      // common shape for parameter sweeps and multi-user production
      // programs — reference the fingerprint instead.
      const std::uint64_t hash = payload_fingerprint(*event.submit_payload);
      job["payload_hash"] = static_cast<long long>(hash);
      // Dedup is scoped per user (see embedded_payloads_).
      std::string key = event.submit_meta->user;
      key += '|';
      key += std::to_string(hash);
      bool first_sighting = false;
      {
        std::scoped_lock lock(payload_mutex_);
        first_sighting = embedded_payloads_.insert(std::move(key)).second;
      }
      if (first_sighting) job["payload"] = event.submit_payload->to_json();
    }
    Json data = Json::object();
    data["job"] = std::move(job);
    return data;
  }
  if (event.build) return event.build();
  return event.data;
}

std::uint64_t JobJournal::enqueue(const std::string& type,
                                  PendingEvent event) {
  const common::TimeNs now = clock_->now();
  std::uint64_t seq = 0;
  {
    std::unique_lock lock(mutex_);
    seq = next_seq_++;
    last_append_seq_ = seq;
    ++appends_;
    event.seq = seq;
    event.time = now;
    event.type = type;
    if (io_error_.has_value()) {
      // Fail-stop: writing past the first failure would interleave new
      // lines with a torn fragment and poison the whole file for replay.
      return seq;
    }
    if (options_.sync == SyncMode::kAlways) {
      const std::string line =
          encode_line(seq, now, type, build_pending(event).dump());
      Status wrote = Status::ok_status();
      {
        std::scoped_lock io(io_mutex_);
        wrote = write_block(line, /*sync=*/true);
      }
      if (!wrote.ok()) {
        QCENV_LOG(Error) << "journal write failed: " << wrote.to_string();
        fail_locked(wrote.error());
        durable_cv_.notify_all();
        return seq;
      }
      file_bytes_ += line.size();
      ++file_events_;
      ++fsyncs_;
      written_seq_ = durable_seq_ = seq;
      if (fsyncs_counter_ != nullptr) fsyncs_counter_->increment();
    } else {
      pending_.push_back(std::move(event));
      if (pending_.size() >= options_.group_commit_max_batch) {
        work_cv_.notify_one();
      }
    }
  }
  if (appends_counter_ != nullptr) appends_counter_->increment();
  return seq;
}

Status JobJournal::flush() {
  if (fd_ < 0) return common::err::failed_precondition("journal not open");
  std::unique_lock lock(mutex_);
  if (io_error_.has_value()) return *io_error_;
  // Target what was appended, not the raw counter: reserve_through() may
  // have advanced next_seq_ past anything that will ever hit the disk.
  const std::uint64_t target = last_append_seq_;
  if (durable_seq_ >= target) return Status::ok_status();
  if (options_.sync == SyncMode::kAlways) return Status::ok_status();
  flush_requested_ = true;
  work_cv_.notify_all();
  durable_cv_.wait(lock, [&] {
    return durable_seq_ >= target || io_error_.has_value() || stop_;
  });
  if (io_error_.has_value()) return *io_error_;
  return Status::ok_status();
}

std::optional<common::Error> JobJournal::io_error() const {
  std::scoped_lock lock(mutex_);
  return io_error_;
}

void JobJournal::fail_locked(common::Error error) {
  if (io_error_.has_value()) return;
  io_error_ = std::move(error);
  if (failed_gauge_ != nullptr) failed_gauge_->set(1);
}

void JobJournal::reserve_through(std::uint64_t seq) {
  std::scoped_lock lock(mutex_);
  if (next_seq_ <= seq) next_seq_ = seq + 1;
}

std::uint64_t JobJournal::last_seq() const {
  std::scoped_lock lock(mutex_);
  return next_seq_ - 1;
}

std::uint64_t JobJournal::event_count() const {
  std::scoped_lock lock(mutex_);
  return file_events_ + pending_.size();
}

std::uint64_t JobJournal::appends_total() const {
  std::scoped_lock lock(mutex_);
  return appends_;
}

std::uint64_t JobJournal::fsyncs_total() const {
  std::scoped_lock lock(mutex_);
  return fsyncs_;
}

std::uint64_t JobJournal::size_bytes() const {
  std::scoped_lock lock(mutex_);
  // Pending events are not serialized yet; estimate their footprint.
  return file_bytes_ + pending_.size() * 128;
}

Status JobJournal::write_block(const std::string& block, bool sync) {
  const char* data = block.data();
  std::size_t remaining = block.size();
  // Where this block starts: if the fsync below fails, the bytes were
  // written but their durability is unknown — a restart would replay a
  // line the caller is about to be told failed. Compensate by truncating
  // back to this offset (best effort: on a truly dead disk the truncate
  // fails too and the ambiguity is inherent).
  const off_t block_start = ::lseek(fd_, 0, SEEK_END);
  if (FaultInjector* injector = fault_injector()) {
    const FaultDecision decision =
        injector->on_write(FsOp::kJournalWrite, path_, block.size());
    switch (decision.kind) {
      case FaultDecision::Kind::kPass:
        break;
      case FaultDecision::Kind::kFail:
        errno = EIO;
        return make_io_error("cannot append to journal", path_);
      case FaultDecision::Kind::kShortWrite:
        // The torn-tail crash model: part of the block reaches the disk,
        // then the device dies. Whatever lands must really land so replay
        // sees exactly what a crashed daemon would have left behind.
        remaining = decision.bytes;
        break;
    }
    if (decision.kind == FaultDecision::Kind::kShortWrite) {
      while (remaining > 0) {
        const ssize_t wrote = ::write(fd_, data, remaining);
        if (wrote < 0) {
          if (errno == EINTR) continue;
          break;
        }
        data += wrote;
        remaining -= static_cast<std::size_t>(wrote);
      }
      errno = EIO;
      return make_io_error("cannot append to journal", path_);
    }
  }
  while (remaining > 0) {
    const ssize_t wrote = ::write(fd_, data, remaining);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return make_io_error("cannot append to journal", path_);
    }
    data += wrote;
    remaining -= static_cast<std::size_t>(wrote);
  }
  if (sync) {
    FaultInjector* injector = fault_injector();
    const bool injected_failure =
        injector != nullptr && injector->on_fsync(FsOp::kJournalFsync, path_);
    if (injected_failure || ::fsync(fd_) != 0) {
      if (injected_failure) errno = EIO;
      const auto error = make_io_error("fsync failed on journal", path_);
      // The block is fully written but not durable: shear it back off so
      // the file cannot resurrect events whose append was reported
      // failed. (Failed/short write()s are left as-is — that is the
      // disk-died-mid-write crash model, and replay drops the torn tail.)
      if (block_start >= 0) (void)::ftruncate(fd_, block_start);
      return error;
    }
  }
  return Status::ok_status();
}

void JobJournal::writer_loop() {
  const auto interval =
      std::chrono::nanoseconds(options_.group_commit_interval);
  std::unique_lock lock(mutex_);
  while (true) {
    work_cv_.wait_for(lock, interval, [&] {
      return stop_ || flush_requested_ ||
             pending_.size() >= options_.group_commit_max_batch;
    });
    if (pending_.empty()) {
      if (flush_requested_) {
        // Everything is written; make it durable.
        const std::uint64_t target = written_seq_;
        flush_requested_ = false;
        lock.unlock();
        bool synced = false;
        {
          std::scoped_lock io(io_mutex_);
          FaultInjector* injector = fault_injector();
          const bool injected_failure =
              injector != nullptr &&
              injector->on_fsync(FsOp::kJournalFsync, path_);
          if (injected_failure) errno = EIO;
          synced = !injected_failure && fd_ >= 0 && ::fsync(fd_) == 0;
        }
        lock.lock();
        if (synced) {
          ++fsyncs_;
          if (fsyncs_counter_ != nullptr) fsyncs_counter_->increment();
          if (durable_seq_ < target) durable_seq_ = target;
        } else {
          fail_locked(make_io_error("fsync failed on journal", path_));
          QCENV_LOG(Error) << "journal failed: " << io_error_->to_string();
        }
        durable_cv_.notify_all();
      }
      if (stop_) return;
      continue;
    }
    if (io_error_.has_value()) {
      // Fail-stop: drop the batch rather than splice lines after a torn
      // fragment; waiters are told via flush().
      pending_.clear();
      durable_cv_.notify_all();
      if (stop_) return;
      continue;
    }

    // Drain the whole pending batch into one write (and one fsync).
    // Serialization happens here, off every appender's hot path.
    const std::uint64_t target = last_append_seq_;
    const std::uint64_t epoch = rewrite_epoch_;
    std::deque<PendingEvent> batch;
    batch.swap(pending_);
    const std::uint64_t batch_events = batch.size();
    const bool want_sync =
        options_.sync == SyncMode::kGroupCommit || flush_requested_;
    flush_requested_ = false;
    lock.unlock();
    std::string block;
    block.reserve(batch_events * 128);
    for (const auto& event : batch) {
      block += encode_line(event.seq, event.time, event.type,
                           build_pending(event).dump());
    }
    batch.clear();
    Status wrote = Status::ok_status();
    {
      std::scoped_lock io(io_mutex_);
      wrote = write_block(block, want_sync);
    }
    lock.lock();
    if (!wrote.ok()) {
      QCENV_LOG(Error) << "journal group write failed: " << wrote.to_string();
      // Nothing past this point is acknowledged: the block may be torn on
      // disk and no further writes will follow it.
      fail_locked(wrote.error());
      durable_cv_.notify_all();
      if (stop_) return;
      continue;
    }
    written_seq_ = target;
    if (rewrite_epoch_ == epoch) {
      file_bytes_ += block.size();
      file_events_ += batch_events;
    } else {
      // A drop_through rewrite raced this block (either side of it):
      // its totals may or may not include us. Bytes re-sync from the
      // file; the event count self-corrects at the next rewrite.
      const off_t size = ::lseek(fd_, 0, SEEK_END);
      if (size >= 0) file_bytes_ = static_cast<std::uint64_t>(size);
    }
    if (want_sync) {
      ++fsyncs_;
      if (fsyncs_counter_ != nullptr) fsyncs_counter_->increment();
      durable_seq_ = target;
      durable_cv_.notify_all();
    }
    if (stop_) return;
  }
}

namespace {

/// Sequence number of one encoded journal line (format fixed by
/// encode_line: `{"seq":N,...`). nullopt for anything else.
std::optional<std::uint64_t> line_seq(const std::string& line) {
  constexpr const char* kPrefix = "{\"seq\":";
  constexpr std::size_t kPrefixLen = 7;
  if (line.compare(0, kPrefixLen, kPrefix) != 0) return std::nullopt;
  char* end = nullptr;
  const std::uint64_t seq = std::strtoull(line.c_str() + kPrefixLen, &end, 10);
  if (end == line.c_str() + kPrefixLen || *end != ',') return std::nullopt;
  return seq;
}

/// Reads `[offset, offset + max_bytes)` of `path` (short read at EOF).
std::string read_range(const std::string& path, std::uint64_t offset,
                       std::uint64_t max_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open() || max_bytes == 0) return {};
  in.seekg(static_cast<std::streamoff>(offset));
  std::string out(max_bytes, '\0');
  in.read(out.data(), static_cast<std::streamsize>(max_bytes));
  out.resize(static_cast<std::size_t>(std::max<std::streamsize>(
      in.gcount(), 0)));
  return out;
}

/// Appends every complete line of `content` with seq > watermark to
/// `kept` — raw seq-prefix filter, no JSON parse or re-encode.
void filter_journal_lines(const std::string& content, std::uint64_t watermark,
                          std::string& kept, std::uint64_t& kept_events) {
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t newline = content.find('\n', start);
    if (newline == std::string::npos) break;  // torn tail
    if (newline > start) {
      const std::string line = content.substr(start, newline - start);
      const auto seq = line_seq(line);
      if (seq.has_value() && *seq > watermark) {
        kept += line;
        kept += '\n';
        ++kept_events;
      }
    }
    start = newline + 1;
  }
}

}  // namespace

Status JobJournal::drop_through(std::uint64_t watermark) {
  QCENV_RETURN_IF_ERROR(flush());
  // Phase 1 — no locks held: filter everything currently in the file.
  // The journal is append-only between compactions (drop_through calls
  // are serialized by StateStore's compact mutex, and fail-stop means an
  // errored fd is never written again), and the writer only writes whole
  // blocks of complete lines under io_mutex_, so the size sampled here is
  // a stable line boundary. Appends keep flowing while we filter.
  std::uint64_t stable_bytes = 0;
  {
    std::scoped_lock io(io_mutex_);
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    stable_bytes = size > 0 ? static_cast<std::uint64_t>(size) : 0;
  }
  std::string kept;
  std::uint64_t kept_events = 0;
  filter_journal_lines(read_range(path_, 0, stable_bytes), watermark, kept,
                       kept_events);

  // Phase 2 — under the locks: fold in the (small) suffix appended while
  // phase 1 ran, then swap the compacted file in. Appenders block only
  // for this delta, not for the full-journal rewrite.
  std::scoped_lock lock(mutex_);
  std::scoped_lock io(io_mutex_);
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  const std::uint64_t total_bytes =
      end > 0 ? static_cast<std::uint64_t>(end) : 0;
  if (total_bytes > stable_bytes) {
    filter_journal_lines(
        read_range(path_, stable_bytes, total_bytes - stable_bytes),
        watermark, kept, kept_events);
  }

  QCENV_RETURN_IF_ERROR(write_file_atomic(path_, kept));
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0600);
  if (fd_ < 0) return make_io_error("cannot reopen compacted journal", path_);
  ++fsyncs_;
  // Invalidate any writer-thread counter update that raced this rewrite:
  // a block written just before we took io_mutex_ is already included in
  // `kept`, and the writer must not add it again after we release.
  ++rewrite_epoch_;
  file_bytes_ = kept.size();
  file_events_ = kept_events;
  {
    // The dropped prefix may have held payload-defining events; the
    // snapshot that justified this truncation carries those payloads, so
    // future submissions must re-embed on first sighting.
    std::scoped_lock payloads(payload_mutex_);
    embedded_payloads_.clear();
  }
  return Status::ok_status();
}

Result<std::vector<JournalEntry>> JobJournal::read_file(
    const std::string& path, std::uint64_t* complete_prefix_bytes) {
  if (complete_prefix_bytes != nullptr) *complete_prefix_bytes = 0;
  std::vector<JournalEntry> entries;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return entries;  // absent = empty journal
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  // Only newline-terminated lines are complete — the exact rule open()
  // uses to truncate torn tails, so replayed state always matches what
  // stays on disk.
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t newline = content.find('\n', start);
    if (newline == std::string::npos) {
      QCENV_LOG(Warn) << "dropping torn journal tail ("
                      << (content.size() - start) << " byte(s)) of '"
                      << path << "'";
      break;
    }
    if (newline > start) {
      lines.push_back(content.substr(start, newline - start));
    }
    start = newline + 1;
  }
  // `start` now sits just past the last newline: the complete-line prefix
  // open() keeps when truncating a torn tail.
  if (complete_prefix_bytes != nullptr) *complete_prefix_bytes = start;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto parsed = Json::parse(lines[i]);
    if (!parsed.ok()) {
      return common::err::protocol(
          "corrupt journal line " + std::to_string(i + 1) + " of '" + path +
          "': " + parsed.error().message());
    }
    JournalEntry entry;
    auto seq = parsed.value().get_int("seq");
    auto type = parsed.value().get_string("e");
    if (!seq.ok() || !type.ok()) {
      return common::err::protocol("journal line " + std::to_string(i + 1) +
                                   " of '" + path +
                                   "' lacks seq/event fields");
    }
    entry.seq = static_cast<std::uint64_t>(seq.value());
    entry.type = std::move(type).value();
    const Json& t = parsed.value().at_or_null("t");
    entry.time = t.is_number() ? t.as_int() : 0;
    entry.data = parsed.value().at_or_null("d");
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace qcenv::store
