// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every v2 journal frame. Chosen over plain CRC32 for
// its better burst-error detection and because it is the WAL-industry
// standard (LevelDB/RocksDB block format, iSCSI, ext4 metadata), so frames
// stay verifiable by off-the-shelf tooling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qcenv::store {

/// One-shot CRC32C of `data` (initial value 0, standard final XOR).
std::uint32_t crc32c(std::string_view data) noexcept;

/// Streaming form: extends `crc` (a previous return value, or 0 to start)
/// with `data`, so framing code can checksum header + body without
/// concatenating them first.
std::uint32_t crc32c_extend(std::uint32_t crc, const void* data,
                            std::size_t size) noexcept;

}  // namespace qcenv::store
