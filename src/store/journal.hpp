// JobJournal: append-only write-ahead log of job/session lifecycle events.
//
// On-disk formats (the file's own header decides; see JournalFormat):
//   v2 (default)  8-byte magic "QCWAL2\n", then length-prefixed binary
//                 frames `[u32 len][u32 crc32c][u64 seq][u64 t][u32 tlen]
//                 [type][body]` (all little-endian). The CRC covers
//                 everything after itself, so a torn final frame (crash
//                 mid-write) OR a bit-rotted tail is detected and dropped
//                 on replay, while a corrupt frame in the middle of the
//                 file is rejected at its frame boundary instead of
//                 poisoning everything after it. The body is either the
//                 event's JSON dump (first byte '{') or, for
//                 job_submitted, a flat binary record (first byte 0x01 —
//                 see journal.cpp) that replay decodes back into the
//                 identical JSON; both may coexist in one segment.
//   v1 (legacy)   one JSON line `{"seq":N,"t":<ns>,"e":"<type>", ...}` per
//                 event. v1 files open, replay and append transparently
//                 under the new code; the next compaction rewrites them as
//                 v2 (see drop_through).
// Sequence numbers are strictly increasing in both formats.
//
// Durability modes:
//   kAlways       write + fsync inline on every append (slow baseline),
//   kGroupCommit  appends buffer in memory and return immediately; a writer
//                 thread flushes the batch and issues ONE fsync per group
//                 (at most every `group_commit_interval`, sooner when
//                 `group_commit_max_batch` events pile up). This is the
//                 classic group-commit trade: the hot submit path pays a
//                 buffered string append, and the crash-loss window is
//                 bounded by the interval,
//   kNone         writes are batched like kGroupCommit but never fsynced
//                 except on explicit flush() (tests, benches).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"
#include "quantum/payload.hpp"
#include "store/records.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"

namespace qcenv::store {

enum class SyncMode { kNone, kAlways, kGroupCommit };

/// The 8-byte v2 segment header, for components that mirror raw frames
/// into a journal file of their own (the standby replicator).
std::string_view wal_v2_magic() noexcept;

const char* to_string(SyncMode mode) noexcept;

/// On-disk encoding of one journal segment (see the header comment).
enum class JournalFormat { kJsonV1 = 1, kBinaryV2 = 2 };

const char* to_string(JournalFormat format) noexcept;

struct JournalOptions {
  SyncMode sync = SyncMode::kGroupCommit;
  /// Format of NEW (empty or absent) journal files and of compaction
  /// rewrites. An existing non-empty file keeps its detected on-disk
  /// format for appends — mixing encodings within one segment would be
  /// unreadable — until drop_through() rewrites the whole segment in this
  /// format (that rewrite IS the v1 -> v2 migration).
  JournalFormat format = JournalFormat::kBinaryV2;
  /// Longest an appended event sits in memory before the group fsync —
  /// i.e. the crash-loss window. 5 ms is noise next to a QPU batch but
  /// keeps fsync duty low even on slow disks.
  common::DurationNs group_commit_interval = 5 * common::kMillisecond;
  /// Flush earlier once this many events are pending.
  std::size_t group_commit_max_batch = 512;
};

/// One decoded journal line.
struct JournalEntry {
  std::uint64_t seq = 0;
  common::TimeNs time = 0;
  std::string type;
  common::Json data;
};

/// One shipped chunk of a v2 journal for standby replication: verbatim
/// whole frames (CRCs intact end to end), contiguous with the follower's
/// cursor, never extending past the durable watermark — a standby must
/// not hold events the leader has not acknowledged as durable.
struct WalSegment {
  /// The cursor precedes the file's first frame (compaction dropped those
  /// events) or the file is a v1 segment the shipping protocol does not
  /// speak: the follower must catch up from a snapshot before resuming
  /// WAL pulls.
  bool snapshot_needed = false;
  std::uint64_t first_seq = 0;  ///< first frame in `bytes` (0 = none)
  std::uint64_t end_seq = 0;    ///< last frame in `bytes` (0 = none)
  /// Leader's durable high-water mark at read time; follower replication
  /// lag in events = durable_seq - its applied seq.
  std::uint64_t durable_seq = 0;
  /// Absolute file offset just past the last served frame (0 = none):
  /// lets a file-based puller resume the next scan there instead of
  /// re-walking the whole journal.
  std::uint64_t next_offset = 0;
  std::string bytes;  ///< raw frame bytes, exactly as on the leader's disk
};

class JobJournal {
 public:
  JobJournal(JournalOptions options, common::Clock* clock,
             telemetry::MetricsRegistry* metrics);
  ~JobJournal();
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Opens (creating if absent) the journal file and scans it so new
  /// sequence numbers continue after the existing tail.
  common::Status open(const std::string& path);
  /// Same, reusing what the caller already decoded via read_file — the
  /// entries plus the newline-terminated prefix length it reports — so
  /// the recovery path reads and parses the journal exactly once at
  /// startup (everything past the prefix is a torn tail to truncate).
  common::Status open(const std::string& path,
                      const std::vector<JournalEntry>& preparsed,
                      std::uint64_t complete_prefix_bytes);
  bool is_open() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }
  /// Encoding appends currently use: the file's detected format, migrated
  /// to options().format by the next drop_through().
  JournalFormat active_format() const noexcept { return active_format_; }

  /// Appends one event; returns its sequence number. Durability depends on
  /// the sync mode (see header comment). Serialization happens on the
  /// writer thread (except kAlways), so appending is cheap for callers
  /// holding hot-path locks. `at` (when >= 0) stamps the event instead of
  /// a fresh clock read: callers whose in-memory mutation carries its own
  /// timestamp (finish times, ledger charges) pass the SAME value so
  /// replaying the journal reproduces that state exactly — two clock
  /// reads are two different virtual instants.
  std::uint64_t append(const std::string& type, common::Json data,
                       common::TimeNs at = -1);

  /// Same, but even *building* the event body is deferred to the writer
  /// thread. `build` must be safe to call from another thread later (own
  /// its data or reference only immutable state). This keeps large bodies
  /// — a submitted job's full payload — entirely off the submit path.
  std::uint64_t append_deferred(const std::string& type,
                                std::function<common::Json()> build,
                                common::TimeNs at = -1);

  /// Specialized zero-type-erasure variant of append_deferred for the
  /// hottest event: a submitted job. The writer thread fingerprints the
  /// payload and embeds its body only on its first sighting in the
  /// current journal segment (compaction resets the sighting set — the
  /// snapshot carries every payload whose defining event it swallowed).
  /// The submit path pays one deque push, nothing more.
  std::uint64_t append_job_submitted(
      JobRecord meta, std::shared_ptr<const quantum::Payload> payload);

  /// Structured-event sink for operator-facing incidents: group-commit
  /// stalls ("fsync_stall") and the sticky fail-stop ("journal_fail_stop").
  /// Call before open(); the log must outlive this journal.
  void set_event_log(telemetry::EventLog* events) { events_ = events; }

  /// Invoked exactly once, after the sticky fail-stop is recorded and its
  /// journal_fail_stop event logged — the flight-recorder dump trigger.
  /// Runs on the thread that hit the failure with the journal mutex held,
  /// so the hook must not call back into this journal.
  void set_fail_stop_hook(std::function<void(const std::string&)> hook) {
    std::scoped_lock lock(mutex_);
    fail_hook_ = std::move(hook);
  }

  /// Invoked on every writer-thread wakeup (the journal-writer watchdog
  /// heartbeat). Same reentrancy rule as set_fail_stop_hook.
  void set_heartbeat(std::function<void()> heartbeat) {
    std::scoped_lock lock(mutex_);
    heartbeat_ = std::move(heartbeat);
  }

  /// Blocks until every event appended so far is written AND fsynced.
  /// Errs once the journal has failed (see io_error()).
  common::Status flush();

  /// Fail-stop: after the first write/fsync failure the journal stops
  /// writing (so the file keeps at most one torn tail line and replay
  /// recovers the durable prefix), acknowledges nothing further, and
  /// reports the sticky error here and from every flush().
  std::optional<common::Error> io_error() const;

  /// Lock-free equivalent of io_error().has_value(), for per-submission
  /// health checks on the hot path: one relaxed-ish atomic load instead
  /// of a global mutex acquisition. Set strictly after io_error_, so a
  /// true here guarantees io_error() is populated.
  bool has_failed() const noexcept {
    return failed_.load(std::memory_order_acquire);
  }

  /// Whether the event with this append seq is written AND fsynced.
  /// Distinguishes "my append landed before the journal fail-stopped"
  /// from "my append was swallowed by the failure" — io_error() alone
  /// cannot: it is a global flag another thread's append may have set
  /// right after this one's frame became durable.
  bool is_durable(std::uint64_t seq) const;

  /// Rewrites the journal keeping only events with seq > `watermark`
  /// (compaction: everything at or below the watermark is covered by a
  /// snapshot). Pending events are flushed first; appends continue with
  /// their sequence numbers unchanged.
  common::Status drop_through(std::uint64_t watermark);

  /// Never hand out sequence numbers at or below `seq` (used after loading
  /// a snapshot whose watermark outruns a truncated journal).
  void reserve_through(std::uint64_t seq);

  std::uint64_t last_seq() const;
  /// Events currently in the journal file + pending buffer.
  std::uint64_t event_count() const;
  std::uint64_t appends_total() const;
  std::uint64_t fsyncs_total() const;
  /// Bytes in the journal file (pending events contribute an estimate —
  /// they are not serialized until the writer thread picks them up).
  std::uint64_t size_bytes() const;

  /// Decodes every well-formed event of a journal file, in order, auto-
  /// detecting the on-disk format. A torn tail (incomplete final line /
  /// frame, or a final frame failing its CRC) is dropped silently; a
  /// corrupt event before the tail is an error naming the frame. A
  /// non-null `complete_prefix_bytes` receives the byte length of the
  /// well-formed prefix the entries came from (for the preparsed open() —
  /// no second read of the file).
  static common::Result<std::vector<JournalEntry>> read_file(
      const std::string& path,
      std::uint64_t* complete_prefix_bytes = nullptr);

  /// Live-journal read for replication: frames with seq > `after_seq`,
  /// capped at the durable watermark and ~`max_bytes` (always at least
  /// one frame when one qualifies). Safe against concurrent appends and
  /// compaction. A follower advancing one segment at a time hits a cursor
  /// fast path that reads only bytes past what it was already served, so
  /// the io_mutex_ hold (shared with the group-commit writer) stays
  /// O(new data), not O(file).
  common::Result<WalSegment> read_segment(std::uint64_t after_seq,
                                          std::uint64_t max_bytes);

  /// Same scan over a journal file with no live journal behind it
  /// (post-mortem shipping from a dead leader's disk, tests). Serves the
  /// complete-frame prefix; a torn tail is ignored exactly like replay
  /// ignores it, and durable_seq reports the prefix's last frame.
  static common::Result<WalSegment> read_segment_file(
      const std::string& path, std::uint64_t after_seq,
      std::uint64_t max_bytes);

  /// Validation verdict on a buffer of raw shipped frames (no magic
  /// header): the byte length of the whole-frame CRC-clean prefix whose
  /// seqs strictly increase from `after_seq`, plus its frame count and
  /// last seq. bytes < buffer size means the tail was torn in transit —
  /// the receiver appends the clean prefix and re-requests from end_seq.
  struct FramePrefix {
    std::uint64_t bytes = 0;
    std::uint64_t frames = 0;
    std::uint64_t end_seq = 0;
  };
  static FramePrefix validate_frames(std::string_view bytes,
                                     std::uint64_t after_seq);

 private:
  /// One event waiting for the writer thread. Exactly one of data/build/
  /// submit_payload-with-meta is meaningful (see encode_pending).
  struct PendingEvent {
    std::uint64_t seq = 0;
    common::TimeNs time = 0;
    std::string type;
    common::Json data;
    std::function<common::Json()> build;
    std::optional<JobRecord> submit_meta;
    std::shared_ptr<const quantum::Payload> submit_payload;
  };

  std::uint64_t enqueue(const std::string& type, PendingEvent event,
                        common::TimeNs at = -1);
  /// Records the first (sticky) I/O failure and flips the failure gauge
  /// so /metrics shows the fail-stop. Caller must hold mutex_.
  void fail_locked(common::Error error);
  /// Serializes the event body (writer thread / kAlways inline path).
  /// With `binary_meta` (v2 segment staying v2), a job_submitted event is
  /// encoded as a flat binary record instead of a JSON dump — the
  /// dominant per-event cost on the writer thread — and replay decodes it
  /// back into identical Json. Everything else dumps as JSON text.
  std::string serialize_pending(const PendingEvent& event, bool binary_meta);
  void writer_loop();
  /// Writes `block` to the file and optionally fsyncs. Caller must hold
  /// io_mutex_; returns bytes written.
  common::Status write_block(const std::string& block, bool sync);

  JournalOptions options_;
  common::Clock* clock_;
  telemetry::MetricsRegistry* metrics_;
  // Cached handles: registry lookups take a mutex, appends must not.
  telemetry::Counter* appends_counter_ = nullptr;
  telemetry::Counter* fsyncs_counter_ = nullptr;
  telemetry::Gauge* failed_gauge_ = nullptr;
  // Group-commit writer instrumentation (observed off the hot path, on
  // the writer thread): events per fsynced batch, and wall seconds per
  // write+fsync cycle (real IO time — intentionally NOT the virtual
  // clock, which cannot see disk stalls).
  telemetry::HistogramMetric* batch_events_hist_ = nullptr;
  telemetry::HistogramMetric* commit_seconds_hist_ = nullptr;
  telemetry::EventLog* events_ = nullptr;
  std::function<void(const std::string&)> fail_hook_;
  std::function<void()> heartbeat_;

  std::string path_;
  int fd_ = -1;
  JournalFormat active_format_ = JournalFormat::kBinaryV2;

  mutable std::mutex mutex_;           // pending buffer + counters
  std::condition_variable work_cv_;    // appenders -> writer
  std::condition_variable durable_cv_; // writer -> flush() waiters
  std::deque<PendingEvent> pending_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t last_append_seq_ = 0;  // highest seq actually appended
  std::uint64_t durable_seq_ = 0;   // highest seq written + fsynced
  std::uint64_t written_seq_ = 0;   // highest seq written to the fd
  std::uint64_t file_bytes_ = 0;
  std::uint64_t file_events_ = 0;
  /// Bumped by drop_through; the writer skips its byte/event counter
  /// increments when a rewrite already accounted for its block.
  std::uint64_t rewrite_epoch_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::optional<common::Error> io_error_;  // sticky first write failure
  /// Mirrors io_error_.has_value() for the lock-free has_failed(); the
  /// release store in fail_locked() happens after io_error_ is set.
  std::atomic<bool> failed_{false};
  bool flush_requested_ = false;
  bool stop_ = false;

  std::mutex io_mutex_;  // serializes file writes vs. compaction rewrite
  /// Replication ship cursor (guarded by io_mutex_): the last seq served
  /// by read_segment and the file offset just past its frame, so a
  /// follower pulling sequentially re-reads only new bytes. Reset by
  /// drop_through — the rewrite invalidates offsets.
  std::uint64_t ship_cursor_seq_ = 0;
  std::uint64_t ship_cursor_offset_ = 0;
  /// Payloads already embedded in the current journal segment, keyed by
  /// "<user>|<fingerprint>" (writer-thread dedup); cleared by
  /// drop_through(). Scoping by user means a crafted fingerprint
  /// collision can only ever alias a user's own programs, never swap
  /// another user's circuit in at recovery.
  std::mutex payload_mutex_;
  std::unordered_set<std::string> embedded_payloads_;
  /// One-entry fingerprint memo for the serialization path: parameter
  /// sweeps submit thousands of jobs sharing one Payload object (see
  /// Dispatcher's shared_ptr submit overload), and hashing the identical
  /// program body per event was the writer's second-largest cost. Keyed
  /// by object identity; holding the shared_ptr pins the address so it
  /// cannot be recycled by a new payload while cached. Only touched by
  /// the serializing thread (writer thread, or the appender under mutex_
  /// in kAlways mode), so it needs no lock of its own.
  std::shared_ptr<const quantum::Payload> fp_memo_payload_;
  std::uint64_t fp_memo_hash_ = 0;
  std::thread writer_;
};

}  // namespace qcenv::store
