#include "store/fault_injector.hpp"

namespace qcenv::store {

namespace {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace

const char* to_string(FsOp op) noexcept {
  switch (op) {
    case FsOp::kJournalWrite: return "journal_write";
    case FsOp::kJournalFsync: return "journal_fsync";
    case FsOp::kAtomicWrite: return "atomic_write";
    case FsOp::kAtomicFsync: return "atomic_fsync";
  }
  return "?";
}

void set_fault_injector(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* fault_injector() noexcept {
  return g_injector.load(std::memory_order_acquire);
}

FaultDecision CountingFaultInjector::on_write(FsOp op, const std::string&,
                                              std::size_t size) {
  std::scoped_lock lock(mutex_);
  if (op == FsOp::kAtomicWrite) {
    const std::uint64_t index = atomic_writes_++;
    if (fail_snapshots_) return FaultDecision::fail();
    if (index == atomic_fail_at_) {
      atomic_fail_at_ = kNever;  // one-shot
      return FaultDecision::fail();
    }
    return FaultDecision::pass();
  }
  if (op != FsOp::kJournalWrite) return FaultDecision::pass();
  const std::uint64_t index = journal_writes_++;
  if (index < fail_after_) return FaultDecision::pass();
  if (short_write_ && index == fail_after_ && size > 0) {
    // A short write is strictly short: a "tear" that keeps every byte
    // would leave a complete line behind a failure report.
    return FaultDecision::short_write(
        keep_bytes_ < size ? keep_bytes_ : size - 1);
  }
  return FaultDecision::fail();
}

bool CountingFaultInjector::on_fsync(FsOp op, const std::string&) {
  std::scoped_lock lock(mutex_);
  if (op == FsOp::kAtomicFsync) return fail_snapshots_;
  return fail_fsyncs_;
}

}  // namespace qcenv::store
