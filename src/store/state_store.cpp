#include "store/state_store.hpp"

#include <filesystem>

#define QCENV_LOG_COMPONENT "store"
#include "common/logging.hpp"

namespace qcenv::store {

using common::Json;
using common::Result;
using common::Status;

Json StoreStatus::to_json() const {
  Json out = Json::object();
  out["data_dir"] = data_dir;
  out["sync"] = to_string(sync);
  Json journal = Json::object();
  journal["bytes"] = journal_bytes;
  journal["events"] = journal_events;
  journal["last_seq"] = journal_last_seq;
  journal["appends_total"] = appends_total;
  journal["fsyncs_total"] = fsyncs_total;
  if (!journal_error.empty()) journal["error"] = journal_error;
  out["journal"] = std::move(journal);
  Json snapshot = Json::object();
  snapshot["jobs"] = snapshot_jobs;
  snapshot["sessions"] = snapshot_sessions;
  snapshot["created_ns"] = snapshot_created;
  snapshot["compactions_total"] = compactions_total;
  snapshot["events_since_compact"] = events_since_compact;
  out["snapshot"] = std::move(snapshot);
  out["replay"] = replay.to_json();
  return out;
}

StateStore::StateStore(StoreOptions options, common::Clock* clock,
                       telemetry::MetricsRegistry* metrics)
    : options_(std::move(options)), clock_(clock), metrics_(metrics) {}

StateStore::~StateStore() { shutdown(); }

std::string StateStore::journal_path() const {
  return options_.data_dir + "/journal.log";
}

std::string StateStore::snapshot_path() const {
  return options_.data_dir + "/snapshot.json";
}

Result<RecoveredState> StateStore::open() {
  if (!options_.enabled()) {
    return common::err::failed_precondition(
        "store has no data_dir configured");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.data_dir, ec);
  if (ec) {
    return common::err::io("cannot create store data dir '" +
                           options_.data_dir + "': " + ec.message());
  }
  std::vector<JournalEntry> entries;
  std::uint64_t prefix_bytes = 0;
  auto recovered = RecoveryReplayer::replay(journal_path(), snapshot_path(),
                                            &entries, &prefix_bytes, clock_);
  if (!recovered.ok()) return recovered.error();

  journal_ = std::make_unique<JobJournal>(options_.journal, clock_, metrics_);
  journal_->set_event_log(events_);
  if (fail_hook_) journal_->set_fail_stop_hook(fail_hook_);
  if (writer_heartbeat_) journal_->set_heartbeat(writer_heartbeat_);
  QCENV_RETURN_IF_ERROR(
      journal_->open(journal_path(), entries, prefix_bytes));
  // A snapshot watermark can outrun a freshly-truncated journal; never
  // reuse sequence numbers the snapshot already covers.
  journal_->reserve_through(recovered.value().last_seq);

  {
    std::scoped_lock lock(mutex_);
    replay_ = recovered.value().stats;
    snapshot_jobs_ = recovered.value().stats.snapshot_jobs;
    snapshot_sessions_ = recovered.value().stats.snapshot_sessions;
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter("store_recovery_replayed_jobs", {},
                  "jobs rebuilt from the store at daemon start")
        .increment(
            static_cast<double>(recovered.value().stats.recovered_jobs));
  }
  if (options_.compact_every_events > 0) {
    compactor_ = std::thread([this] { compactor_loop(); });
  }
  QCENV_LOG(Info) << "store open at '" << options_.data_dir << "': "
                  << recovered.value().stats.recovered_jobs << " job(s), "
                  << recovered.value().stats.recovered_sessions
                  << " session(s) recovered in "
                  << recovered.value().stats.replay_seconds << " s";
  return recovered;
}

void StateStore::set_snapshot_provider(SnapshotProvider provider) {
  std::scoped_lock lock(mutex_);
  provider_ = std::move(provider);
}

void StateStore::set_fail_stop_hook(
    std::function<void(const std::string&)> hook) {
  fail_hook_ = std::move(hook);
  if (journal_ != nullptr) journal_->set_fail_stop_hook(fail_hook_);
}

void StateStore::set_writer_heartbeat(std::function<void()> heartbeat) {
  writer_heartbeat_ = std::move(heartbeat);
  if (journal_ != nullptr) journal_->set_heartbeat(writer_heartbeat_);
}

void StateStore::append(const std::string& type, Json data,
                        common::TimeNs at) {
  if (journal_ == nullptr) return;
  journal_->append(type, std::move(data), at);
  note_append();
}

void StateStore::note_append() {
  // Lock-free window accounting: only the append that crosses the
  // threshold wakes the compactor (it re-checks under its own lock).
  const std::uint64_t count =
      events_since_compact_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.compact_every_events > 0 &&
      count == options_.compact_every_events) {
    compact_cv_.notify_one();
  }
}

void StateStore::session_created(const SessionRecord& session) {
  Json data = Json::object();
  data["session"] = session.to_json();
  append("session_created", std::move(data));
}

void StateStore::session_closed(const std::string& token) {
  Json data = Json::object();
  data["token"] = token;
  append("session_closed", std::move(data));
}

void StateStore::job_submitted(const JobRecord& job) {
  Json data = Json::object();
  data["job"] = job.to_json();
  append("job_submitted", std::move(data));
}

std::uint64_t StateStore::job_submitted(
    JobRecord meta, std::shared_ptr<const quantum::Payload> payload) {
  if (journal_ == nullptr) return 0;
  const std::uint64_t seq =
      journal_->append_job_submitted(std::move(meta), std::move(payload));
  note_append();
  return seq;
}

void StateStore::job_placed(std::uint64_t id, const std::string& resource) {
  Json data = Json::object();
  data["id"] = id;
  data["resource"] = resource;
  append("job_placed", std::move(data));
}

void StateStore::batch_dispatched(std::uint64_t id,
                                  const std::string& resource,
                                  std::uint64_t shots, common::TimeNs at) {
  Json data = Json::object();
  data["id"] = id;
  data["resource"] = resource;
  data["shots"] = shots;
  append("batch_dispatched", std::move(data), at);
}

void StateStore::batch_done(std::uint64_t id, std::uint64_t shots,
                            common::DurationNs qpu_ns, bool final_batch,
                            Json samples, common::TimeNs at) {
  Json data = Json::object();
  data["id"] = id;
  data["shots"] = shots;
  data["qpu_ns"] = qpu_ns;
  data["final"] = final_batch;
  data["samples"] = std::move(samples);
  append("batch_done", std::move(data), at);
}

void StateStore::batch_done(std::uint64_t id, std::uint64_t shots,
                            common::DurationNs qpu_ns, bool final_batch,
                            quantum::Samples samples, common::TimeNs at) {
  if (journal_ == nullptr) return;
  journal_->append_deferred(
      "batch_done",
      [id, shots, qpu_ns, final_batch, samples = std::move(samples)]() {
        Json data = Json::object();
        data["id"] = id;
        data["shots"] = shots;
        data["qpu_ns"] = qpu_ns;
        data["final"] = final_batch;
        data["samples"] = samples.to_json();
        return data;
      },
      at);
  note_append();
}

void StateStore::batch_failed(std::uint64_t id, const std::string& resource,
                              std::uint64_t shots,
                              const std::string& error) {
  Json data = Json::object();
  data["id"] = id;
  data["resource"] = resource;
  data["shots"] = shots;
  data["error"] = error;
  append("batch_failed", std::move(data));
}

void StateStore::job_completed(std::uint64_t id, common::TimeNs at) {
  Json data = Json::object();
  data["id"] = id;
  append("job_completed", std::move(data), at);
}

void StateStore::job_failed(std::uint64_t id, const std::string& error,
                            common::TimeNs at) {
  Json data = Json::object();
  data["id"] = id;
  data["error"] = error;
  append("job_failed", std::move(data), at);
}

void StateStore::job_cancelled(std::uint64_t id, const std::string& reason,
                               common::TimeNs at) {
  Json data = Json::object();
  data["id"] = id;
  if (!reason.empty()) data["error"] = reason;
  append("job_cancelled", std::move(data), at);
}

void StateStore::job_cancel_requested(std::uint64_t id) {
  Json data = Json::object();
  data["id"] = id;
  append("cancel_requested", std::move(data));
}

void StateStore::job_evicted(std::uint64_t id) {
  Json data = Json::object();
  data["id"] = id;
  append("job_evicted", std::move(data));
}

Status StateStore::flush() {
  if (journal_ == nullptr) {
    return common::err::failed_precondition("store not open");
  }
  return journal_->flush();
}

Status StateStore::compact() {
  // One compaction at a time: concurrent snapshot writes would interleave
  // on the same tmp file and both would then truncate the journal.
  std::scoped_lock compaction(compact_mutex_);
  SnapshotProvider provider;
  {
    std::scoped_lock lock(mutex_);
    provider = provider_;
  }
  if (!provider) {
    return common::err::failed_precondition(
        "store has no snapshot provider");
  }
  if (journal_ == nullptr) {
    return common::err::failed_precondition("store not open");
  }
  // The provider takes the daemon's subsystem locks; we hold none.
  StoreSnapshot snapshot = provider();
  snapshot.created = clock_->now();
  QCENV_RETURN_IF_ERROR(journal_->flush());
  QCENV_RETURN_IF_ERROR(snapshot.write_atomic(snapshot_path()));
  QCENV_RETURN_IF_ERROR(journal_->drop_through(
      std::min(snapshot.jobs_seq, snapshot.sessions_seq)));
  {
    std::scoped_lock lock(mutex_);
    ++compactions_;
    // Events appended while the snapshot was being captured are still in
    // the journal; count them so the next window triggers on schedule.
    events_since_compact_.store(journal_->event_count(),
                                std::memory_order_relaxed);
    snapshot_jobs_ = snapshot.jobs.size();
    snapshot_sessions_ = snapshot.sessions.size();
    snapshot_created_ = snapshot.created;
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter("store_compactions_total", {},
                  "snapshot+truncate compaction cycles")
        .increment();
  }
  QCENV_LOG(Info) << "compacted: snapshot holds " << snapshot.jobs.size()
                  << " job(s), " << snapshot.sessions.size()
                  << " session(s); journal now "
                  << journal_->size_bytes() << " bytes";
  return Status::ok_status();
}

void StateStore::shutdown() {
  {
    std::scoped_lock lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  compact_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
  if (journal_ != nullptr) {
    const Status flushed = journal_->flush();
    if (!flushed.ok()) {
      QCENV_LOG(Error) << "final flush failed: " << flushed.to_string();
    }
  }
}

void StateStore::compactor_loop() {
  while (true) {
    {
      std::unique_lock lock(mutex_);
      // Bounded wait rather than a pure notify: the threshold-crossing
      // append signals without holding this mutex, so a wakeup can race
      // the predicate check; the timeout re-arms it.
      compact_cv_.wait_for(lock, std::chrono::milliseconds(500), [&] {
        return stop_ ||
               (provider_ != nullptr &&
                events_since_compact_.load(std::memory_order_relaxed) >=
                    options_.compact_every_events);
      });
      if (stop_) return;
      if (provider_ == nullptr ||
          events_since_compact_.load(std::memory_order_relaxed) <
              options_.compact_every_events) {
        continue;
      }
    }
    const Status compacted = compact();
    if (!compacted.ok()) {
      QCENV_LOG(Error) << "auto-compaction failed: "
                       << compacted.to_string();
      // Avoid a hot failure loop: swallow this window's trigger.
      events_since_compact_.store(0, std::memory_order_relaxed);
    }
  }
}

StoreStatus StateStore::status() const {
  StoreStatus out;
  out.data_dir = options_.data_dir;
  out.sync = options_.journal.sync;
  if (journal_ != nullptr) {
    out.journal_bytes = journal_->size_bytes();
    out.journal_events = journal_->event_count();
    out.journal_last_seq = journal_->last_seq();
    out.appends_total = journal_->appends_total();
    out.fsyncs_total = journal_->fsyncs_total();
    const auto error = journal_->io_error();
    if (error.has_value()) out.journal_error = error->to_string();
  }
  std::scoped_lock lock(mutex_);
  out.compactions_total = compactions_;
  out.events_since_compact =
      events_since_compact_.load(std::memory_order_relaxed);
  out.snapshot_jobs = snapshot_jobs_;
  out.snapshot_sessions = snapshot_sessions_;
  out.snapshot_created = snapshot_created_;
  out.replay = replay_;
  return out;
}

}  // namespace qcenv::store
