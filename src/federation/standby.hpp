// StandbyDaemon: a hot standby kept warm by journal shipping.
//
// Runs a StandbyReplicator against the leader (HTTP in production, a
// FileReplicationSource under the virtual-time harness) and holds a
// lease: while pulls succeed, the leader is alive. When the lease
// expires (or an operator calls promote()), the standby fences the
// leader out by bumping the durable epoch file, drains whatever WAL it
// can still reach, and builds a full MiddlewareDaemon on the mirrored
// data dir — the existing recovery machinery restores sessions (tokens
// intact), the job table, the usage ledger and fair-share state exactly
// as a restart of the dead leader would have. Promotion is idempotent:
// a crash after the epoch fence but before the daemon exists simply
// re-runs promote(), bumping the epoch again.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"
#include "daemon/daemon.hpp"
#include "federation/replication.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"

namespace qcenv::federation {

struct StandbyOptions {
  /// The standby's own store dir: the replication mirror, and the data
  /// dir of the promoted daemon.
  std::string data_dir;
  std::uint64_t max_segment_bytes = 256 * 1024;
  common::DurationNs poll_interval = 50 * common::kMillisecond;
  /// Leader silence (no successful pull) after which the lease expires.
  common::DurationNs lease = 3 * common::kSecond;
  /// Take over on lease expiry without an operator (production HA).
  bool auto_promote = false;
  /// Spawn the background pull thread in start(). The virtual-time
  /// harness drives poll_once()/promote() directly instead.
  bool poll_thread = true;
};

class StandbyDaemon {
 public:
  /// Builds the daemon this standby promotes into, bound to the mirrored
  /// data dir. Supplied by the caller — it knows the fleet, options and
  /// clock — so this module needs nothing of daemon construction.
  using DaemonFactory =
      std::function<common::Result<std::unique_ptr<daemon::MiddlewareDaemon>>(
          const std::string& data_dir)>;

  StandbyDaemon(StandbyOptions options, ReplicationSource* source,
                DaemonFactory factory, common::Clock* clock,
                telemetry::MetricsRegistry* metrics,
                telemetry::EventLog* events);
  ~StandbyDaemon();
  StandbyDaemon(const StandbyDaemon&) = delete;
  StandbyDaemon& operator=(const StandbyDaemon&) = delete;

  common::Status start();
  void stop();

  /// One replication pull (virtual-time harness entry point).
  common::Result<std::size_t> poll_once();

  bool lease_expired(common::TimeNs now) const;
  bool promoted() const;

  /// Fence -> final drain -> build the daemon on the mirror. Returns the
  /// promoted daemon (owned by this object). Idempotent across a crash
  /// between the fence and the daemon build.
  common::Result<daemon::MiddlewareDaemon*> promote();

  /// Test/simtest injection: invoked after the epoch fence is durable
  /// but before the daemon is built — the mid-promotion crash window.
  /// A throwing/flagging hook models the standby dying right there.
  void set_promotion_crash_hook(std::function<common::Status()> hook);

  daemon::MiddlewareDaemon* promoted_daemon();
  /// Transfers ownership of the promoted daemon to the caller (nullptr if
  /// not promoted). Lets a harness keep the daemon alive while tearing
  /// the standby machinery down and standing up a fresh mirror.
  std::unique_ptr<daemon::MiddlewareDaemon> release_daemon();
  StandbyReplicator& replicator() noexcept { return replicator_; }
  std::uint64_t epoch() const;
  common::Json status_json() const;

 private:
  void poll_loop();

  StandbyOptions options_;
  DaemonFactory factory_;
  common::Clock* clock_;
  telemetry::EventLog* events_;
  StandbyReplicator replicator_;

  mutable std::mutex mutex_;
  std::function<common::Status()> crash_hook_;
  std::unique_ptr<daemon::MiddlewareDaemon> daemon_;
  std::uint64_t epoch_ = 0;
  common::TimeNs started_at_ = -1;
  bool promoted_ = false;
  bool stop_ = false;
  std::thread poller_;
};

}  // namespace qcenv::federation
