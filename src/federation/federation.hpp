// Federation: a broker-of-brokers across middleware daemons.
//
// Each daemon advertises its fleet (healthy resources, mean calibration
// score per resource class — ResourceBroker::summarize) plus its queue
// depth on `GET /admin/federation`. The FederationRouter polls its peers,
// scores them, and when the local daemon cannot take a submission (fleet
// down, queue saturated, or demoted to standby) picks the best peer and
// forwards the job over the peer's admin ingress. Forwarding failure
// falls back to the local queue — the cross-daemon analogue of the
// dispatcher's zero-shot-loss requeue: a submission always lands in
// exactly one daemon's durable queue, never nowhere.
//
// Leadership is epoch-fenced: every promotion bumps a durable `epoch`
// file in the data dir, replication responses carry the leader's epoch,
// and a follower rejects WAL from a leader older than one it has already
// heard — a partitioned ex-leader cannot roll a promoted standby back.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "common/result.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"

namespace qcenv::federation {

enum class Role { kLeader, kStandby };

const char* to_string(Role role) noexcept;

/// One remote daemon this one federates with.
struct PeerConfig {
  std::string name;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Admin key for the peer's /admin/federation surface.
  std::string admin_key;
};

struct FederationOptions {
  bool enabled = false;
  /// This daemon's name in the federation (peer lists refer to it).
  std::string self = "daemon";
  std::vector<PeerConfig> peers;
  common::DurationNs poll_interval = common::kSecond;
  /// Leader silence (no successful replication pull / status poll) after
  /// which a standby's lease on the leader expires and takeover begins.
  common::DurationNs lease = 3 * common::kSecond;
  /// Local queue depth at which submissions start considering remote
  /// placement.
  std::size_t forward_queue_threshold = 64;
  /// Spawn the background peer-poll thread in start(). Tests and the
  /// virtual-time harness drive poll_once() instead.
  bool poll_thread = true;
};

/// Last polled view of one peer.
struct PeerView {
  PeerConfig config;
  bool reachable = false;
  common::TimeNs last_seen = -1;
  std::uint64_t epoch = 0;
  Role role = Role::kLeader;
  std::size_t queue_depth = 0;
  std::size_t healthy_resources = 0;
  double mean_score = 0.0;
  /// Mean calibration score per resource class (qrmi type name).
  std::map<std::string, double> class_scores;

  common::Json to_json() const;
};

/// Durable leader-epoch fencing token: `<data_dir>/epoch`, one decimal
/// number, written atomically. Absent file reads as epoch 0.
common::Result<std::uint64_t> read_epoch(const std::string& data_dir);
common::Status write_epoch(const std::string& data_dir, std::uint64_t epoch);

class FederationRouter {
 public:
  /// Everything the routing decision needs from the local daemon;
  /// supplied as a callback so this module never depends on daemon
  /// headers.
  struct LocalStatus {
    std::size_t queue_depth = 0;
    std::size_t healthy_resources = 0;
    double mean_score = 0.0;
  };
  using LocalStatusFn = std::function<LocalStatus()>;

  /// What a forwarded submission settled on at the remote daemon.
  struct Forwarded {
    std::uint64_t remote_id = 0;
    std::string peer;
    std::string resource;
  };

  FederationRouter(FederationOptions options, LocalStatusFn local_status,
                   common::Clock* clock,
                   telemetry::MetricsRegistry* metrics,
                   telemetry::EventLog* events);
  ~FederationRouter();
  FederationRouter(const FederationRouter&) = delete;
  FederationRouter& operator=(const FederationRouter&) = delete;

  void start();
  void stop();

  /// Refreshes every peer's view over HTTP (one GET per peer). The
  /// production poll thread calls this on its cadence; tests call it
  /// directly.
  void poll_once(common::TimeNs now);

  /// Whether a submission for `resource_class` ("" = any) should leave
  /// this daemon, and for which peer. Local wins whenever it can take
  /// the job (healthy fleet, queue below the threshold); otherwise the
  /// reachable peer with the best score-per-load wins. nullopt = keep it
  /// local.
  std::optional<std::string> choose_peer(const std::string& resource_class);

  /// Forwards one submission to `peer` (POST /admin/federation/submit).
  /// Any transport or remote error returns the error — the caller falls
  /// back to the local queue, so the job is never lost.
  common::Result<Forwarded> forward(const std::string& peer,
                                    const std::string& user,
                                    const std::string& partition,
                                    const common::Json& payload);

  Role role() const;
  /// Promote/demote flip the role; promotion bumps and persists the epoch
  /// in `data_dir` when one is configured (see set_data_dir).
  common::Result<std::uint64_t> promote();
  void demote();
  std::uint64_t epoch() const;
  void set_epoch(std::uint64_t epoch);
  /// Data dir holding the durable epoch file (usually the store's).
  /// Empty keeps the epoch in memory only.
  void set_data_dir(std::string data_dir);

  std::vector<PeerView> peers() const;
  const FederationOptions& options() const noexcept { return options_; }
  /// The /admin/federation payload: self, role, epoch, peers.
  common::Json status_json() const;

 private:
  void poll_loop();
  void apply_peer_status(PeerView& peer, const common::Json& status,
                         common::TimeNs now);

  FederationOptions options_;
  LocalStatusFn local_status_;
  common::Clock* clock_;
  telemetry::EventLog* events_;
  telemetry::Gauge* epoch_gauge_ = nullptr;
  telemetry::Gauge* role_gauge_ = nullptr;
  telemetry::Counter* forwards_ = nullptr;
  telemetry::Counter* forward_failures_ = nullptr;
  telemetry::Counter* promotions_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<PeerView> peers_;
  Role role_ = Role::kLeader;
  std::uint64_t epoch_ = 0;
  std::string data_dir_;
  bool stop_ = false;
  std::thread poller_;
};

}  // namespace qcenv::federation
