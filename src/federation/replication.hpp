// Journal shipping: how the hot standby stays warm.
//
// The leader's JobJournal serves raw v2 WAL segments (whole CRC-framed
// chunks, capped at the durable watermark); the StandbyReplicator pulls
// them through a ReplicationSource, re-verifies every frame with the same
// CRC decoder replay uses, and appends the clean prefix to its own
// journal.log — so the standby's file is byte-for-byte the leader's
// durable prefix. A torn chunk (cut stream, bit rot in transit) keeps its
// valid prefix and is re-requested from the last good seq: replication
// never applies a frame the leader didn't write, and never loses one the
// leader made durable. When the follower's cursor predates the leader's
// compaction watermark it catches up from the snapshot file instead,
// then resumes WAL pulls above the snapshot's watermark.
//
// Sources:
//   HttpReplicationSource  production — GET /admin/replication/{wal,
//                          snapshot} on the leader over net/.
//   FileReplicationSource  reads a leader data dir straight off local
//                          disk: the virtual-time simtest harness, bench,
//                          and post-mortem drains of a dead leader's
//                          surviving disk. Carries the simtest fault
//                          hooks (partition, torn segment).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "telemetry/events.hpp"
#include "telemetry/lag.hpp"
#include "telemetry/metrics.hpp"

namespace qcenv::federation {

/// Transport-level WAL segment: store::WalSegment plus the leader's
/// fencing epoch.
struct WalChunk {
  bool snapshot_needed = false;
  std::uint64_t first_seq = 0;
  std::uint64_t end_seq = 0;
  std::uint64_t durable_seq = 0;
  std::uint64_t leader_epoch = 0;
  std::string bytes;
};

struct SnapshotChunk {
  /// Raw snapshot.json contents, shipped verbatim.
  std::string bytes;
  /// Journal events with seq <= watermark are folded into the snapshot;
  /// WAL pulls resume above it.
  std::uint64_t watermark = 0;
  std::uint64_t leader_epoch = 0;
};

class ReplicationSource {
 public:
  virtual ~ReplicationSource() = default;
  virtual common::Result<WalChunk> fetch_wal(std::uint64_t after_seq,
                                             std::uint64_t max_bytes) = 0;
  virtual common::Result<SnapshotChunk> fetch_snapshot() = 0;
};

class FileReplicationSource : public ReplicationSource {
 public:
  explicit FileReplicationSource(std::string data_dir);

  /// Re-point at a new leader's data dir (after a promotion).
  void set_data_dir(std::string data_dir);
  /// Simtest fault hooks: a partitioned source fails every fetch; a torn
  /// segment cuts the next non-empty WAL chunk mid-frame and flips a byte
  /// in it (both failure modes of a real link at once).
  void set_partitioned(bool partitioned);
  void tear_next_segment();

  common::Result<WalChunk> fetch_wal(std::uint64_t after_seq,
                                     std::uint64_t max_bytes) override;
  common::Result<SnapshotChunk> fetch_snapshot() override;

 private:
  std::mutex mutex_;
  std::string dir_;
  bool partitioned_ = false;
  bool tear_next_ = false;
  /// Resume cursor so steady-state pulls read only the journal's new
  /// tail instead of re-scanning the whole file each poll. Keyed to the
  /// file's inode: compaction replaces the journal atomically (rename),
  /// so an inode change invalidates the cursor and forces a full rescan.
  std::uint64_t cursor_seq_ = 0;
  std::uint64_t cursor_offset_ = 0;
  std::uint64_t cursor_inode_ = 0;
};

class HttpReplicationSource : public ReplicationSource {
 public:
  HttpReplicationSource(std::uint16_t leader_port, std::string admin_key);

  common::Result<WalChunk> fetch_wal(std::uint64_t after_seq,
                                     std::uint64_t max_bytes) override;
  common::Result<SnapshotChunk> fetch_snapshot() override;

 private:
  std::uint16_t port_;
  std::string admin_key_;
};

struct ReplicatorOptions {
  /// The standby's own store dir; journal.log and snapshot.json in it are
  /// mirrors of the leader's, promotion-ready at every instant.
  std::string data_dir;
  std::uint64_t max_segment_bytes = 256 * 1024;
};

class StandbyReplicator {
 public:
  struct Stats {
    std::uint64_t segments = 0;
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
    std::uint64_t torn_segments = 0;
    std::uint64_t snapshot_catchups = 0;
    std::uint64_t fetch_failures = 0;
  };

  /// Resumes from whatever journal.log/snapshot.json already exist in
  /// data_dir (a restarted standby re-pulls only what it is missing).
  StandbyReplicator(ReplicatorOptions options, ReplicationSource* source,
                    common::Clock* clock,
                    telemetry::MetricsRegistry* metrics,
                    telemetry::EventLog* events);

  /// One pull + apply. Returns the frames applied; an error means the
  /// fetch failed (partition) or the leader is fenced below an epoch we
  /// have already seen.
  common::Result<std::size_t> poll_once();

  /// Pulls until the mirror has every durable event the source can
  /// serve (post-mortem drain before promotion, tests).
  common::Status catch_up();

  std::uint64_t applied_seq() const;
  /// Leader's durable high-water mark at the last successful pull.
  std::uint64_t leader_seq() const;
  std::uint64_t leader_epoch() const;
  std::uint64_t lag_events() const;
  common::TimeNs last_success() const;
  Stats stats() const;
  const telemetry::LagTracker& lag() const { return lag_; }

 private:
  common::Status apply_snapshot(const SnapshotChunk& snapshot);
  common::Status append_frames(std::string_view bytes);

  ReplicatorOptions options_;
  ReplicationSource* source_;
  common::Clock* clock_;
  telemetry::EventLog* events_;
  telemetry::Gauge* lag_gauge_ = nullptr;
  telemetry::Counter* segments_counter_ = nullptr;
  telemetry::Counter* bytes_counter_ = nullptr;
  telemetry::Counter* torn_counter_ = nullptr;
  telemetry::Counter* catchup_counter_ = nullptr;
  telemetry::LagTracker lag_;

  mutable std::mutex mutex_;
  std::uint64_t applied_ = 0;
  std::uint64_t leader_seq_ = 0;
  std::uint64_t leader_epoch_ = 0;
  common::TimeNs last_success_ = -1;
  Stats stats_;
};

}  // namespace qcenv::federation
