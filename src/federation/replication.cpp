#include "federation/replication.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "federation/federation.hpp"
#include "net/http_client.hpp"
#include "store/fsio.hpp"
#include "store/journal.hpp"
#include "store/snapshot.hpp"

#define QCENV_LOG_COMPONENT "federation.replication"
#include "common/logging.hpp"

namespace qcenv::federation {

using common::Result;
using common::Status;

namespace {

std::string journal_path(const std::string& dir) {
  return dir + "/journal.log";
}

std::string snapshot_path(const std::string& dir) {
  return dir + "/snapshot.json";
}

Result<std::string> read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return common::err::not_found("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Strict decimal parse for replication response headers.
Result<std::uint64_t> header_u64(const net::HttpResponse& response,
                                 const std::string& name) {
  const auto it = response.headers.find(name);
  if (it == response.headers.end()) {
    return common::err::protocol("replication response is missing the " +
                                 name + " header");
  }
  const std::string& raw = it->second;
  if (raw.empty() ||
      raw.find_first_not_of("0123456789") != std::string::npos) {
    return common::err::protocol("replication header " + name +
                                 " is not a number: '" + raw + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw.c_str(), &end, 10);
  if (errno == ERANGE || end != raw.c_str() + raw.size()) {
    return common::err::protocol("replication header " + name +
                                 " is out of range");
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

FileReplicationSource::FileReplicationSource(std::string data_dir)
    : dir_(std::move(data_dir)) {}

void FileReplicationSource::set_data_dir(std::string data_dir) {
  std::scoped_lock lock(mutex_);
  dir_ = std::move(data_dir);
  cursor_seq_ = 0;
  cursor_offset_ = 0;
  cursor_inode_ = 0;
}

void FileReplicationSource::set_partitioned(bool partitioned) {
  std::scoped_lock lock(mutex_);
  partitioned_ = partitioned;
}

void FileReplicationSource::tear_next_segment() {
  std::scoped_lock lock(mutex_);
  tear_next_ = true;
}

Result<WalChunk> FileReplicationSource::fetch_wal(std::uint64_t after_seq,
                                                  std::uint64_t max_bytes) {
  std::scoped_lock lock(mutex_);
  if (partitioned_) {
    return common::err::unavailable("replication link is partitioned");
  }
  const std::string path = journal_path(dir_);
  struct ::stat st {};
  const bool have_stat = ::stat(path.c_str(), &st) == 0;
  const std::uint64_t inode =
      have_stat ? static_cast<std::uint64_t>(st.st_ino) : 0;
  const std::uint64_t file_size =
      have_stat ? static_cast<std::uint64_t>(st.st_size) : 0;
  WalChunk chunk;
  bool served = false;
  if (have_stat && cursor_offset_ > 0 && after_seq != 0 &&
      after_seq == cursor_seq_ && inode == cursor_inode_ &&
      file_size >= cursor_offset_) {
    // Steady-state fast path: the journal grew in place since the last
    // pull, so only the new tail needs reading. Re-walking the whole file
    // every poll is O(journal) each time — an ever-growing drag on the
    // leader's disk that the measured submit path ends up paying.
    if (file_size == cursor_offset_) {
      served = true;  // nothing new since the last pull
    } else {
      const std::uint64_t want =
          std::min(file_size - cursor_offset_, max_bytes);
      std::ifstream in(path, std::ios::binary);
      if (in.is_open()) {
        in.seekg(static_cast<std::streamoff>(cursor_offset_));
        std::string bytes(want, '\0');
        in.read(bytes.data(), static_cast<std::streamsize>(want));
        if (in.gcount() > 0) {
          bytes.resize(static_cast<std::size_t>(in.gcount()));
          const auto prefix =
              store::JobJournal::validate_frames(bytes, after_seq);
          if (prefix.frames > 0) {
            // Journal seqs are dense, so the frame at the cursor is
            // exactly after_seq + 1.
            chunk.first_seq = after_seq + 1;
            chunk.end_seq = prefix.end_seq;
            chunk.durable_seq = prefix.end_seq;
            chunk.bytes = bytes.substr(0, prefix.bytes);
            cursor_seq_ = prefix.end_seq;
            cursor_offset_ += prefix.bytes;
            served = true;
          }
          // 0 clean frames with bytes present: either an append caught
          // mid-write or the file was atomically replaced onto a reused
          // inode — the full rescan below sorts both out.
        }
      }
    }
  }
  if (!served) {
    auto segment =
        store::JobJournal::read_segment_file(path, after_seq, max_bytes);
    if (!segment.ok()) return segment.error();
    chunk.snapshot_needed = segment.value().snapshot_needed;
    chunk.first_seq = segment.value().first_seq;
    chunk.end_seq = segment.value().end_seq;
    chunk.durable_seq = segment.value().durable_seq;
    chunk.bytes = std::move(segment.value().bytes);
    if (have_stat && segment.value().end_seq != 0 &&
        segment.value().next_offset > 0) {
      cursor_seq_ = segment.value().end_seq;
      cursor_offset_ = segment.value().next_offset;
      cursor_inode_ = inode;
    }
  }
  if (chunk.bytes.empty() && !chunk.snapshot_needed) {
    // An empty journal hides a compaction from the frame scan: when the
    // leader folded everything (including the follower's gap) into the
    // snapshot, only snapshot.json knows how far durable state reaches.
    auto snapshot = store::StoreSnapshot::load(snapshot_path(dir_));
    if (snapshot.ok() && snapshot.value().has_value()) {
      const std::uint64_t watermark = std::min(
          snapshot.value()->jobs_seq, snapshot.value()->sessions_seq);
      if (watermark > after_seq) {
        chunk.snapshot_needed = true;
        chunk.durable_seq = std::max(chunk.durable_seq, watermark);
      }
    }
  }
  auto epoch = read_epoch(dir_);
  chunk.leader_epoch = epoch.ok() ? epoch.value() : 0;
  if (tear_next_ && !chunk.bytes.empty()) {
    // Both failure modes of a real link at once: the stream is cut
    // mid-frame AND a surviving byte is flipped. The receiver must keep
    // only the CRC-clean whole-frame prefix and re-request the rest.
    tear_next_ = false;
    if (chunk.bytes.size() > 6) {
      chunk.bytes.resize(chunk.bytes.size() - 5);
    }
    chunk.bytes.back() = static_cast<char>(chunk.bytes.back() ^ 0x5A);
  }
  return chunk;
}

Result<SnapshotChunk> FileReplicationSource::fetch_snapshot() {
  std::scoped_lock lock(mutex_);
  if (partitioned_) {
    return common::err::unavailable("replication link is partitioned");
  }
  const std::string path = snapshot_path(dir_);
  auto loaded = store::StoreSnapshot::load(path);
  if (!loaded.ok()) return loaded.error();
  if (!loaded.value().has_value()) {
    return common::err::not_found("leader has no snapshot at '" + path +
                                  "'");
  }
  auto bytes = read_whole_file(path);
  if (!bytes.ok()) return bytes.error();
  SnapshotChunk chunk;
  chunk.bytes = std::move(bytes).value();
  chunk.watermark = std::min(loaded.value()->jobs_seq,
                             loaded.value()->sessions_seq);
  auto epoch = read_epoch(dir_);
  chunk.leader_epoch = epoch.ok() ? epoch.value() : 0;
  return chunk;
}

HttpReplicationSource::HttpReplicationSource(std::uint16_t leader_port,
                                             std::string admin_key)
    : port_(leader_port), admin_key_(std::move(admin_key)) {}

Result<WalChunk> HttpReplicationSource::fetch_wal(std::uint64_t after_seq,
                                                  std::uint64_t max_bytes) {
  net::HttpClient client(port_);
  client.set_default_header("X-Admin-Key", admin_key_);
  auto response = client.get("/admin/replication/wal?after=" +
                             std::to_string(after_seq) + "&max_bytes=" +
                             std::to_string(max_bytes));
  if (!response.ok()) return response.error();
  if (response.value().status != 200) {
    return common::err::unavailable("leader answered HTTP " +
                                    std::to_string(response.value().status) +
                                    " to a WAL pull");
  }
  WalChunk chunk;
  auto first = header_u64(response.value(), "X-Replication-First-Seq");
  auto end = header_u64(response.value(), "X-Replication-End-Seq");
  auto durable = header_u64(response.value(), "X-Replication-Durable-Seq");
  auto snapshot = header_u64(response.value(),
                             "X-Replication-Snapshot-Needed");
  auto epoch = header_u64(response.value(), "X-Replication-Epoch");
  if (!first.ok()) return first.error();
  if (!end.ok()) return end.error();
  if (!durable.ok()) return durable.error();
  if (!snapshot.ok()) return snapshot.error();
  if (!epoch.ok()) return epoch.error();
  chunk.first_seq = first.value();
  chunk.end_seq = end.value();
  chunk.durable_seq = durable.value();
  chunk.snapshot_needed = snapshot.value() != 0;
  chunk.leader_epoch = epoch.value();
  chunk.bytes = std::move(response.value().body);
  return chunk;
}

Result<SnapshotChunk> HttpReplicationSource::fetch_snapshot() {
  net::HttpClient client(port_);
  client.set_default_header("X-Admin-Key", admin_key_);
  auto response = client.get("/admin/replication/snapshot");
  if (!response.ok()) return response.error();
  if (response.value().status == 404) {
    return common::err::not_found("leader has no snapshot yet");
  }
  if (response.value().status != 200) {
    return common::err::unavailable("leader answered HTTP " +
                                    std::to_string(response.value().status) +
                                    " to a snapshot pull");
  }
  auto watermark = header_u64(response.value(), "X-Replication-Watermark");
  auto epoch = header_u64(response.value(), "X-Replication-Epoch");
  if (!watermark.ok()) return watermark.error();
  if (!epoch.ok()) return epoch.error();
  SnapshotChunk chunk;
  chunk.watermark = watermark.value();
  chunk.leader_epoch = epoch.value();
  chunk.bytes = std::move(response.value().body);
  return chunk;
}

StandbyReplicator::StandbyReplicator(ReplicatorOptions options,
                                     ReplicationSource* source,
                                     common::Clock* clock,
                                     telemetry::MetricsRegistry* metrics,
                                     telemetry::EventLog* events)
    : options_(std::move(options)),
      source_(source),
      clock_(clock),
      events_(events) {
  if (metrics != nullptr) {
    lag_gauge_ = &metrics->gauge(
        "federation_replication_lag_events", {},
        "events the standby mirror trails the leader's durable WAL by");
    segments_counter_ = &metrics->counter(
        "federation_wal_segments_total", {},
        "WAL segments applied to the standby mirror");
    bytes_counter_ = &metrics->counter(
        "federation_wal_bytes_total", {},
        "WAL bytes applied to the standby mirror");
    torn_counter_ = &metrics->counter(
        "federation_torn_segments_total", {},
        "shipped segments that arrived torn/corrupt and were re-requested");
    catchup_counter_ = &metrics->counter(
        "federation_snapshot_catchups_total", {},
        "snapshot catch-ups (follower cursor predated the leader's "
        "compaction watermark)");
  }
  // Resume from whatever mirror already exists: a restarted standby
  // re-pulls only what it is missing. A mirror that fails to parse is
  // reset — it will be rebuilt from the snapshot + WAL.
  const std::string journal = journal_path(options_.data_dir);
  auto snapshot = store::StoreSnapshot::load(snapshot_path(options_.data_dir));
  if (snapshot.ok() && snapshot.value().has_value()) {
    applied_ = std::min(snapshot.value()->jobs_seq,
                        snapshot.value()->sessions_seq);
  }
  auto entries = store::JobJournal::read_file(journal);
  if (entries.ok()) {
    if (!entries.value().empty()) {
      applied_ = std::max(applied_, entries.value().back().seq);
    }
  } else {
    QCENV_LOG(Warn) << "resetting unreadable standby mirror '" << journal
                    << "': " << entries.error().message();
    (void)store::write_file_atomic(journal, store::wal_v2_magic());
  }
}

Status StandbyReplicator::append_frames(std::string_view bytes) {
  const std::string path = journal_path(options_.data_dir);
  // Seed the magic header the first time — the mirror must be openable
  // by the same JobJournal code the leader uses.
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe.is_open() || probe.peek() == std::ifstream::traits_type::eof()) {
      QCENV_RETURN_IF_ERROR(
          store::write_file_atomic(path, store::wal_v2_magic()));
    }
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0600);
  if (fd < 0) {
    return common::err::io("cannot open standby mirror '" + path +
                           "': " + std::strerror(errno));
  }
  const char* data = bytes.data();
  std::size_t size = bytes.size();
  while (size > 0) {
    const ssize_t wrote = ::write(fd, data, size);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      return common::err::io("cannot append to standby mirror '" + path +
                             "': " + std::strerror(saved));
    }
    data += wrote;
    size -= static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    return common::err::io("cannot fsync standby mirror '" + path +
                           "': " + std::strerror(saved));
  }
  ::close(fd);
  return Status::ok_status();
}

Status StandbyReplicator::apply_snapshot(const SnapshotChunk& snapshot) {
  QCENV_RETURN_IF_ERROR(store::write_file_atomic(
      snapshot_path(options_.data_dir), snapshot.bytes));
  // The mirror's WAL tail predates the snapshot; reset it so the next
  // pull appends frames contiguous with the watermark.
  QCENV_RETURN_IF_ERROR(store::write_file_atomic(
      journal_path(options_.data_dir), store::wal_v2_magic()));
  applied_ = snapshot.watermark;
  ++stats_.snapshot_catchups;
  if (catchup_counter_ != nullptr) catchup_counter_->increment();
  if (events_ != nullptr) {
    events_->log(clock_->now(), telemetry::Severity::kInfo,
                 "replication_snapshot_catchup",
                 "standby mirror caught up from the leader snapshot "
                 "(watermark " + std::to_string(snapshot.watermark) + ")");
  }
  return Status::ok_status();
}

Result<std::size_t> StandbyReplicator::poll_once() {
  std::uint64_t after = 0;
  {
    std::scoped_lock lock(mutex_);
    after = applied_;
  }
  auto fetched = source_->fetch_wal(after, options_.max_segment_bytes);
  std::scoped_lock lock(mutex_);
  if (!fetched.ok()) {
    ++stats_.fetch_failures;
    return fetched.error();
  }
  const WalChunk& wal = fetched.value();
  if (wal.leader_epoch < leader_epoch_) {
    // Fencing: a partitioned ex-leader must not roll this mirror back.
    ++stats_.fetch_failures;
    return common::err::failed_precondition(
        "WAL source speaks epoch " + std::to_string(wal.leader_epoch) +
        " but epoch " + std::to_string(leader_epoch_) +
        " was already observed");
  }
  leader_epoch_ = std::max(leader_epoch_, wal.leader_epoch);
  leader_seq_ = std::max(leader_seq_, wal.durable_seq);
  std::size_t applied_frames = 0;
  if (wal.snapshot_needed) {
    auto snapshot = source_->fetch_snapshot();
    if (!snapshot.ok()) {
      ++stats_.fetch_failures;
      return snapshot.error();
    }
    if (snapshot.value().watermark > applied_) {
      QCENV_RETURN_IF_ERROR(apply_snapshot(snapshot.value()));
    }
  } else if (!wal.bytes.empty()) {
    const auto prefix =
        store::JobJournal::validate_frames(wal.bytes, applied_);
    if (prefix.bytes < wal.bytes.size()) {
      ++stats_.torn_segments;
      if (torn_counter_ != nullptr) torn_counter_->increment();
      if (events_ != nullptr) {
        events_->log(clock_->now(), telemetry::Severity::kWarn,
                     "replication_torn_segment",
                     "shipped WAL segment arrived torn after seq " +
                         std::to_string(prefix.end_seq == 0
                                            ? applied_
                                            : prefix.end_seq) +
                         "; clean prefix kept, rest re-requested");
      }
    }
    if (prefix.frames > 0) {
      QCENV_RETURN_IF_ERROR(append_frames(
          std::string_view(wal.bytes).substr(0, prefix.bytes)));
      applied_ = prefix.end_seq;
      applied_frames = static_cast<std::size_t>(prefix.frames);
      ++stats_.segments;
      stats_.frames += prefix.frames;
      stats_.bytes += prefix.bytes;
      if (segments_counter_ != nullptr) segments_counter_->increment();
      if (bytes_counter_ != nullptr) {
        bytes_counter_->increment(static_cast<double>(prefix.bytes));
      }
    }
  }
  last_success_ = clock_->now();
  const std::uint64_t lag =
      leader_seq_ > applied_ ? leader_seq_ - applied_ : 0;
  lag_.record(last_success_, lag);
  if (lag_gauge_ != nullptr) lag_gauge_->set(static_cast<double>(lag));
  return applied_frames;
}

Status StandbyReplicator::catch_up() {
  // Bounded only as a safety net — each iteration either advances the
  // cursor or proves it is caught up.
  for (int i = 0; i < 1000000; ++i) {
    auto applied = poll_once();
    if (!applied.ok()) return applied.error();
    std::scoped_lock lock(mutex_);
    if (applied.value() == 0 && applied_ >= leader_seq_) {
      return Status::ok_status();
    }
  }
  return common::err::internal("replication catch-up did not converge");
}

std::uint64_t StandbyReplicator::applied_seq() const {
  std::scoped_lock lock(mutex_);
  return applied_;
}

std::uint64_t StandbyReplicator::leader_seq() const {
  std::scoped_lock lock(mutex_);
  return leader_seq_;
}

std::uint64_t StandbyReplicator::leader_epoch() const {
  std::scoped_lock lock(mutex_);
  return leader_epoch_;
}

std::uint64_t StandbyReplicator::lag_events() const {
  std::scoped_lock lock(mutex_);
  return leader_seq_ > applied_ ? leader_seq_ - applied_ : 0;
}

common::TimeNs StandbyReplicator::last_success() const {
  std::scoped_lock lock(mutex_);
  return last_success_;
}

StandbyReplicator::Stats StandbyReplicator::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace qcenv::federation
