#include "federation/standby.hpp"

#include <algorithm>
#include <chrono>

#include "federation/federation.hpp"

#define QCENV_LOG_COMPONENT "federation.standby"
#include "common/logging.hpp"

namespace qcenv::federation {

using common::Result;
using common::Status;

StandbyDaemon::StandbyDaemon(StandbyOptions options,
                             ReplicationSource* source,
                             DaemonFactory factory, common::Clock* clock,
                             telemetry::MetricsRegistry* metrics,
                             telemetry::EventLog* events)
    : options_(std::move(options)),
      factory_(std::move(factory)),
      clock_(clock),
      events_(events),
      replicator_({options_.data_dir, options_.max_segment_bytes}, source,
                  clock, metrics, events) {
  auto epoch = read_epoch(options_.data_dir);
  if (epoch.ok()) epoch_ = epoch.value();
  started_at_ = clock_->now();
}

StandbyDaemon::~StandbyDaemon() { stop(); }

Status StandbyDaemon::start() {
  started_at_ = clock_->now();
  if (!options_.poll_thread) return Status::ok_status();
  {
    std::scoped_lock lock(mutex_);
    if (poller_.joinable()) {
      return common::err::failed_precondition("standby already started");
    }
    stop_ = false;
  }
  poller_ = std::thread([this] { poll_loop(); });
  return Status::ok_status();
}

void StandbyDaemon::stop() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  if (poller_.joinable()) poller_.join();
}

void StandbyDaemon::poll_loop() {
  const auto interval =
      std::chrono::nanoseconds(std::max<common::DurationNs>(
          options_.poll_interval, common::kMillisecond));
  while (true) {
    // Wall-clock cadence: the pull thread is production-only (the
    // virtual-time harness calls poll_once directly), and stop() must
    // not wait on a virtual sleep nobody will advance.
    std::this_thread::sleep_for(interval);
    {
      std::scoped_lock lock(mutex_);
      if (stop_ || promoted_) return;
    }
    (void)poll_once();
    if (options_.auto_promote && lease_expired(clock_->now())) {
      QCENV_LOG(Warn) << "leader lease expired; starting takeover";
      auto promoted = promote();
      if (!promoted.ok()) {
        QCENV_LOG(Error) << "takeover failed: "
                         << promoted.error().message();
      }
      return;
    }
  }
}

Result<std::size_t> StandbyDaemon::poll_once() {
  return replicator_.poll_once();
}

bool StandbyDaemon::lease_expired(common::TimeNs now) const {
  const common::TimeNs last = replicator_.last_success();
  const common::TimeNs anchor = last >= 0 ? last : started_at_;
  return now - anchor > options_.lease;
}

bool StandbyDaemon::promoted() const {
  std::scoped_lock lock(mutex_);
  return promoted_;
}

Result<daemon::MiddlewareDaemon*> StandbyDaemon::promote() {
  {
    std::scoped_lock lock(mutex_);
    if (promoted_ && daemon_ != nullptr) return daemon_.get();
    stop_ = true;  // no more background pulls once takeover starts
  }
  // Final drain: pull whatever the source can still serve. A dead,
  // unreachable leader fails here — promotion proceeds with the durable
  // prefix already mirrored (exactly what a restart of the leader itself
  // would recover).
  (void)replicator_.catch_up();
  // Fence first, THEN build: once the bumped epoch is durable, WAL from
  // the old leader (a lower epoch) is rejected everywhere, even if this
  // process dies before the daemon below exists.
  auto durable = read_epoch(options_.data_dir);
  if (!durable.ok()) return durable.error();
  const std::uint64_t next =
      std::max({durable.value(), replicator_.leader_epoch(), epoch_}) + 1;
  QCENV_RETURN_IF_ERROR(write_epoch(options_.data_dir, next));
  {
    std::scoped_lock lock(mutex_);
    epoch_ = next;
  }
  std::function<Status()> crash_hook;
  {
    std::scoped_lock lock(mutex_);
    crash_hook = crash_hook_;
  }
  if (crash_hook) {
    auto crashed = crash_hook();
    if (!crashed.ok()) return crashed.error();
  }
  if (!factory_) {
    return common::err::failed_precondition(
        "standby has no daemon factory to promote with");
  }
  auto built = factory_(options_.data_dir);
  if (!built.ok()) return built.error();
  std::scoped_lock lock(mutex_);
  daemon_ = std::move(built).value();
  promoted_ = true;
  if (events_ != nullptr) {
    events_->log(clock_->now(), telemetry::Severity::kWarn,
                 "leader_promoted",
                 "standby promoted on '" + options_.data_dir + "' (epoch " +
                     std::to_string(next) + ")");
  }
  return daemon_.get();
}

void StandbyDaemon::set_promotion_crash_hook(
    std::function<Status()> hook) {
  std::scoped_lock lock(mutex_);
  crash_hook_ = std::move(hook);
}

daemon::MiddlewareDaemon* StandbyDaemon::promoted_daemon() {
  std::scoped_lock lock(mutex_);
  return daemon_.get();
}

std::unique_ptr<daemon::MiddlewareDaemon> StandbyDaemon::release_daemon() {
  std::scoped_lock lock(mutex_);
  return std::move(daemon_);
}

std::uint64_t StandbyDaemon::epoch() const {
  std::scoped_lock lock(mutex_);
  return epoch_;
}

common::Json StandbyDaemon::status_json() const {
  common::Json out = common::Json::object();
  {
    std::scoped_lock lock(mutex_);
    out["role"] = promoted_ ? "leader" : "standby";
    out["epoch"] = static_cast<long long>(epoch_);
    out["promoted"] = promoted_;
  }
  out["applied_seq"] = static_cast<long long>(replicator_.applied_seq());
  out["leader_seq"] = static_cast<long long>(replicator_.leader_seq());
  out["lag_events"] = static_cast<long long>(replicator_.lag_events());
  out["lag"] = replicator_.lag().summary().to_json();
  const auto stats = replicator_.stats();
  out["segments"] = static_cast<long long>(stats.segments);
  out["bytes"] = static_cast<long long>(stats.bytes);
  out["torn_segments"] = static_cast<long long>(stats.torn_segments);
  out["snapshot_catchups"] =
      static_cast<long long>(stats.snapshot_catchups);
  out["fetch_failures"] = static_cast<long long>(stats.fetch_failures);
  return out;
}

}  // namespace qcenv::federation
