#include "federation/federation.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <fstream>

#include "net/http_client.hpp"
#include "store/fsio.hpp"
#include "store/records.hpp"

namespace qcenv::federation {

using common::Json;
using common::Result;
using common::Status;

const char* to_string(Role role) noexcept {
  switch (role) {
    case Role::kLeader: return "leader";
    case Role::kStandby: return "standby";
  }
  return "?";
}

Json PeerView::to_json() const {
  Json out = Json::object();
  out["name"] = config.name;
  out["host"] = config.host;
  out["port"] = static_cast<long long>(config.port);
  out["reachable"] = reachable;
  out["last_seen"] = static_cast<long long>(last_seen);
  out["epoch"] = static_cast<long long>(epoch);
  out["role"] = to_string(role);
  out["queue_depth"] = static_cast<long long>(queue_depth);
  out["healthy_resources"] = static_cast<long long>(healthy_resources);
  out["mean_score"] = mean_score;
  Json classes = Json::object();
  for (const auto& [name, score] : class_scores) classes[name] = score;
  out["class_scores"] = std::move(classes);
  return out;
}

namespace {

std::string epoch_path(const std::string& data_dir) {
  return data_dir + "/epoch";
}

}  // namespace

Result<std::uint64_t> read_epoch(const std::string& data_dir) {
  std::ifstream in(epoch_path(data_dir));
  if (!in.is_open()) return std::uint64_t{0};  // never promoted here
  std::string text;
  std::getline(in, text);
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return common::err::protocol("corrupt epoch file '" +
                                 epoch_path(data_dir) + "': '" + text + "'");
  }
  return static_cast<std::uint64_t>(std::stoull(text));
}

Status write_epoch(const std::string& data_dir, std::uint64_t epoch) {
  return store::write_file_atomic(epoch_path(data_dir),
                                  std::to_string(epoch) + "\n");
}

FederationRouter::FederationRouter(FederationOptions options,
                                   LocalStatusFn local_status,
                                   common::Clock* clock,
                                   telemetry::MetricsRegistry* metrics,
                                   telemetry::EventLog* events)
    : options_(std::move(options)),
      local_status_(std::move(local_status)),
      clock_(clock),
      events_(events) {
  for (const auto& config : options_.peers) {
    PeerView view;
    view.config = config;
    peers_.push_back(std::move(view));
  }
  if (metrics != nullptr) {
    epoch_gauge_ = &metrics->gauge(
        "federation_leader_epoch", {},
        "this daemon's leader-fencing epoch (bumped on every promotion)");
    role_gauge_ = &metrics->gauge(
        "federation_role", {},
        "1 while this daemon is the federation leader, 0 as standby");
    forwards_ = &metrics->counter(
        "federation_forwards_total", {},
        "submissions routed to a peer daemon");
    forward_failures_ = &metrics->counter(
        "federation_forward_failures_total", {},
        "peer forwards that failed and fell back to the local queue");
    promotions_ = &metrics->counter(
        "federation_promotions_total", {},
        "leader promotions performed by this daemon");
    role_gauge_->set(1);
  }
}

FederationRouter::~FederationRouter() { stop(); }

void FederationRouter::start() {
  if (!options_.enabled || !options_.poll_thread || peers_.empty()) return;
  {
    std::scoped_lock lock(mutex_);
    if (poller_.joinable()) return;
    stop_ = false;
  }
  poller_ = std::thread([this] { poll_loop(); });
}

void FederationRouter::stop() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  if (poller_.joinable()) poller_.join();
}

void FederationRouter::poll_loop() {
  // Wall-clock cadence on purpose: peer polling is production-only (the
  // virtual-time harness calls poll_once directly), and stop() must not
  // wait out a virtual sleep nobody will advance.
  const auto interval =
      std::chrono::nanoseconds(std::max<common::DurationNs>(
          options_.poll_interval, common::kMillisecond));
  while (true) {
    std::this_thread::sleep_for(interval);
    {
      std::scoped_lock lock(mutex_);
      if (stop_) return;
    }
    poll_once(clock_->now());
  }
}

void FederationRouter::apply_peer_status(PeerView& peer, const Json& status,
                                         common::TimeNs now) {
  peer.reachable = true;
  peer.last_seen = now;
  peer.epoch = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, store::int_or(status, "epoch", 0)));
  peer.role = status.at_or_null("role").is_string() &&
                      status.at_or_null("role").as_string() == "standby"
                  ? Role::kStandby
                  : Role::kLeader;
  peer.queue_depth = static_cast<std::size_t>(
      std::max<std::int64_t>(0, store::int_or(status, "queue_depth", 0)));
  const Json& fleet = status.at_or_null("fleet");
  peer.healthy_resources = static_cast<std::size_t>(
      std::max<std::int64_t>(0, store::int_or(fleet, "healthy", 0)));
  peer.mean_score = store::double_or(fleet, "mean_score", 0.0);
  peer.class_scores.clear();
  const Json& classes = fleet.at_or_null("class_scores");
  if (classes.is_object()) {
    for (const auto& [name, score] : classes.as_object()) {
      if (score.is_number()) peer.class_scores[name] = score.as_double();
    }
  }
}

void FederationRouter::poll_once(common::TimeNs now) {
  std::vector<PeerConfig> configs;
  {
    std::scoped_lock lock(mutex_);
    configs.reserve(peers_.size());
    for (const auto& peer : peers_) configs.push_back(peer.config);
  }
  for (const auto& config : configs) {
    net::HttpClient client(config.port);
    if (!config.admin_key.empty()) {
      client.set_default_header("X-Admin-Key", config.admin_key);
    }
    auto response = client.get("/admin/federation");
    bool up = false;
    Json status;
    if (response.ok() && response.value().status == 200) {
      auto parsed = Json::parse(response.value().body);
      if (parsed.ok()) {
        status = std::move(parsed).value();
        up = true;
      }
    }
    std::scoped_lock lock(mutex_);
    auto it = std::find_if(
        peers_.begin(), peers_.end(),
        [&](const PeerView& p) { return p.config.name == config.name; });
    if (it == peers_.end()) continue;
    const bool was_reachable = it->reachable;
    if (up) {
      apply_peer_status(*it, status, now);
      if (!was_reachable && events_ != nullptr) {
        events_->log(now, telemetry::Severity::kInfo, "peer_up",
                     "federation peer '" + config.name + "' is reachable");
      }
    } else {
      it->reachable = false;
      if (was_reachable && events_ != nullptr) {
        events_->log(now, telemetry::Severity::kWarn, "peer_down",
                     "federation peer '" + config.name +
                         "' stopped answering status polls");
      }
    }
  }
}

std::optional<std::string> FederationRouter::choose_peer(
    const std::string& resource_class) {
  const LocalStatus local = local_status_ ? local_status_() : LocalStatus{};
  std::scoped_lock lock(mutex_);
  if (role_ == Role::kLeader && local.healthy_resources > 0 &&
      local.queue_depth < options_.forward_queue_threshold) {
    return std::nullopt;  // local can take it — don't pay a network hop
  }
  // A demoted daemon routes to the current leader when one is visible;
  // a saturated/fleetless leader routes to the best-scored peer. Score
  // is calibration quality per unit of queue pressure — the same signal
  // ResourceBroker::sample_scores feeds placement with, one level up.
  const PeerView* best = nullptr;
  double best_score = 0.0;
  for (const auto& peer : peers_) {
    if (!peer.reachable || peer.healthy_resources == 0) continue;
    if (role_ == Role::kStandby && peer.role != Role::kLeader) continue;
    double quality = peer.mean_score;
    if (!resource_class.empty()) {
      const auto it = peer.class_scores.find(resource_class);
      if (it != peer.class_scores.end()) quality = it->second;
    }
    const double score =
        (quality + 1e-9) / (1.0 + static_cast<double>(peer.queue_depth));
    if (best == nullptr || score > best_score) {
      best = &peer;
      best_score = score;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->config.name;
}

Result<FederationRouter::Forwarded> FederationRouter::forward(
    const std::string& peer, const std::string& user,
    const std::string& partition, const Json& payload) {
  PeerConfig config;
  {
    std::scoped_lock lock(mutex_);
    const auto it = std::find_if(
        peers_.begin(), peers_.end(),
        [&](const PeerView& p) { return p.config.name == peer; });
    if (it == peers_.end()) {
      return common::err::not_found("unknown federation peer '" + peer +
                                    "'");
    }
    config = it->config;
  }
  net::HttpClient client(config.port);
  if (!config.admin_key.empty()) {
    client.set_default_header("X-Admin-Key", config.admin_key);
  }
  Json body = Json::object();
  body["user"] = user;
  if (!partition.empty()) body["partition"] = partition;
  body["payload"] = payload;
  auto response = client.post("/admin/federation/submit", body.dump());
  if (!response.ok()) {
    if (forward_failures_ != nullptr) forward_failures_->increment();
    return response.error();
  }
  if (response.value().status != 201) {
    if (forward_failures_ != nullptr) forward_failures_->increment();
    return common::err::unavailable(
        "peer '" + peer + "' rejected the forwarded submission (HTTP " +
        std::to_string(response.value().status) + ")");
  }
  auto parsed = Json::parse(response.value().body);
  if (!parsed.ok()) {
    if (forward_failures_ != nullptr) forward_failures_->increment();
    return common::err::protocol("peer '" + peer +
                                 "' answered unparseable JSON");
  }
  Forwarded forwarded;
  forwarded.peer = peer;
  forwarded.remote_id = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, store::int_or(parsed.value(), "job_id", 0)));
  forwarded.resource = store::string_or(parsed.value(), "resource");
  if (forwards_ != nullptr) forwards_->increment();
  return forwarded;
}

Role FederationRouter::role() const {
  std::scoped_lock lock(mutex_);
  return role_;
}

Result<std::uint64_t> FederationRouter::promote() {
  std::scoped_lock lock(mutex_);
  std::uint64_t next = epoch_ + 1;
  if (!data_dir_.empty()) {
    auto durable = read_epoch(data_dir_);
    if (!durable.ok()) return durable.error();
    next = std::max(epoch_, durable.value()) + 1;
    QCENV_RETURN_IF_ERROR(write_epoch(data_dir_, next));
  }
  epoch_ = next;
  role_ = Role::kLeader;
  if (epoch_gauge_ != nullptr) {
    epoch_gauge_->set(static_cast<double>(epoch_));
  }
  if (role_gauge_ != nullptr) role_gauge_->set(1);
  if (promotions_ != nullptr) promotions_->increment();
  if (events_ != nullptr) {
    events_->log(clock_->now(), telemetry::Severity::kWarn,
                 "leader_promoted",
                 "'" + options_.self + "' promoted to federation leader "
                 "(epoch " + std::to_string(epoch_) + ")");
  }
  return epoch_;
}

void FederationRouter::demote() {
  std::scoped_lock lock(mutex_);
  if (role_ == Role::kStandby) return;
  role_ = Role::kStandby;
  if (role_gauge_ != nullptr) role_gauge_->set(0);
  if (events_ != nullptr) {
    events_->log(clock_->now(), telemetry::Severity::kWarn,
                 "leader_demoted",
                 "'" + options_.self + "' demoted to federation standby");
  }
}

std::uint64_t FederationRouter::epoch() const {
  std::scoped_lock lock(mutex_);
  return epoch_;
}

void FederationRouter::set_epoch(std::uint64_t epoch) {
  std::scoped_lock lock(mutex_);
  epoch_ = epoch;
  if (epoch_gauge_ != nullptr) {
    epoch_gauge_->set(static_cast<double>(epoch_));
  }
}

void FederationRouter::set_data_dir(std::string data_dir) {
  std::scoped_lock lock(mutex_);
  data_dir_ = std::move(data_dir);
}

std::vector<PeerView> FederationRouter::peers() const {
  std::scoped_lock lock(mutex_);
  return peers_;
}

Json FederationRouter::status_json() const {
  const LocalStatus local = local_status_ ? local_status_() : LocalStatus{};
  std::scoped_lock lock(mutex_);
  Json out = Json::object();
  out["enabled"] = options_.enabled;
  out["self"] = options_.self;
  out["role"] = to_string(role_);
  out["epoch"] = static_cast<long long>(epoch_);
  out["queue_depth"] = static_cast<long long>(local.queue_depth);
  Json peers = Json::array();
  for (const auto& peer : peers_) peers.push_back(peer.to_json());
  out["peers"] = std::move(peers);
  return out;
}

}  // namespace qcenv::federation
